//! Textual display of Abstract C-- graphs (used by `examples/ssa_figure6`
//! and for debugging).

use crate::graph::{Graph, NodeId};
use crate::node::Node;
use cmm_ir::pretty::expr_to_string;
use cmm_ir::Lvalue;
use std::fmt::Write as _;

/// Renders one node on one line.
pub fn node_to_string(g: &Graph, id: NodeId) -> String {
    let mut s = format!("{id}: ");
    match g.node(id) {
        Node::Entry { conts, next } => {
            let cs: Vec<String> = conts.iter().map(|(n, id)| format!("{n}={id}")).collect();
            let _ = write!(s, "Entry [{}] -> {next}", cs.join(", "));
        }
        Node::Exit { index, alternates } => {
            let _ = write!(s, "Exit <{index}/{alternates}>");
        }
        Node::CopyIn { vars, next } => {
            let vs: Vec<String> = vars.iter().map(ToString::to_string).collect();
            let _ = write!(s, "CopyIn [{}] -> {next}", vs.join(", "));
        }
        Node::CopyOut { exprs, next } => {
            let es: Vec<String> = exprs.iter().map(expr_to_string).collect();
            let _ = write!(s, "CopyOut [{}] -> {next}", es.join(", "));
        }
        Node::CalleeSaves { vars, next } => {
            let vs: Vec<String> = vars.iter().map(ToString::to_string).collect();
            let _ = write!(s, "CalleeSaves {{{}}} -> {next}", vs.join(", "));
        }
        Node::Assign { lhs, rhs, next } => {
            let l = match lhs {
                Lvalue::Var(v) => v.to_string(),
                Lvalue::Mem(ty, a) => format!("{ty}[{}]", expr_to_string(a)),
            };
            let _ = write!(s, "Assign {l} := {} -> {next}", expr_to_string(rhs));
        }
        Node::Branch { cond, t, f } => {
            let _ = write!(s, "Branch {} ? {t} : {f}", expr_to_string(cond));
        }
        Node::Call {
            callee,
            bundle,
            descriptors,
        } => {
            let rs: Vec<String> = bundle.returns.iter().map(ToString::to_string).collect();
            let us: Vec<String> = bundle.unwinds.iter().map(ToString::to_string).collect();
            let cs: Vec<String> = bundle.cuts.iter().map(ToString::to_string).collect();
            let _ = write!(
                s,
                "Call {} returns=[{}] unwinds=[{}] cuts=[{}] aborts={}",
                expr_to_string(callee),
                rs.join(", "),
                us.join(", "),
                cs.join(", "),
                bundle.aborts
            );
            if !descriptors.is_empty() {
                let ds: Vec<String> = descriptors.iter().map(ToString::to_string).collect();
                let _ = write!(s, " descriptors=[{}]", ds.join(", "));
            }
        }
        Node::Jump { callee } => {
            let _ = write!(s, "Jump {}", expr_to_string(callee));
        }
        Node::CutTo { cont, cuts } => {
            let cs: Vec<String> = cuts.iter().map(ToString::to_string).collect();
            let _ = write!(s, "CutTo {} cuts=[{}]", expr_to_string(cont), cs.join(", "));
        }
        Node::Yield => {
            let _ = write!(s, "Yield");
        }
    }
    s
}

/// Renders a whole graph, reachable nodes only, in reverse postorder.
pub fn graph_to_string(g: &Graph) -> String {
    let mut out = format!("graph {} (arity {}):\n", g.name, g.arity);
    for id in g.reverse_postorder() {
        let _ = writeln!(out, "  {}", node_to_string(g, id));
    }
    out
}

/// Renders a graph in Graphviz dot format.
pub fn graph_to_dot(g: &Graph) -> String {
    let mut out = String::from("digraph {\n  node [shape=box, fontname=monospace];\n");
    for id in g.reverse_postorder() {
        let label = node_to_string(g, id).replace('"', "\\\"");
        let _ = writeln!(out, "  {id} [label=\"{label}\"];");
        for s in g.succs(id) {
            let _ = writeln!(out, "  {id} -> {s};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_program;
    use cmm_parse::parse_module;

    #[test]
    fn renders_every_node_kind() {
        let m = parse_module(
            r#"
            f(bits32 x) {
                bits32 y, k1;
                y = g(x) also cuts to k also unwinds to k also aborts;
                if y == 0 { goto l; } else { bits32[x] = y; }
              l:
                cut to k1(y) also cuts to k;
                jump g(y);
                yield(1) also aborts;
                return (y);
                continuation k(y):
                return (y);
            }
            g(bits32 a) { return (a); }
            "#,
        )
        .unwrap();
        let p = build_program(&m).unwrap();
        let s = graph_to_string(p.proc("f").unwrap());
        for kind in [
            "Entry", "CopyIn", "CopyOut", "Assign", "Branch", "Call", "CutTo", "Exit",
        ] {
            assert!(s.contains(kind), "missing {kind} in:\n{s}");
        }
        let dot = graph_to_dot(p.proc("f").unwrap());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
    }
}
