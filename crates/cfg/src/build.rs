//! Translation of C-- source into Abstract C-- (§5.3 of the paper).
//!
//! "To translate a continuation, create a `CopyIn` node naming the
//! parameters of the continuation, and whose successor is the statement
//! following the continuation. ... To translate a call, create a
//! `CopyOut` node that puts the values of the parameters in the
//! value-passing area, and the successor of which is a `Call` node. ...
//! The `Call` node's continuation bundle is computed from the `also`
//! annotations. ... Jumps and cuts are translated similarly."
//!
//! In addition, this module synthesizes the checking procedures for
//! fallible primitives (§4.3): a call to `%%divu` behaves exactly like a
//! call to the procedure
//!
//! ```text
//! %%divu(bits32 p, bits32 q) {
//!     if q == 0 { yield(DIVZERO) also aborts; }
//!     return (%divu(p, q));
//! }
//! ```

use crate::graph::{Graph, NodeId, Program};
use crate::image::DataImage;
use crate::node::{Bundle, Node};
use crate::YIELD;
use cmm_ir::{Annotations, BinOp, BodyItem, Expr, Lvalue, Module, Name, Proc, Stmt, Ty, Width};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Yield codes reserved by the implementation.
///
/// Front ends choose their own codes for their exceptions; the code for a
/// failed checked primitive is fixed here so any front-end run-time
/// system can recognize it.
pub mod yield_codes {
    /// A checked primitive failed (zero divisor, signed overflow, or
    /// out-of-range shift).
    pub const DIVZERO: u64 = 1;
    /// First code available for front-end use.
    pub const FIRST_USER: u64 = 256;
}

/// An error detected while translating a module to Abstract C--.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// An annotation names a continuation not declared in the procedure.
    UnknownContinuation {
        /// The procedure containing the bad annotation.
        proc: Name,
        /// The missing continuation name.
        cont: Name,
    },
    /// A `goto` targets a label that does not exist.
    UnknownLabel {
        /// The procedure containing the bad goto.
        proc: Name,
        /// The missing label.
        label: Name,
    },
    /// A name is not declared anywhere (not a variable, continuation,
    /// procedure, data block, global register, or import).
    UnknownName {
        /// The procedure mentioning the name.
        proc: Name,
        /// The unknown name.
        name: Name,
    },
    /// Two variables, labels, or continuations share a name.
    DuplicateName {
        /// The procedure with the clash.
        proc: Name,
        /// The duplicated name.
        name: Name,
    },
    /// Two top-level declarations share a name.
    DuplicateSymbol(Name),
    /// A `sym` initializer refers to an undefined symbol.
    UndefinedSymbol(Name),
    /// A continuation parameter is not a declared variable of the
    /// enclosing procedure.
    UndeclaredContParam {
        /// The procedure.
        proc: Name,
        /// The continuation.
        cont: Name,
        /// The offending parameter.
        param: Name,
    },
    /// A procedure uses the reserved name `yield` or a `%` name.
    ReservedName(Name),
    /// An unknown `%%` primitive is called.
    UnknownPrimitive(Name),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownContinuation { proc, cont } => {
                write!(f, "procedure `{proc}`: annotation names unknown continuation `{cont}`")
            }
            BuildError::UnknownLabel { proc, label } => {
                write!(f, "procedure `{proc}`: goto targets unknown label `{label}`")
            }
            BuildError::UnknownName { proc, name } => {
                write!(f, "procedure `{proc}`: unknown name `{name}`")
            }
            BuildError::DuplicateName { proc, name } => {
                write!(f, "procedure `{proc}`: duplicate name `{name}`")
            }
            BuildError::DuplicateSymbol(n) => write!(f, "duplicate top-level symbol `{n}`"),
            BuildError::UndefinedSymbol(n) => write!(f, "undefined symbol `{n}` in data block"),
            BuildError::UndeclaredContParam { proc, cont, param } => write!(
                f,
                "procedure `{proc}`: continuation `{cont}` parameter `{param}` is not a declared variable"
            ),
            BuildError::ReservedName(n) => write!(f, "`{n}` is a reserved name"),
            BuildError::UnknownPrimitive(n) => write!(f, "unknown checked primitive `{n}`"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Translates a module into an Abstract C-- [`Program`].
///
/// # Errors
///
/// Returns a [`BuildError`] for unresolved names, duplicate declarations,
/// malformed annotations, or undefined data symbols.
pub fn build_program(module: &Module) -> Result<Program, BuildError> {
    let image = DataImage::link(module).map_err(BuildError::UndefinedSymbol)?;

    // Known top-level names.
    let mut top: BTreeSet<Name> = BTreeSet::new();
    let mut check_dup = |n: &Name| -> Result<(), BuildError> {
        if !top.insert(n.clone()) {
            return Err(BuildError::DuplicateSymbol(n.clone()));
        }
        Ok(())
    };
    for p in module.procs() {
        if p.name == YIELD || p.name.as_str().starts_with('%') {
            return Err(BuildError::ReservedName(p.name.clone()));
        }
        check_dup(&p.name)?;
    }
    for b in module.data_blocks() {
        check_dup(&b.name)?;
    }
    for r in module.registers() {
        check_dup(&r.name)?;
    }

    let mut known_top: BTreeSet<Name> = module.procs().map(|p| p.name.clone()).collect();
    known_top.extend(module.data_blocks().map(|b| b.name.clone()));
    known_top.extend(module.registers().map(|r| r.name.clone()));
    for d in &module.decls {
        if let cmm_ir::Decl::Import(ns) = d {
            known_top.extend(ns.iter().cloned());
        }
    }
    known_top.insert(Name::from(YIELD));

    let mut program = Program {
        procs: BTreeMap::new(),
        globals: module.registers().cloned().collect(),
        image,
    };

    let mut used_prims: BTreeSet<Name> = BTreeSet::new();
    for p in module.procs() {
        let g = GraphBuilder::new(p, &known_top)?.run(p, &mut used_prims)?;
        program.procs.insert(p.name.clone(), g);
    }

    // Synthesize the run-time system's yield procedure: a single Yield
    // node ("the range of X includes only nodes of the form Entry e p or
    // Yield", §5).
    let yield_graph = Graph {
        name: Name::from(YIELD),
        nodes: vec![Node::Yield],
        entry: NodeId(0),
        arity: 1,
        vars: Vec::new(),
    };
    program.procs.insert(Name::from(YIELD), yield_graph);

    // Synthesize checking procedures for the fallible primitives used.
    for prim in used_prims {
        let op = BinOp::checked_primitive(prim.as_str())
            .ok_or_else(|| BuildError::UnknownPrimitive(prim.clone()))?;
        let g = synthesize_checked(&prim, op);
        program.procs.insert(prim, g);
    }

    Ok(program)
}

/// Builds the checking procedure for a `%%` primitive (§4.3).
fn synthesize_checked(name: &Name, op: BinOp) -> Graph {
    let p = Name::from("p");
    let q = Name::from("q");
    let mut g = Graph {
        name: name.clone(),
        nodes: Vec::new(),
        entry: NodeId(0),
        arity: 2,
        vars: vec![(p.clone(), Ty::B32), (q.clone(), Ty::B32)],
    };
    // Failure condition, per operator.
    let min32 = Expr::b32(0x8000_0000);
    let neg1 = Expr::b32(0xffff_ffff);
    let fail = match op {
        BinOp::DivU | BinOp::ModU => Expr::eq(Expr::var(&q), Expr::b32(0)),
        BinOp::DivS => Expr::binary(
            BinOp::Or,
            Expr::eq(Expr::var(&q), Expr::b32(0)),
            Expr::binary(
                BinOp::And,
                Expr::eq(Expr::var(&p), min32),
                Expr::eq(Expr::var(&q), neg1),
            ),
        ),
        BinOp::ModS => Expr::eq(Expr::var(&q), Expr::b32(0)),
        BinOp::Shl | BinOp::ShrU | BinOp::ShrS => {
            Expr::binary(BinOp::GeU, Expr::var(&q), Expr::b32(Width::W32.bits()))
        }
        _ => Expr::b32(0),
    };
    // ok: CopyOut [op(p, q)] -> Exit 0/0
    let exit = g.add(Node::Exit {
        index: 0,
        alternates: 0,
    });
    let ok = g.add(Node::CopyOut {
        exprs: vec![Expr::binary(op, Expr::var(&p), Expr::var(&q))],
        next: exit,
    });
    // failure: CopyOut [DIVZERO] -> Call yield (aborts) -> CopyIn [] -> ok
    let resume = g.add(Node::CopyIn {
        vars: vec![],
        next: ok,
    });
    let call = g.add(Node::Call {
        callee: Expr::var(YIELD),
        bundle: Bundle {
            returns: vec![resume],
            unwinds: vec![],
            cuts: vec![],
            aborts: true,
        },
        descriptors: vec![],
    });
    let copyout = g.add(Node::CopyOut {
        exprs: vec![Expr::Lit(cmm_ir::Lit::b32(yield_codes::DIVZERO as u32))],
        next: call,
    });
    let branch = g.add(Node::Branch {
        cond: fail,
        t: copyout,
        f: ok,
    });
    let copyin = g.add(Node::CopyIn {
        vars: vec![p, q],
        next: branch,
    });
    let entry = g.add(Node::Entry {
        conts: vec![],
        next: copyin,
    });
    g.entry = entry;
    g
}

struct GraphBuilder {
    g: Graph,
    labels: BTreeMap<Name, NodeId>,
    conts: BTreeMap<Name, NodeId>,
    cont_order: Vec<Name>,
    known_top: BTreeSet<Name>,
}

impl GraphBuilder {
    fn new(p: &Proc, known_top: &BTreeSet<Name>) -> Result<GraphBuilder, BuildError> {
        let mut vars: Vec<(Name, Ty)> = Vec::new();
        let mut seen = BTreeSet::new();
        for (n, ty) in p.formals.iter().chain(p.locals.iter()) {
            if !seen.insert(n.clone()) {
                return Err(BuildError::DuplicateName {
                    proc: p.name.clone(),
                    name: n.clone(),
                });
            }
            vars.push((n.clone(), *ty));
        }
        let g = Graph {
            name: p.name.clone(),
            nodes: Vec::new(),
            entry: NodeId(0),
            arity: p.formals.len(),
            vars,
        };
        let mut b = GraphBuilder {
            g,
            labels: BTreeMap::new(),
            conts: BTreeMap::new(),
            cont_order: Vec::new(),
            known_top: known_top.clone(),
        };
        // Pre-allocate placeholder nodes for every label and continuation
        // so that forward references resolve. Placeholders are patched to
        // CopyIn nodes during translation.
        b.prescan(p, &p.body, &mut seen)?;
        Ok(b)
    }

    fn prescan(
        &mut self,
        p: &Proc,
        items: &[BodyItem],
        seen: &mut BTreeSet<Name>,
    ) -> Result<(), BuildError> {
        for item in items {
            match item {
                BodyItem::Label(l) => {
                    if !seen.insert(l.clone()) {
                        return Err(BuildError::DuplicateName {
                            proc: p.name.clone(),
                            name: l.clone(),
                        });
                    }
                    let id = self.g.add(Node::Yield); // placeholder
                    self.labels.insert(l.clone(), id);
                }
                BodyItem::Continuation { name, params } => {
                    if !seen.insert(name.clone()) {
                        return Err(BuildError::DuplicateName {
                            proc: p.name.clone(),
                            name: name.clone(),
                        });
                    }
                    for param in params {
                        if self.g.var_ty(param).is_none() {
                            return Err(BuildError::UndeclaredContParam {
                                proc: p.name.clone(),
                                cont: name.clone(),
                                param: param.clone(),
                            });
                        }
                    }
                    let id = self.g.add(Node::Yield); // placeholder
                    self.conts.insert(name.clone(), id);
                    self.cont_order.push(name.clone());
                }
                BodyItem::Stmt(Stmt::If { then_, else_, .. }) => {
                    self.prescan(p, then_, seen)?;
                    self.prescan(p, else_, seen)?;
                }
                BodyItem::Stmt(_) => {}
            }
        }
        Ok(())
    }

    fn run(mut self, p: &Proc, used_prims: &mut BTreeSet<Name>) -> Result<Graph, BuildError> {
        // Falling off the end of a body behaves as a plain `return;`.
        let implicit_return = self.g.add(Node::Exit {
            index: 0,
            alternates: 0,
        });
        let body_head = self.items(p, &p.body, implicit_return, used_prims)?;
        let formals: Vec<Name> = p.formals.iter().map(|(n, _)| n.clone()).collect();
        let copyin = self.g.add(Node::CopyIn {
            vars: formals,
            next: body_head,
        });
        let conts: Vec<(Name, NodeId)> = self
            .cont_order
            .iter()
            .map(|n| (n.clone(), self.conts[n]))
            .collect();
        let entry = self.g.add(Node::Entry {
            conts,
            next: copyin,
        });
        self.g.entry = entry;
        self.validate_names(p)?;
        Ok(self.g)
    }

    /// Translates a statement sequence, given the node that follows it.
    /// Returns the head node.
    fn items(
        &mut self,
        p: &Proc,
        items: &[BodyItem],
        follow: NodeId,
        used_prims: &mut BTreeSet<Name>,
    ) -> Result<NodeId, BuildError> {
        let mut next = follow;
        for item in items.iter().rev() {
            next = self.item(p, item, next, used_prims)?;
        }
        Ok(next)
    }

    fn resolve_conts(&self, p: &Proc, names: &[Name]) -> Result<Vec<NodeId>, BuildError> {
        names
            .iter()
            .map(|n| {
                self.conts
                    .get(n)
                    .copied()
                    .ok_or_else(|| BuildError::UnknownContinuation {
                        proc: p.name.clone(),
                        cont: n.clone(),
                    })
            })
            .collect()
    }

    fn bundle(
        &mut self,
        p: &Proc,
        anns: &Annotations,
        normal_return: NodeId,
    ) -> Result<Bundle, BuildError> {
        let mut returns = self.resolve_conts(p, &anns.returns_to)?;
        returns.push(normal_return);
        Ok(Bundle {
            returns,
            unwinds: self.resolve_conts(p, &anns.unwinds_to)?,
            cuts: self.resolve_conts(p, &anns.cuts_to)?,
            aborts: anns.aborts,
        })
    }

    fn item(
        &mut self,
        p: &Proc,
        item: &BodyItem,
        next: NodeId,
        used_prims: &mut BTreeSet<Name>,
    ) -> Result<NodeId, BuildError> {
        match item {
            BodyItem::Label(l) => {
                let id = self.labels[l];
                self.g.nodes[id.index()] = Node::CopyIn { vars: vec![], next };
                Ok(id)
            }
            BodyItem::Continuation { name, params } => {
                let id = self.conts[name];
                self.g.nodes[id.index()] = Node::CopyIn {
                    vars: params.clone(),
                    next,
                };
                Ok(id)
            }
            BodyItem::Stmt(s) => self.stmt(p, s, next, used_prims),
        }
    }

    fn stmt(
        &mut self,
        p: &Proc,
        s: &Stmt,
        next: NodeId,
        used_prims: &mut BTreeSet<Name>,
    ) -> Result<NodeId, BuildError> {
        match s {
            Stmt::Assign { lhs, rhs } => Ok(self.assign(lhs, rhs, next)),
            Stmt::If { cond, then_, else_ } => {
                let t = self.items(p, then_, next, used_prims)?;
                let f = self.items(p, else_, next, used_prims)?;
                Ok(self.g.add(Node::Branch {
                    cond: cond.clone(),
                    t,
                    f,
                }))
            }
            Stmt::Goto { target } => {
                self.labels
                    .get(target)
                    .copied()
                    .ok_or_else(|| BuildError::UnknownLabel {
                        proc: p.name.clone(),
                        label: target.clone(),
                    })
            }
            Stmt::Call {
                results,
                callee,
                args,
                anns,
            } => {
                if let Expr::Name(n) = callee {
                    if n.is_checked_primitive() {
                        used_prims.insert(n.clone());
                    }
                }
                let copyin = self.g.add(Node::CopyIn {
                    vars: results.clone(),
                    next,
                });
                let bundle = self.bundle(p, anns, copyin)?;
                let call = self.g.add(Node::Call {
                    callee: callee.clone(),
                    bundle,
                    descriptors: anns.descriptors.clone(),
                });
                Ok(self.g.add(Node::CopyOut {
                    exprs: args.clone(),
                    next: call,
                }))
            }
            Stmt::Jump { callee, args } => {
                let jump = self.g.add(Node::Jump {
                    callee: callee.clone(),
                });
                Ok(self.g.add(Node::CopyOut {
                    exprs: args.clone(),
                    next: jump,
                }))
            }
            Stmt::Return { alt, args } => {
                let (index, alternates) = match alt {
                    Some(a) => (a.index, a.count),
                    None => (0, 0),
                };
                let exit = self.g.add(Node::Exit { index, alternates });
                Ok(self.g.add(Node::CopyOut {
                    exprs: args.clone(),
                    next: exit,
                }))
            }
            Stmt::CutTo { cont, args, anns } => {
                let cuts = self.resolve_conts(p, &anns.cuts_to)?;
                let cut = self.g.add(Node::CutTo {
                    cont: cont.clone(),
                    cuts,
                });
                Ok(self.g.add(Node::CopyOut {
                    exprs: args.clone(),
                    next: cut,
                }))
            }
            Stmt::Yield { args, anns } => {
                let copyin = self.g.add(Node::CopyIn { vars: vec![], next });
                let bundle = self.bundle(p, anns, copyin)?;
                let call = self.g.add(Node::Call {
                    callee: Expr::var(YIELD),
                    bundle,
                    descriptors: anns.descriptors.clone(),
                });
                Ok(self.g.add(Node::CopyOut {
                    exprs: args.clone(),
                    next: call,
                }))
            }
        }
    }

    /// Lowers a (possibly parallel) assignment to a chain of `Assign`
    /// nodes. Parallel assignments evaluate every right-hand side before
    /// writing any target, which the lowering realizes with fresh
    /// temporaries.
    fn assign(&mut self, lhs: &[Lvalue], rhs: &[Expr], next: NodeId) -> NodeId {
        if lhs.len() == 1 {
            return self.g.add(Node::Assign {
                lhs: lhs[0].clone(),
                rhs: rhs[0].clone(),
                next,
            });
        }
        let temps: Vec<Name> = lhs
            .iter()
            .map(|l| {
                let ty = match l {
                    Lvalue::Var(v) => self.g.var_ty(v).unwrap_or(Ty::B32),
                    Lvalue::Mem(ty, _) => *ty,
                };
                self.g.fresh_var("par", ty)
            })
            .collect();
        // Writes (backward): target_i = temp_i.
        let mut head = next;
        for (l, t) in lhs.iter().zip(&temps).rev() {
            head = self.g.add(Node::Assign {
                lhs: l.clone(),
                rhs: Expr::var(t),
                next: head,
            });
        }
        // Reads (backward): temp_i = rhs_i.
        for (t, e) in temps.iter().zip(rhs).rev() {
            head = self.g.add(Node::Assign {
                lhs: Lvalue::Var(t.clone()),
                rhs: e.clone(),
                next: head,
            });
        }
        head
    }

    /// Checks that every name mentioned in the graph is declared
    /// somewhere.
    fn validate_names(&self, p: &Proc) -> Result<(), BuildError> {
        let check = |e: &Expr| -> Result<(), BuildError> {
            let mut bad = None;
            e.visit_names(&mut |n| {
                if bad.is_some() {
                    return;
                }
                let known = self.g.var_ty(n).is_some()
                    || self.conts.contains_key(n)
                    || self.known_top.contains(n)
                    || n.as_str().starts_with('%');
                if !known {
                    bad = Some(n.clone());
                }
            });
            match bad {
                Some(n) => Err(BuildError::UnknownName {
                    proc: p.name.clone(),
                    name: n,
                }),
                None => Ok(()),
            }
        };
        for n in &self.g.nodes {
            match n {
                Node::Assign { lhs, rhs, .. } => {
                    if let Lvalue::Mem(_, a) = lhs {
                        check(a)?;
                    }
                    if let Lvalue::Var(v) = lhs {
                        if self.g.var_ty(v).is_none() && !self.known_top.contains(v) {
                            return Err(BuildError::UnknownName {
                                proc: p.name.clone(),
                                name: v.clone(),
                            });
                        }
                    }
                    check(rhs)?;
                }
                Node::Branch { cond, .. } => check(cond)?,
                Node::CopyOut { exprs, .. } => {
                    for e in exprs {
                        check(e)?;
                    }
                }
                Node::CopyIn { vars, .. } => {
                    for v in vars {
                        if self.g.var_ty(v).is_none() {
                            return Err(BuildError::UnknownName {
                                proc: p.name.clone(),
                                name: v.clone(),
                            });
                        }
                    }
                }
                Node::Call { callee, .. } => check(callee)?,
                Node::Jump { callee } => check(callee)?,
                Node::CutTo { cont, .. } => check(cont)?,
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_parse::parse_module;

    fn build(src: &str) -> Program {
        build_program(&parse_module(src).unwrap()).unwrap()
    }

    #[test]
    fn builds_figure1() {
        let p = build(
            r#"
            export sp1;
            sp1(bits32 n) {
                bits32 s, p;
                if n == 1 { return (1, 1); }
                else { s, p = sp1(n - 1); return (s + n, p * n); }
            }
            "#,
        );
        let g = p.proc("sp1").unwrap();
        assert!(matches!(g.node(g.entry), Node::Entry { .. }));
        // Entry -> CopyIn formals -> Branch.
        let Node::Entry { next, .. } = g.node(g.entry) else {
            unreachable!()
        };
        let Node::CopyIn { vars, next } = g.node(*next) else {
            panic!("expected CopyIn")
        };
        assert_eq!(vars.len(), 1);
        assert!(matches!(g.node(*next), Node::Branch { .. }));
        // yield procedure synthesized.
        assert!(p.proc(YIELD).is_some());
    }

    #[test]
    fn call_produces_copyout_call_copyin() {
        let p =
            build("f(bits32 x) { bits32 y; y = g(x); return (y); } g(bits32 a) { return (a); }");
        let g = p.proc("f").unwrap();
        let copyouts: Vec<_> = g
            .ids()
            .filter(|&id| matches!(g.node(id), Node::CopyOut { .. }))
            .collect();
        // One CopyOut for the call, one for the return.
        assert_eq!(copyouts.len(), 2);
        let call = g
            .ids()
            .find(|&id| matches!(g.node(id), Node::Call { .. }))
            .expect("has a call node");
        let Node::Call { bundle, .. } = g.node(call) else {
            unreachable!()
        };
        assert_eq!(bundle.returns.len(), 1);
        assert!(
            matches!(g.node(bundle.normal_return()), Node::CopyIn { vars, .. } if vars.len() == 1)
        );
    }

    #[test]
    fn continuations_bound_at_entry() {
        let p = build(
            r#"
            f(bits32 x) {
                bits32 y;
                y = g(x) also cuts to k also unwinds to k;
                return (y);
                continuation k(y):
                return (y);
            }
            g(bits32 a) { return (a); }
            "#,
        );
        let g = p.proc("f").unwrap();
        assert_eq!(g.continuations().len(), 1);
        let k = g.continuation("k").unwrap();
        assert!(matches!(g.node(k), Node::CopyIn { vars, .. } if vars.len() == 1));
        let call = g
            .ids()
            .find(|&id| matches!(g.node(id), Node::Call { .. }))
            .unwrap();
        let Node::Call { bundle, .. } = g.node(call) else {
            unreachable!()
        };
        assert_eq!(bundle.cuts, vec![k]);
        assert_eq!(bundle.unwinds, vec![k]);
    }

    #[test]
    fn goto_resolves_forward_and_backward() {
        let p = build(
            r#"
            f(bits32 n) {
                bits32 s;
                s = 0;
              loop:
                if n == 0 { goto done; } else { s = s + n; n = n - 1; goto loop; }
              done:
                return (s);
            }
            "#,
        );
        let g = p.proc("f").unwrap();
        // Both labels become CopyIn join points.
        let joins = g
            .ids()
            .filter(|&id| matches!(g.node(id), Node::CopyIn { vars, .. } if vars.is_empty()))
            .count();
        assert!(joins >= 2, "expected join nodes for labels, got {joins}");
    }

    #[test]
    fn parallel_assignment_uses_temporaries() {
        let p = build("f(bits32 a, bits32 b) { a, b = b, a; return (a, b); }");
        let g = p.proc("f").unwrap();
        assert!(g.vars.iter().any(|(n, _)| n.as_str().starts_with("$par")));
    }

    #[test]
    fn checked_primitive_synthesized() {
        let p =
            build("f(bits32 a, bits32 b) { bits32 r; r = %%divu(a, b) also aborts; return (r); }");
        let g = p.proc("%%divu").expect("checking procedure synthesized");
        assert_eq!(g.arity, 2);
        // It contains a call to yield with aborts set.
        let call = g
            .ids()
            .find(|&id| matches!(g.node(id), Node::Call { .. }))
            .unwrap();
        let Node::Call { bundle, callee, .. } = g.node(call) else {
            unreachable!()
        };
        assert_eq!(callee, &Expr::var(YIELD));
        assert!(bundle.aborts);
    }

    #[test]
    fn unknown_continuation_rejected() {
        let m = parse_module("f() { g() also cuts to nowhere; } g() { return; }").unwrap();
        assert_eq!(
            build_program(&m).unwrap_err(),
            BuildError::UnknownContinuation {
                proc: Name::from("f"),
                cont: Name::from("nowhere")
            }
        );
    }

    #[test]
    fn unknown_label_rejected() {
        let m = parse_module("f() { goto nowhere; }").unwrap();
        assert!(matches!(
            build_program(&m).unwrap_err(),
            BuildError::UnknownLabel { .. }
        ));
    }

    #[test]
    fn unknown_name_rejected() {
        let m = parse_module("f() { bits32 x; x = undeclared + 1; }").unwrap();
        assert!(matches!(
            build_program(&m).unwrap_err(),
            BuildError::UnknownName { .. }
        ));
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let m = parse_module("f() { return; } f() { return; }").unwrap();
        assert!(matches!(
            build_program(&m).unwrap_err(),
            BuildError::DuplicateSymbol(_)
        ));
    }

    #[test]
    fn undeclared_cont_param_rejected() {
        let m = parse_module("f() { return; continuation k(zz): return; }").unwrap();
        assert!(matches!(
            build_program(&m).unwrap_err(),
            BuildError::UndeclaredContParam { .. }
        ));
    }

    #[test]
    fn cut_to_annotation_edges_recorded() {
        let p = build(
            r#"
            f(bits32 x) {
                bits32 k1;
                cut to k1(x) also cuts to k;
                continuation k(x):
                return (x);
            }
            "#,
        );
        let g = p.proc("f").unwrap();
        let cut = g
            .ids()
            .find(|&id| matches!(g.node(id), Node::CutTo { .. }))
            .unwrap();
        let Node::CutTo { cuts, .. } = g.node(cut) else {
            unreachable!()
        };
        assert_eq!(cuts.len(), 1);
    }

    #[test]
    fn global_registers_carried_through() {
        let p = build("register bits32 exn_top; f() { exn_top = exn_top + 4; return; }");
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].name, Name::from("exn_top"));
    }

    #[test]
    fn implicit_return_at_end_of_body() {
        let p = build("f() { bits32 x; x = 1; }");
        let g = p.proc("f").unwrap();
        assert!(g.ids().any(|id| matches!(
            g.node(id),
            Node::Exit {
                index: 0,
                alternates: 0
            }
        )));
    }
}
