//! Control-flow graphs and whole programs.

use crate::image::DataImage;
use crate::node::Node;
use cmm_ir::{GlobalReg, Name, Ty};
use std::collections::BTreeMap;

/// An index into a graph's node arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The control-flow graph of one procedure.
#[derive(Clone, PartialEq, Debug)]
pub struct Graph {
    /// The procedure's name.
    pub name: Name,
    /// Node arena; [`NodeId`]s index into it.
    pub nodes: Vec<Node>,
    /// The entry node (a [`Node::Entry`], or [`Node::Yield`] for the
    /// run-time system's `yield` procedure).
    pub entry: NodeId,
    /// Number of formal parameters.
    pub arity: usize,
    /// Every variable of the procedure with its type: formals first, then
    /// locals, then compiler temporaries.
    pub vars: Vec<(Name, Ty)>,
}

impl Graph {
    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Appends a node, returning its id.
    pub fn add(&mut self, n: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(n);
        id
    }

    /// All node ids, in arena order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Successors of a node (including exceptional edges; see
    /// [`Node::succs`]).
    pub fn succs(&self, id: NodeId) -> Vec<NodeId> {
        self.node(id).succs()
    }

    /// Predecessor lists for every node.
    pub fn preds(&self) -> Vec<Vec<NodeId>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for id in self.ids() {
            for s in self.succs(id) {
                preds[s.index()].push(id);
            }
        }
        preds
    }

    /// Node ids reachable from the entry, in reverse postorder.
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut state = vec![0u8; self.nodes.len()]; // 0 unvisited, 1 open, 2 done
        let mut post = Vec::new();
        // Iterative DFS to avoid recursion limits on long chains.
        let mut stack: Vec<(NodeId, usize)> = vec![(self.entry, 0)];
        state[self.entry.index()] = 1;
        while let Some(&(id, next_child)) = stack.last() {
            let succs = self.succs(id);
            if next_child < succs.len() {
                stack.last_mut().expect("stack non-empty").1 += 1;
                let c = succs[next_child];
                if state[c.index()] == 0 {
                    state[c.index()] = 1;
                    stack.push((c, 0));
                }
            } else {
                state[id.index()] = 2;
                post.push(id);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Node ids reachable from the entry (unordered set, as a bitmask).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        for id in self.reverse_postorder() {
            seen[id.index()] = true;
        }
        seen
    }

    /// The type of a variable, if declared.
    pub fn var_ty(&self, n: &Name) -> Option<Ty> {
        self.vars.iter().find(|(v, _)| v == n).map(|&(_, ty)| ty)
    }

    /// Adds a compiler temporary with a fresh name based on `hint`.
    pub fn fresh_var(&mut self, hint: &str, ty: Ty) -> Name {
        let mut i = self.vars.len();
        loop {
            let name = Name::from(format!("${hint}{i}"));
            if self.var_ty(&name).is_none() {
                self.vars.push((name.clone(), ty));
                return name;
            }
            i += 1;
        }
    }

    /// The declared continuations of this procedure (from the entry
    /// node), in declaration order.
    pub fn continuations(&self) -> &[(Name, NodeId)] {
        match self.node(self.entry) {
            Node::Entry { conts, .. } => conts,
            _ => &[],
        }
    }

    /// Looks up a continuation's `CopyIn` node by name.
    pub fn continuation(&self, name: &str) -> Option<NodeId> {
        self.continuations()
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }
}

/// A whole Abstract C-- program: the partial map *X* from names to
/// procedures (§5), plus linked static data.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The procedures, including any synthesized checking procedures for
    /// fallible primitives and the `yield` procedure.
    pub procs: BTreeMap<Name, Graph>,
    /// Global registers with their initial values.
    pub globals: Vec<GlobalReg>,
    /// The linked static-data image.
    pub image: DataImage,
}

impl Program {
    /// Looks up a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Graph> {
        self.procs.get(name)
    }

    /// The synthetic code address of a procedure (for storing code
    /// pointers in memory).
    pub fn proc_addr(&self, name: &str) -> Option<u64> {
        self.image.symbol(name)
    }

    /// The procedure whose synthetic code address is `addr`.
    pub fn proc_at(&self, addr: u64) -> Option<&Name> {
        self.image.code_symbol_at(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_ir::Expr;

    fn linear_graph() -> Graph {
        // entry -> assign -> branch -> (exit | assign2 -> exit)
        let mut g = Graph {
            name: Name::from("t"),
            nodes: Vec::new(),
            entry: NodeId(0),
            arity: 0,
            vars: vec![(Name::from("x"), Ty::B32)],
        };
        let exit = NodeId(4);
        g.add(Node::Entry {
            conts: vec![],
            next: NodeId(1),
        }); // 0
        g.add(Node::Assign {
            lhs: cmm_ir::Lvalue::var("x"),
            rhs: Expr::b32(1),
            next: NodeId(2),
        }); // 1
        g.add(Node::Branch {
            cond: Expr::var("x"),
            t: exit,
            f: NodeId(3),
        }); // 2
        g.add(Node::Assign {
            lhs: cmm_ir::Lvalue::var("x"),
            rhs: Expr::b32(2),
            next: exit,
        }); // 3
        g.add(Node::Exit {
            index: 0,
            alternates: 0,
        }); // 4
        g
    }

    #[test]
    fn preds_are_inverse_of_succs() {
        let g = linear_graph();
        let preds = g.preds();
        assert_eq!(preds[4], vec![NodeId(2), NodeId(3)]);
        assert_eq!(preds[0], Vec::<NodeId>::new());
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let g = linear_graph();
        let rpo = g.reverse_postorder();
        assert_eq!(rpo[0], NodeId(0));
        assert_eq!(rpo.len(), 5);
        // Every node appears after all its dominating predecessors in
        // this acyclic graph.
        let pos: BTreeMap<_, _> = rpo.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        assert!(pos[&NodeId(1)] < pos[&NodeId(2)]);
        assert!(pos[&NodeId(2)] < pos[&NodeId(3)]);
    }

    #[test]
    fn fresh_var_avoids_collisions() {
        let mut g = linear_graph();
        let a = g.fresh_var("t", Ty::B32);
        let b = g.fresh_var("t", Ty::B32);
        assert_ne!(a, b);
        assert!(g.var_ty(&a).is_some());
    }
}
