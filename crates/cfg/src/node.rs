//! The node kinds of Abstract C-- (the paper's Table 2).

use crate::graph::NodeId;
use cmm_ir::{Expr, Lvalue, Name};
use std::collections::BTreeSet;

/// A continuation bundle: "the quadruple `(kp_r, kp_u, kp_c, abort)`"
/// saved on the stack at each call, which "encodes the possible outcomes
/// of a procedure call" (§5, Table 2).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bundle {
    /// `kp_r`: the nodes for continuations listed in `also returns to`,
    /// **plus the node for normal returns, which is always last**.
    pub returns: Vec<NodeId>,
    /// `kp_u`: the nodes for continuations listed in `also unwinds to`,
    /// in annotation order (the order consulted by `SetUnwindCont(t, n)`).
    pub unwinds: Vec<NodeId>,
    /// `kp_c`: the nodes for continuations listed in `also cuts to`.
    pub cuts: Vec<NodeId>,
    /// `abort`: true iff the call site is annotated `also aborts`.
    pub aborts: bool,
}

impl Bundle {
    /// The normal-return node (the last element of `kp_r`).
    ///
    /// # Panics
    ///
    /// Panics if the bundle has no return continuations at all, which
    /// cannot happen for bundles constructed by the §5.3 translation.
    pub fn normal_return(&self) -> NodeId {
        *self.returns.last().expect("bundle has a normal return")
    }

    /// Number of *alternate* return continuations (`n` in `Exit j n`).
    pub fn alternates(&self) -> u32 {
        (self.returns.len() - 1) as u32
    }

    /// All nodes reachable through this bundle (for graph traversals).
    pub fn targets(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.returns
            .iter()
            .chain(self.unwinds.iter())
            .chain(self.cuts.iter())
            .copied()
    }
}

/// One node of an Abstract C-- control-flow graph (Table 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// The unique entry node of a procedure with continuations `conts`
    /// and first node `next`. Binds each continuation name to a
    /// continuation value for the current activation (fresh `uid`).
    Entry {
        /// The continuations declared in the procedure body: name and
        /// the `CopyIn` node representing each.
        conts: Vec<(Name, NodeId)>,
        /// The first node of the body.
        next: NodeId,
    },
    /// Normal exit: "a return to continuation `j`" where "the call site
    /// must have exactly `n` alternate return continuations tagged with
    /// `also returns to`". `index == alternates` is the normal return.
    Exit {
        /// `j`: which return continuation of the suspended call site.
        index: u32,
        /// `n`: how many alternates the call site must declare.
        alternates: u32,
    },
    /// Put results from a call, or parameters to a procedure or
    /// continuation, into `vars`, and continue with `next`. Empties the
    /// argument-passing area `A`.
    ///
    /// A `CopyIn` with no variables also serves as the join point for a
    /// label (it moves zero values and resets `A`, which is dead at every
    /// label).
    CopyIn {
        /// The variables to receive `A`'s values.
        vars: Vec<Name>,
        /// Successor node.
        next: NodeId,
    },
    /// Make the values of `exprs` the results of a call or the parameters
    /// to a procedure or continuation (fills `A`), and continue.
    CopyOut {
        /// The values to place in `A`.
        exprs: Vec<Expr>,
        /// Successor node.
        next: NodeId,
    },
    /// Make `vars` the set of variables held in callee-saves registers
    /// (by spilling or reloading), and continue. "CalleeSaves nodes are
    /// introduced only by optimizers; they are not part of the direct
    /// translation of any C-- program into Abstract C--."
    CalleeSaves {
        /// The new callee-saves variable set `s`.
        vars: BTreeSet<Name>,
        /// Successor node.
        next: NodeId,
    },
    /// Assign `rhs` to `lhs` (a variable or memory location), and
    /// continue.
    Assign {
        /// The target.
        lhs: Lvalue,
        /// The value.
        rhs: Expr,
        /// Successor node.
        next: NodeId,
    },
    /// Branch to `t` or `f` according to whether `cond` is non-zero.
    Branch {
        /// The condition.
        cond: Expr,
        /// Successor when non-zero.
        t: NodeId,
        /// Successor when zero.
        f: NodeId,
    },
    /// Call procedure `callee`, returning to one of the nodes in the
    /// continuation bundle. Arguments will already be in `A` (placed by a
    /// preceding `CopyOut`).
    Call {
        /// The procedure to call.
        callee: Expr,
        /// The continuation bundle `(kp_r, kp_u, kp_c, abort)`.
        bundle: Bundle,
        /// Descriptor data blocks attached to this call site (§3.3),
        /// retrievable via the run-time interface's `GetDescriptor`.
        descriptors: Vec<Name>,
    },
    /// Tail-call procedure `callee`. Exits the current procedure.
    Jump {
        /// The procedure to tail-call.
        callee: Expr,
    },
    /// Cut the stack to continuation `cont`. Exits the current procedure.
    CutTo {
        /// The continuation value to cut to.
        cont: Expr,
        /// Flow edges from an `also cuts to` annotation on the `cut to`
        /// statement itself: possible targets in the *same* procedure,
        /// needed by the optimizer (§4.4).
        cuts: Vec<NodeId>,
    },
    /// Execute a procedure in the run-time system (§5.2's
    /// under-specified transitions). Appears only as the body of the
    /// distinguished [`crate::YIELD`] procedure.
    Yield,
}

impl Node {
    /// Intra-graph successor edges, including the exceptional edges
    /// through call bundles and `cut to` annotations. This is the edge
    /// set used for reachability and for the Table 3 dataflow rules.
    pub fn succs(&self) -> Vec<NodeId> {
        match self {
            Node::Entry { next, .. }
            | Node::CopyIn { next, .. }
            | Node::CopyOut { next, .. }
            | Node::CalleeSaves { next, .. }
            | Node::Assign { next, .. } => vec![*next],
            Node::Branch { t, f, .. } => vec![*t, *f],
            Node::Call { bundle, .. } => bundle.targets().collect(),
            Node::CutTo { cuts, .. } => cuts.clone(),
            Node::Exit { .. } | Node::Jump { .. } | Node::Yield => Vec::new(),
        }
    }

    /// Rewrites every successor edge with `f` (used by graph editors).
    pub fn map_succs(&mut self, mut f: impl FnMut(NodeId) -> NodeId) {
        match self {
            Node::Entry { next, conts } => {
                *next = f(*next);
                for (_, n) in conts {
                    *n = f(*n);
                }
            }
            Node::CopyIn { next, .. }
            | Node::CopyOut { next, .. }
            | Node::CalleeSaves { next, .. }
            | Node::Assign { next, .. } => *next = f(*next),
            Node::Branch { t, f: fl, .. } => {
                *t = f(*t);
                *fl = f(*fl);
            }
            Node::Call { bundle, .. } => {
                for n in bundle
                    .returns
                    .iter_mut()
                    .chain(bundle.unwinds.iter_mut())
                    .chain(bundle.cuts.iter_mut())
                {
                    *n = f(*n);
                }
            }
            Node::CutTo { cuts, .. } => {
                for n in cuts {
                    *n = f(*n);
                }
            }
            Node::Exit { .. } | Node::Jump { .. } | Node::Yield => {}
        }
    }

    /// True if control can leave the procedure at this node (no
    /// fall-through successor).
    pub fn is_exit_like(&self) -> bool {
        matches!(
            self,
            Node::Exit { .. } | Node::Jump { .. } | Node::CutTo { .. } | Node::Yield
        )
    }

    /// A short mnemonic for display.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Node::Entry { .. } => "Entry",
            Node::Exit { .. } => "Exit",
            Node::CopyIn { .. } => "CopyIn",
            Node::CopyOut { .. } => "CopyOut",
            Node::CalleeSaves { .. } => "CalleeSaves",
            Node::Assign { .. } => "Assign",
            Node::Branch { .. } => "Branch",
            Node::Call { .. } => "Call",
            Node::Jump { .. } => "Jump",
            Node::CutTo { .. } => "CutTo",
            Node::Yield => "Yield",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_normal_return_is_last() {
        let b = Bundle {
            returns: vec![NodeId(7), NodeId(8), NodeId(9)],
            unwinds: vec![NodeId(1)],
            cuts: vec![],
            aborts: true,
        };
        assert_eq!(b.normal_return(), NodeId(9));
        assert_eq!(b.alternates(), 2);
        assert_eq!(b.targets().count(), 4);
    }

    #[test]
    fn succs_cover_exceptional_edges() {
        let call = Node::Call {
            callee: Expr::var("g"),
            bundle: Bundle {
                returns: vec![NodeId(1)],
                unwinds: vec![NodeId(2), NodeId(3)],
                cuts: vec![NodeId(4)],
                aborts: false,
            },
            descriptors: vec![],
        };
        assert_eq!(
            call.succs(),
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert!(Node::Yield.succs().is_empty());
        assert!(Node::Exit {
            index: 0,
            alternates: 0
        }
        .succs()
        .is_empty());
    }

    #[test]
    fn map_succs_rewrites_all_edges() {
        let mut br = Node::Branch {
            cond: Expr::b32(1),
            t: NodeId(1),
            f: NodeId(2),
        };
        br.map_succs(|n| NodeId(n.0 + 10));
        assert_eq!(br.succs(), vec![NodeId(11), NodeId(12)]);
    }
}
