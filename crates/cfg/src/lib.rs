//! # cmm-cfg — Abstract C--
//!
//! "We regard a C-- program as the textual description of a control-flow
//! graph, or rather, of a set of named control-flow graphs, one for each
//! procedure" (§3.2). This crate defines **Abstract C--** (§5): the
//! control-flow-graph language that "resembles the flowgraph
//! representations used in optimizing compilers", with the node kinds of
//! the paper's Table 2:
//!
//! | Node | Meaning |
//! |---|---|
//! | `Entry`       | unique entry; binds the procedure's continuations |
//! | `Exit j n`    | return to continuation `j` of `n` alternates |
//! | `CopyIn`      | move values from the argument-passing area `A` into variables |
//! | `CopyOut`     | move expression values into `A` |
//! | `CalleeSaves` | change the set of variables held in callee-saves registers |
//! | `Assign`      | assignment to a variable or to memory |
//! | `Branch`      | conditional branch |
//! | `Call`        | call, with a *continuation bundle* `(kp_r, kp_u, kp_c, abort)` |
//! | `Jump`        | tail call |
//! | `CutTo`       | cut the stack to a continuation |
//! | `Yield`       | execute a procedure in the run-time system |
//!
//! [`build::build_program`] implements the §5.3 translation from C--
//! source (the `cmm-ir` AST) into Abstract C--, including the synthesis of
//! checking procedures for the `%%divu`-style fallible primitives of §4.3.
//!
//! A [`Program`] is the partial map *X* from names to procedures of §5,
//! together with a linked [`image::DataImage`] of the module's static data
//! and synthetic code addresses for procedures (so code pointers can be
//! stored in and fetched from memory).

pub mod build;
pub mod display;
pub mod graph;
pub mod image;
pub mod node;

pub use build::{build_program, BuildError};
pub use graph::{Graph, NodeId, Program};
pub use image::DataImage;
pub use node::{Bundle, Node};

/// The distinguished name of the run-time system's `yield` procedure.
///
/// Per §3.3, "the C-- thread initiates the interaction by calling the
/// special C-- procedure `yield`". In a [`Program`], this name maps to a
/// graph consisting of a single [`Node::Yield`].
pub const YIELD: &str = "yield";
