//! Linking: laying out static data and assigning code addresses.
//!
//! The abstract machine's memory `M` maps addresses to values (§5). To
//! let programs store and compare pointers, the builder lays out every
//! `data` block at a fixed address and assigns each procedure a synthetic
//! *code address* (a link-time constant that stands for its `Code` value
//! when stored in memory, as Figure 9's descriptor tables do with handler
//! entry points).
//!
//! The layout is:
//!
//! * data blocks from [`DataImage::DATA_BASE`] upward, 8-byte aligned;
//! * a "heap" region (for front-end run-time structures such as
//!   Figure 10's dynamic exception stack) from the end of the data
//!   upward, [`DataImage::HEAP_SIZE`] bytes;
//! * code addresses from [`DataImage::CODE_BASE`] upward, 16 bytes apart
//!   (so they can never collide with data addresses).

use cmm_ir::{DataItem, Module, Name, Ty};
use std::collections::BTreeMap;

/// The linked image of a module's static data.
#[derive(Clone, Debug, Default)]
pub struct DataImage {
    /// Initial memory contents: address → byte.
    pub bytes: BTreeMap<u64, u8>,
    /// Address of every symbol (data blocks and procedures).
    pub symbols: BTreeMap<Name, u64>,
    /// Reverse map for code addresses only.
    pub code_syms: BTreeMap<u64, Name>,
    /// First address past the static data.
    pub data_end: u64,
}

impl DataImage {
    /// Base address of static data.
    pub const DATA_BASE: u64 = 0x1000;
    /// Size of the scratch heap that follows the data.
    pub const HEAP_SIZE: u64 = 0x10_0000;
    /// Base of the synthetic code-address range.
    pub const CODE_BASE: u64 = 0x4000_0000;

    /// Address of a symbol, if defined.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// The procedure name a synthetic code address denotes, if any.
    pub fn code_symbol_at(&self, addr: u64) -> Option<&Name> {
        self.code_syms.get(&addr)
    }

    /// Base of the scratch heap region (8-byte aligned, above the data).
    pub fn heap_base(&self) -> u64 {
        align8(self.data_end.max(Self::DATA_BASE))
    }

    /// First address past the scratch heap.
    pub fn heap_end(&self) -> u64 {
        self.heap_base() + Self::HEAP_SIZE
    }

    /// Builds the image for a module. Procedure names get code
    /// addresses; data blocks are laid out and their initializers
    /// (including `sym` references to any symbol) are resolved.
    ///
    /// # Errors
    ///
    /// Returns the name of any `sym` reference that is not defined in
    /// the module.
    pub fn link(module: &Module) -> Result<DataImage, Name> {
        let mut img = DataImage::default();
        // Pass 1: assign code addresses to procedures...
        let mut code = Self::CODE_BASE;
        for p in module.procs() {
            img.symbols.insert(p.name.clone(), code);
            img.code_syms.insert(code, p.name.clone());
            code += 16;
        }
        // ...and data addresses to blocks.
        let mut addr = Self::DATA_BASE;
        let mut placed: Vec<(u64, &cmm_ir::DataBlock)> = Vec::new();
        for b in module.data_blocks() {
            addr = align8(addr);
            img.symbols.insert(b.name.clone(), addr);
            placed.push((addr, b));
            addr += b.size();
        }
        img.data_end = addr;
        // Pass 2: fill initializers (sym refs now resolvable).
        for (base, b) in placed {
            let mut at = base;
            for item in &b.items {
                match item {
                    DataItem::Words(ty, lits) => {
                        for lit in lits {
                            img.write_le(at, lit.bits, ty.bytes());
                            at += ty.bytes();
                        }
                    }
                    DataItem::SymRef(n) => {
                        let target = img.symbol(n.as_str()).ok_or_else(|| n.clone())?;
                        img.write_le(at, target, Ty::NATIVE_PTR.bytes());
                        at += Ty::NATIVE_PTR.bytes();
                    }
                    DataItem::Space(n) => {
                        // Uninitialized space reads as zero without
                        // materializing bytes in the image.
                        at += n;
                    }
                    DataItem::Str(s) => {
                        for (i, byte) in s.bytes().enumerate() {
                            img.bytes.insert(at + i as u64, byte);
                        }
                        img.bytes.insert(at + s.len() as u64, 0);
                        at += s.len() as u64 + 1;
                    }
                }
            }
        }
        Ok(img)
    }

    fn write_le(&mut self, addr: u64, value: u64, bytes: u64) {
        for i in 0..bytes {
            self.bytes
                .insert(addr + i, ((value >> (8 * i)) & 0xff) as u8);
        }
    }

    /// Reads `bytes` little-endian bytes from the image (zero where
    /// uninitialized); used by tests and by machine initialization.
    pub fn read_le(&self, addr: u64, bytes: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..bytes {
            v |= u64::from(*self.bytes.get(&(addr + i)).unwrap_or(&0)) << (8 * i);
        }
        v
    }
}

fn align8(a: u64) -> u64 {
    (a + 7) & !7
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_ir::{DataBlock, Lit, Proc};

    #[test]
    fn links_words_and_strings() {
        let mut m = Module::new();
        m.push_data(DataBlock::new(
            "d",
            vec![
                DataItem::Words(Ty::B32, vec![Lit::b32(0xdeadbeef)]),
                DataItem::Str("hi".into()),
            ],
        ));
        let img = DataImage::link(&m).unwrap();
        let base = img.symbol("d").unwrap();
        assert_eq!(img.read_le(base, 4), 0xdeadbeef);
        assert_eq!(img.read_le(base + 4, 1), u64::from(b'h'));
        assert_eq!(img.read_le(base + 6, 1), 0); // NUL
    }

    #[test]
    fn sym_refs_resolve_to_code_and_data() {
        let mut m = Module::new();
        m.push_proc(Proc::new("handler"));
        m.push_data(DataBlock::new(
            "t",
            vec![DataItem::SymRef(Name::from("handler"))],
        ));
        let img = DataImage::link(&m).unwrap();
        let base = img.symbol("t").unwrap();
        let code_addr = img.read_le(base, 4);
        assert_eq!(img.code_symbol_at(code_addr).unwrap(), "handler");
    }

    #[test]
    fn undefined_sym_is_an_error() {
        let mut m = Module::new();
        m.push_data(DataBlock::new(
            "t",
            vec![DataItem::SymRef(Name::from("nowhere"))],
        ));
        assert_eq!(DataImage::link(&m).unwrap_err(), Name::from("nowhere"));
    }

    #[test]
    fn blocks_are_aligned_and_disjoint() {
        let mut m = Module::new();
        m.push_data(DataBlock::new("a", vec![DataItem::Str("xyz".into())])); // 4 bytes
        m.push_data(DataBlock::new(
            "b",
            vec![DataItem::Words(Ty::B32, vec![Lit::b32(5)])],
        ));
        let img = DataImage::link(&m).unwrap();
        let a = img.symbol("a").unwrap();
        let b = img.symbol("b").unwrap();
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 4);
        assert!(img.heap_base() >= img.data_end);
        assert_eq!(img.heap_end() - img.heap_base(), DataImage::HEAP_SIZE);
    }
}
