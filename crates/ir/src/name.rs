//! Interned identifier names.
//!
//! C-- names denote local variables, global registers, procedures,
//! continuations, labels, and data blocks. [`Name`] is a cheap-to-clone,
//! hashable wrapper around a shared string.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An identifier name.
///
/// `Name` is reference-counted, so cloning is O(1); equality, ordering and
/// hashing are on the underlying string.
///
/// # Example
///
/// ```
/// use cmm_ir::Name;
/// let n = Name::from("sp1");
/// assert_eq!(n.as_str(), "sp1");
/// assert_eq!(n, Name::from("sp1"));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a name from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True for the reserved fallible-primitive namespace (`%%divu`, ...).
    ///
    /// Per §4.3 of the paper, each primitive that can fail has a
    /// fast-but-dangerous variant (`%divu`) and a slow-but-solid variant
    /// (`%%divu`) whose failure is mapped onto a `yield`.
    pub fn is_checked_primitive(&self) -> bool {
        self.0.starts_with("%%")
    }

    /// True for the unchecked-primitive namespace (`%divu`, but not `%%divu`).
    pub fn is_unchecked_primitive(&self) -> bool {
        self.0.starts_with('%') && !self.0.starts_with("%%")
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({:?})", &*self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(Arc::from(s))
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Self {
        n.clone()
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn name_equality_is_structural() {
        assert_eq!(Name::from("x"), Name::from("x"));
        assert_ne!(Name::from("x"), Name::from("y"));
    }

    #[test]
    fn name_clone_is_shallow() {
        let a = Name::from("long_procedure_name");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn name_hashes_like_str() {
        let mut set = HashSet::new();
        set.insert(Name::from("k0"));
        assert!(set.contains("k0"));
        assert!(!set.contains("k1"));
    }

    #[test]
    fn primitive_namespaces() {
        assert!(Name::from("%%divu").is_checked_primitive());
        assert!(!Name::from("%%divu").is_unchecked_primitive());
        assert!(Name::from("%divu").is_unchecked_primitive());
        assert!(!Name::from("%divu").is_checked_primitive());
        assert!(!Name::from("divu").is_unchecked_primitive());
    }

    #[test]
    fn display_and_debug() {
        let n = Name::from("loop");
        assert_eq!(n.to_string(), "loop");
        assert_eq!(format!("{n:?}"), "Name(\"loop\")");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let [a, b, k0, k1] = ["a", "b", "k0", "k1"].map(Name::from);
        assert!(a < b);
        assert!(k0 < k1);
    }
}
