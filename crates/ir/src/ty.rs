//! The C-- type system.
//!
//! Per §3.1 of the paper, C-- has "an extremely modest type system: the
//! only types are words and floating-point values of various sizes, e.g.
//! `bits8`, `bits16`, `bits32`, `bits64`, `float32`, and `float64`."
//!
//! The type system does not protect the programmer; its sole purpose is to
//! direct the compiler's use of machine resources. Each implementation
//! designates one `bitsN` type as the *native data-pointer type* and one as
//! the *native code-pointer type*; this reproduction follows the paper's
//! examples and uses `bits32` for both.

use std::fmt;

/// Width of an integer (`bitsN`) type, in bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Width {
    /// 8 bits.
    W8,
    /// 16 bits.
    W16,
    /// 32 bits.
    W32,
    /// 64 bits.
    W64,
}

impl Width {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// Number of bytes.
    pub fn bytes(self) -> u64 {
        u64::from(self.bits() / 8)
    }

    /// Mask selecting the low `bits()` bits of a `u64`.
    pub fn mask(self) -> u64 {
        match self {
            Width::W64 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// All widths, narrowest first.
    pub const ALL: [Width; 4] = [Width::W8, Width::W16, Width::W32, Width::W64];

    /// Parses `8`, `16`, `32`, or `64`.
    pub fn from_bits(bits: u32) -> Option<Width> {
        match bits {
            8 => Some(Width::W8),
            16 => Some(Width::W16),
            32 => Some(Width::W32),
            64 => Some(Width::W64),
            _ => None,
        }
    }
}

/// Width of a floating-point type, in bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FWidth {
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
}

impl FWidth {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            FWidth::F32 => 32,
            FWidth::F64 => 64,
        }
    }

    /// Number of bytes.
    pub fn bytes(self) -> u64 {
        u64::from(self.bits() / 8)
    }
}

/// A C-- type: a word or floating-point value of a given size.
///
/// # Example
///
/// ```
/// use cmm_ir::Ty;
/// assert_eq!(Ty::B32.to_string(), "bits32");
/// assert_eq!(Ty::F64.to_string(), "float64");
/// assert_eq!(Ty::B32.bytes(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Ty {
    /// An integer/word type of the given width.
    Bits(Width),
    /// A floating-point type of the given width.
    Float(FWidth),
}

impl Ty {
    /// `bits8`.
    pub const B8: Ty = Ty::Bits(Width::W8);
    /// `bits16`.
    pub const B16: Ty = Ty::Bits(Width::W16);
    /// `bits32`.
    pub const B32: Ty = Ty::Bits(Width::W32);
    /// `bits64`.
    pub const B64: Ty = Ty::Bits(Width::W64);
    /// `float32`.
    pub const F32: Ty = Ty::Float(FWidth::F32);
    /// `float64`.
    pub const F64: Ty = Ty::Float(FWidth::F64);

    /// The native data-pointer type (per the paper's examples, `bits32`).
    pub const NATIVE_PTR: Ty = Ty::B32;
    /// The native code-pointer type (per the paper's examples, `bits32`).
    pub const NATIVE_CODE_PTR: Ty = Ty::B32;

    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Ty::Bits(w) => w.bytes(),
            Ty::Float(w) => w.bytes(),
        }
    }

    /// Size in bits.
    pub fn bits(self) -> u32 {
        match self {
            Ty::Bits(w) => w.bits(),
            Ty::Float(w) => w.bits(),
        }
    }

    /// True if this is an integer (`bitsN`) type.
    pub fn is_bits(self) -> bool {
        matches!(self, Ty::Bits(_))
    }

    /// True if this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::Float(_))
    }

    /// Parses a type name like `bits32` or `float64`.
    pub fn parse_name(s: &str) -> Option<Ty> {
        if let Some(rest) = s.strip_prefix("bits") {
            return rest.parse().ok().and_then(Width::from_bits).map(Ty::Bits);
        }
        if let Some(rest) = s.strip_prefix("float") {
            return match rest {
                "32" => Some(Ty::F32),
                "64" => Some(Ty::F64),
                _ => None,
            };
        }
        None
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Bits(w) => write!(f, "bits{}", w.bits()),
            Ty::Float(w) => write!(f, "float{}", w.bits()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_masks() {
        assert_eq!(Width::W8.mask(), 0xff);
        assert_eq!(Width::W16.mask(), 0xffff);
        assert_eq!(Width::W32.mask(), 0xffff_ffff);
        assert_eq!(Width::W64.mask(), u64::MAX);
    }

    #[test]
    fn width_sizes() {
        assert_eq!(Width::W8.bytes(), 1);
        assert_eq!(Width::W64.bytes(), 8);
        assert_eq!(FWidth::F32.bytes(), 4);
        assert_eq!(FWidth::F64.bytes(), 8);
    }

    #[test]
    fn parse_round_trips_display() {
        for ty in [Ty::B8, Ty::B16, Ty::B32, Ty::B64, Ty::F32, Ty::F64] {
            assert_eq!(Ty::parse_name(&ty.to_string()), Some(ty));
        }
    }

    #[test]
    fn parse_rejects_bad_names() {
        assert_eq!(Ty::parse_name("bits7"), None);
        assert_eq!(Ty::parse_name("float16"), None);
        assert_eq!(Ty::parse_name("word32"), None);
        assert_eq!(Ty::parse_name("bits"), None);
    }

    #[test]
    fn native_pointer_types_are_32_bit() {
        assert_eq!(Ty::NATIVE_PTR.bytes(), 4);
        assert_eq!(Ty::NATIVE_CODE_PTR.bytes(), 4);
    }

    #[test]
    fn classification() {
        assert!(Ty::B32.is_bits());
        assert!(!Ty::B32.is_float());
        assert!(Ty::F64.is_float());
        assert!(!Ty::F64.is_bits());
    }
}
