//! # cmm-ir — abstract syntax for the C-- compiler-target language
//!
//! This crate defines the abstract syntax of C-- as described in
//! *"A single intermediate language that supports multiple implementations
//! of exceptions"* (Ramsey & Peyton Jones, PLDI 2000), §3–§4:
//!
//! * an extremely modest type system: words and floats of various sizes
//!   ([`Ty`]);
//! * pure, side-effect-free expressions ([`Expr`]) — effects occur only as
//!   the result of assignments or calls;
//! * statements ([`Stmt`]) including parallel assignment, conditionals,
//!   gotos, calls, tail calls (`jump`), multiple and *abnormal* returns
//!   (`return <i/n>`), and the stack-cutting primitive `cut to`;
//! * **weak continuations** ([`BodyItem::Continuation`]) — "a bit like a
//!   label with parameters" — which model exception handlers;
//! * **call-site annotations** ([`Annotations`]) — `also cuts to`,
//!   `also unwinds to`, `also returns to`, `also aborts` — which tell both
//!   the optimizer and the run-time system exactly which exceptional
//!   control transfers can take place.
//!
//! The crate also provides a pretty-printer ([`pretty`]) that regenerates
//! concrete syntax in the style of the paper's figures, so IR values can be
//! round-tripped through the parser in `cmm-parse`.
//!
//! # Example
//!
//! Build the `sp1` procedure of the paper's Figure 1 programmatically:
//!
//! ```
//! use cmm_ir::{build::ProcBuilder, Expr, Ty};
//!
//! let sp1 = ProcBuilder::new("sp1")
//!     .formal("n", Ty::B32)
//!     .locals([("s", Ty::B32), ("p", Ty::B32)])
//!     .build_with(|b| {
//!         b.if_(
//!             Expr::eq(Expr::var("n"), Expr::b32(1)),
//!             |t| { t.return_([Expr::b32(1), Expr::b32(1)]); },
//!             |e| {
//!                 e.call(["s", "p"], "sp1", [Expr::sub(Expr::var("n"), Expr::b32(1))]);
//!                 e.return_([
//!                     Expr::add(Expr::var("s"), Expr::var("n")),
//!                     Expr::mul(Expr::var("p"), Expr::var("n")),
//!                 ]);
//!             },
//!         );
//!     });
//! assert_eq!(sp1.name.as_str(), "sp1");
//! ```

pub mod build;
pub mod expr;
pub mod module;
pub mod name;
pub mod pretty;
pub mod proc;
pub mod stmt;
pub mod ty;
pub mod verify;

pub use expr::{BinOp, Expr, Lit, UnOp};
pub use module::{DataBlock, DataItem, Decl, GlobalReg, Module};
pub use name::Name;
pub use proc::{BodyItem, Proc};
pub use stmt::{AltReturn, Annotations, Lvalue, Stmt};
pub use ty::{FWidth, Ty, Width};
pub use verify::verify_module;
