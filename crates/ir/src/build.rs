//! Ergonomic builders for constructing IR programmatically.
//!
//! Front ends (and tests) construct procedures with [`ProcBuilder`] and
//! statement sequences with [`BlockBuilder`], avoiding verbose enum
//! literals.
//!
//! # Example
//!
//! The `sp3` loop procedure of the paper's Figure 1:
//!
//! ```
//! use cmm_ir::{build::ProcBuilder, Expr, Ty};
//!
//! let sp3 = ProcBuilder::new("sp3")
//!     .export()
//!     .formal("n", Ty::B32)
//!     .locals([("s", Ty::B32), ("p", Ty::B32)])
//!     .build_with(|b| {
//!         b.assign("s", Expr::b32(1));
//!         b.assign("p", Expr::b32(1));
//!         b.label("loop");
//!         b.if_(
//!             Expr::eq(Expr::var("n"), Expr::b32(1)),
//!             |t| { t.return_([Expr::var("s"), Expr::var("p")]); },
//!             |e| {
//!                 e.assign("s", Expr::add(Expr::var("s"), Expr::var("n")));
//!                 e.assign("p", Expr::mul(Expr::var("p"), Expr::var("n")));
//!                 e.assign("n", Expr::sub(Expr::var("n"), Expr::b32(1)));
//!                 e.goto("loop");
//!             },
//!         );
//!     });
//! assert_eq!(sp3.labels(), vec![cmm_ir::Name::from("loop")]);
//! ```

use crate::expr::Expr;
use crate::name::Name;
use crate::proc::{BodyItem, Proc};
use crate::stmt::{AltReturn, Annotations, Lvalue, Stmt};
use crate::ty::Ty;

/// Builder for a statement sequence (a procedure body or a branch of an
/// `if`).
#[derive(Debug, Default)]
pub struct BlockBuilder {
    items: Vec<BodyItem>,
}

impl BlockBuilder {
    /// A fresh, empty block.
    pub fn new() -> BlockBuilder {
        BlockBuilder::default()
    }

    /// Finishes the block, yielding its items.
    pub fn into_items(self) -> Vec<BodyItem> {
        self.items
    }

    /// Appends an arbitrary statement.
    pub fn stmt(&mut self, s: Stmt) -> &mut Self {
        self.items.push(BodyItem::Stmt(s));
        self
    }

    /// Appends an arbitrary body item.
    pub fn item(&mut self, i: BodyItem) -> &mut Self {
        self.items.push(i);
        self
    }

    /// `v = e;`
    pub fn assign(&mut self, v: impl Into<Name>, e: Expr) -> &mut Self {
        self.stmt(Stmt::assign(v, e))
    }

    /// Parallel assignment `v1, v2 = e1, e2;`
    pub fn assign_many<N: Into<Name>>(
        &mut self,
        vs: impl IntoIterator<Item = N>,
        es: impl IntoIterator<Item = Expr>,
    ) -> &mut Self {
        self.stmt(Stmt::Assign {
            lhs: vs.into_iter().map(|v| Lvalue::Var(v.into())).collect(),
            rhs: es.into_iter().collect(),
        })
    }

    /// `ty[addr] = e;`
    pub fn store(&mut self, ty: Ty, addr: Expr, e: Expr) -> &mut Self {
        self.stmt(Stmt::store(ty, addr, e))
    }

    /// `l:`
    pub fn label(&mut self, l: impl Into<Name>) -> &mut Self {
        self.item(BodyItem::Label(l.into()))
    }

    /// `goto l;`
    pub fn goto(&mut self, l: impl Into<Name>) -> &mut Self {
        self.stmt(Stmt::Goto { target: l.into() })
    }

    /// `if cond { then } else { else }`.
    pub fn if_(
        &mut self,
        cond: Expr,
        then_: impl FnOnce(&mut BlockBuilder),
        else_: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let mut t = BlockBuilder::new();
        then_(&mut t);
        let mut e = BlockBuilder::new();
        else_(&mut e);
        self.stmt(Stmt::If {
            cond,
            then_: t.into_items(),
            else_: e.into_items(),
        })
    }

    /// `if cond { then }` with an empty else branch.
    pub fn when(&mut self, cond: Expr, then_: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        self.if_(cond, then_, |_| {})
    }

    /// Unannotated call `r1, .. = f(args);`
    pub fn call<N: Into<Name>>(
        &mut self,
        results: impl IntoIterator<Item = N>,
        callee: impl Into<Name>,
        args: impl IntoIterator<Item = Expr>,
    ) -> &mut Self {
        self.stmt(Stmt::call(results, callee, args))
    }

    /// Annotated call `r1, .. = f(args) also ...;`
    pub fn call_ann<N: Into<Name>>(
        &mut self,
        results: impl IntoIterator<Item = N>,
        callee: impl Into<Name>,
        args: impl IntoIterator<Item = Expr>,
        anns: Annotations,
    ) -> &mut Self {
        self.stmt(Stmt::Call {
            results: results.into_iter().map(Into::into).collect(),
            callee: Expr::Name(callee.into()),
            args: args.into_iter().collect(),
            anns,
        })
    }

    /// Call through a computed callee expression.
    pub fn call_expr<N: Into<Name>>(
        &mut self,
        results: impl IntoIterator<Item = N>,
        callee: Expr,
        args: impl IntoIterator<Item = Expr>,
        anns: Annotations,
    ) -> &mut Self {
        self.stmt(Stmt::Call {
            results: results.into_iter().map(Into::into).collect(),
            callee,
            args: args.into_iter().collect(),
            anns,
        })
    }

    /// `jump f(args);`
    pub fn jump(
        &mut self,
        callee: impl Into<Name>,
        args: impl IntoIterator<Item = Expr>,
    ) -> &mut Self {
        self.stmt(Stmt::Jump {
            callee: Expr::Name(callee.into()),
            args: args.into_iter().collect(),
        })
    }

    /// `return (args);`
    pub fn return_(&mut self, args: impl IntoIterator<Item = Expr>) -> &mut Self {
        self.stmt(Stmt::return_(args))
    }

    /// `return <i/n> (args);`
    pub fn return_alt(
        &mut self,
        index: u32,
        count: u32,
        args: impl IntoIterator<Item = Expr>,
    ) -> &mut Self {
        self.stmt(Stmt::Return {
            alt: Some(AltReturn { index, count }),
            args: args.into_iter().collect(),
        })
    }

    /// `cut to k(args);`
    pub fn cut_to(&mut self, cont: Expr, args: impl IntoIterator<Item = Expr>) -> &mut Self {
        self.stmt(Stmt::CutTo {
            cont,
            args: args.into_iter().collect(),
            anns: Annotations::none(),
        })
    }

    /// `cut to k(args) also cuts to ...;`
    pub fn cut_to_ann(
        &mut self,
        cont: Expr,
        args: impl IntoIterator<Item = Expr>,
        anns: Annotations,
    ) -> &mut Self {
        self.stmt(Stmt::CutTo {
            cont,
            args: args.into_iter().collect(),
            anns,
        })
    }

    /// `yield(args) also ...;`
    pub fn yield_(&mut self, args: impl IntoIterator<Item = Expr>, anns: Annotations) -> &mut Self {
        self.stmt(Stmt::Yield {
            args: args.into_iter().collect(),
            anns,
        })
    }

    /// `continuation k(params):`
    pub fn continuation<N: Into<Name>>(
        &mut self,
        name: impl Into<Name>,
        params: impl IntoIterator<Item = N>,
    ) -> &mut Self {
        self.item(BodyItem::Continuation {
            name: name.into(),
            params: params.into_iter().map(Into::into).collect(),
        })
    }
}

/// Builder for a [`Proc`].
#[derive(Debug)]
pub struct ProcBuilder {
    proc: Proc,
}

impl ProcBuilder {
    /// Starts building a procedure with the given name.
    pub fn new(name: impl Into<Name>) -> ProcBuilder {
        ProcBuilder {
            proc: Proc::new(name),
        }
    }

    /// Marks the procedure as exported.
    pub fn export(mut self) -> Self {
        self.proc.exported = true;
        self
    }

    /// Adds a formal parameter.
    pub fn formal(mut self, name: impl Into<Name>, ty: Ty) -> Self {
        self.proc.formals.push((name.into(), ty));
        self
    }

    /// Adds a local variable.
    pub fn local(mut self, name: impl Into<Name>, ty: Ty) -> Self {
        self.proc.locals.push((name.into(), ty));
        self
    }

    /// Adds several local variables.
    pub fn locals<N: Into<Name>>(mut self, vars: impl IntoIterator<Item = (N, Ty)>) -> Self {
        for (n, ty) in vars {
            self.proc.locals.push((n.into(), ty));
        }
        self
    }

    /// Builds the body with a [`BlockBuilder`] and finishes the procedure.
    pub fn build_with(mut self, f: impl FnOnce(&mut BlockBuilder)) -> Proc {
        let mut b = BlockBuilder::new();
        f(&mut b);
        self.proc.body = b.into_items();
        self.proc
    }

    /// Finishes with an explicit body.
    pub fn body(mut self, items: Vec<BodyItem>) -> Proc {
        self.proc.body = items;
        self.proc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_figure1_sp2() {
        let sp2 = ProcBuilder::new("sp2")
            .export()
            .formal("n", Ty::B32)
            .build_with(|b| {
                b.jump("sp2_help", [Expr::var("n"), Expr::b32(1), Expr::b32(1)]);
            });
        assert!(sp2.exported);
        assert_eq!(sp2.formals.len(), 1);
        assert_eq!(sp2.body.len(), 1);
        match &sp2.body[0] {
            BodyItem::Stmt(Stmt::Jump { callee, args }) => {
                assert_eq!(callee, &Expr::var("sp2_help"));
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected jump, got {other:?}"),
        }
    }

    #[test]
    fn builder_nests_ifs() {
        let p = ProcBuilder::new("f").formal("x", Ty::B32).build_with(|b| {
            b.if_(
                Expr::var("x"),
                |t| {
                    t.when(Expr::eq(Expr::var("x"), Expr::b32(2)), |tt| {
                        tt.return_([Expr::b32(9)]);
                    });
                    t.return_([Expr::b32(1)]);
                },
                |e| {
                    e.return_([Expr::b32(0)]);
                },
            );
        });
        match &p.body[0] {
            BodyItem::Stmt(Stmt::If { then_, else_, .. }) => {
                assert_eq!(then_.len(), 2);
                assert_eq!(else_.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn builder_adds_continuations() {
        let p = ProcBuilder::new("f").local("x", Ty::B32).build_with(|b| {
            b.call_ann::<&str>([], "g", [], Annotations::cuts_to(["k"]));
            b.return_([]);
            b.continuation("k", ["x"]);
            b.return_([Expr::var("x")]);
        });
        assert_eq!(p.continuations().len(), 1);
    }
}
