//! C-- statements and call-site annotations.

use crate::expr::Expr;
use crate::name::Name;
use crate::ty::Ty;
use std::fmt;

/// The target of an assignment: a variable or a typed memory location.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Lvalue {
    /// A local variable or global register.
    Var(Name),
    /// A typed memory store target, `type[addr]`.
    Mem(Ty, Expr),
}

impl Lvalue {
    /// A variable target.
    pub fn var(n: impl Into<Name>) -> Lvalue {
        Lvalue::Var(n.into())
    }

    /// A `bits32` memory target.
    pub fn mem32(addr: Expr) -> Lvalue {
        Lvalue::Mem(Ty::B32, addr)
    }
}

/// Call-site annotations (§4.4 of the paper).
///
/// "The `also` annotations add extra flow edges, from the call site to the
/// specified continuations or to the exit node of the procedure (in the
/// case of `also aborts`). These edges express precisely the constraints
/// that exception handling imposes, but no more."
///
/// The names appearing in annotations are always names of continuations
/// declared in the same procedure as the call site.
///
/// `descriptors` models §3.3's facility for a front end to "associate with
/// each call site one or more arbitrary static data blocks, or
/// descriptors", retrievable at run time via `GetDescriptor`; the names
/// must name data blocks in the same module.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Annotations {
    /// `also cuts to k, ...` — the callee (or something it calls) may cut
    /// the stack directly to these continuations. Callee-saves registers
    /// are killed along these edges.
    pub cuts_to: Vec<Name>,
    /// `also unwinds to k, ...` — the run-time system may unwind the stack
    /// to these continuations (`SetUnwindCont(t, n)` selects the n'th).
    /// Callee-saves registers are restored along these edges.
    pub unwinds_to: Vec<Name>,
    /// `also returns to k, ...` — alternate (abnormal) return
    /// continuations, targeted by `return <i/n>`; the normal return point
    /// is always last.
    pub returns_to: Vec<Name>,
    /// `also aborts` — the activation containing the call may be
    /// discarded entirely (e.g. by unwinding or cutting past it).
    pub aborts: bool,
    /// `also descriptor d, ...` — static descriptor data blocks attached
    /// to this call site for the front-end run-time system.
    pub descriptors: Vec<Name>,
}

impl Annotations {
    /// Annotations with no exceptional edges at all.
    pub fn none() -> Annotations {
        Annotations::default()
    }

    /// True if no annotation is present.
    pub fn is_empty(&self) -> bool {
        self.cuts_to.is_empty()
            && self.unwinds_to.is_empty()
            && self.returns_to.is_empty()
            && !self.aborts
            && self.descriptors.is_empty()
    }

    /// `also cuts to` the given continuations.
    pub fn cuts_to<N: Into<Name>>(ks: impl IntoIterator<Item = N>) -> Annotations {
        Annotations {
            cuts_to: ks.into_iter().map(Into::into).collect(),
            ..Default::default()
        }
    }

    /// `also unwinds to` the given continuations.
    pub fn unwinds_to<N: Into<Name>>(ks: impl IntoIterator<Item = N>) -> Annotations {
        Annotations {
            unwinds_to: ks.into_iter().map(Into::into).collect(),
            ..Default::default()
        }
    }

    /// `also returns to` the given continuations.
    pub fn returns_to<N: Into<Name>>(ks: impl IntoIterator<Item = N>) -> Annotations {
        Annotations {
            returns_to: ks.into_iter().map(Into::into).collect(),
            ..Default::default()
        }
    }

    /// Adds `also aborts`.
    pub fn and_aborts(mut self) -> Annotations {
        self.aborts = true;
        self
    }

    /// Adds `also cuts to` continuations.
    pub fn and_cuts_to<N: Into<Name>>(mut self, ks: impl IntoIterator<Item = N>) -> Annotations {
        self.cuts_to.extend(ks.into_iter().map(Into::into));
        self
    }

    /// Adds `also unwinds to` continuations.
    pub fn and_unwinds_to<N: Into<Name>>(mut self, ks: impl IntoIterator<Item = N>) -> Annotations {
        self.unwinds_to.extend(ks.into_iter().map(Into::into));
        self
    }

    /// Adds `also returns to` continuations.
    pub fn and_returns_to<N: Into<Name>>(mut self, ks: impl IntoIterator<Item = N>) -> Annotations {
        self.returns_to.extend(ks.into_iter().map(Into::into));
        self
    }

    /// Adds a descriptor data block.
    pub fn and_descriptor(mut self, d: impl Into<Name>) -> Annotations {
        self.descriptors.push(d.into());
        self
    }

    /// Every continuation named in any annotation, in
    /// cuts/unwinds/returns order.
    pub fn continuations(&self) -> impl Iterator<Item = &Name> {
        self.cuts_to
            .iter()
            .chain(self.unwinds_to.iter())
            .chain(self.returns_to.iter())
    }
}

/// An abnormal-return specification `return <index/count>`.
///
/// Per §4.2: "`return <0/2>(values)` tells C-- that the caller has two
/// abnormal return continuations (in addition to the normal return point),
/// and causes a return to the first (index 0) of these two." The normal
/// return continuation is always the last, so a normal return among `n`
/// alternates is written `return <n/n>`; an unannotated `return` is
/// equivalent to `return <0/0>`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AltReturn {
    /// Which continuation to return to; `index == count` is the normal
    /// return point.
    pub index: u32,
    /// How many *alternate* return continuations the call site declares
    /// with `also returns to`.
    pub count: u32,
}

impl AltReturn {
    /// The normal return among `count` alternates (`return <count/count>`).
    pub fn normal(count: u32) -> AltReturn {
        AltReturn {
            index: count,
            count,
        }
    }

    /// True if this denotes the normal return point.
    pub fn is_normal(self) -> bool {
        self.index == self.count
    }
}

impl fmt::Display for AltReturn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}/{}>", self.index, self.count)
    }
}

/// A C-- statement.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    /// Parallel assignment `x, type[a] = e1, e2;`. The right-hand sides
    /// are all evaluated before any target is written.
    Assign {
        /// Assignment targets.
        lhs: Vec<Lvalue>,
        /// Right-hand sides, one per target.
        rhs: Vec<Expr>,
    },
    /// `if cond { then } else { else_ }`. A zero or non-zero `bits` value
    /// of the condition selects the branch.
    If {
        /// The condition expression.
        cond: Expr,
        /// Statements executed when the condition is non-zero.
        then_: Vec<crate::proc::BodyItem>,
        /// Statements executed when the condition is zero.
        else_: Vec<crate::proc::BodyItem>,
    },
    /// `goto l;` — an intraprocedural jump to a label in the same
    /// procedure.
    Goto {
        /// The target label.
        target: Name,
    },
    /// A procedure call `r1, r2 = g(args) also ...;`.
    Call {
        /// Variables receiving the results of a normal return.
        results: Vec<Name>,
        /// The procedure to call (usually a name; may be computed).
        callee: Expr,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Exceptional-flow annotations.
        anns: Annotations,
    },
    /// A tail call `jump g(args);` — same semantics as call-then-return,
    /// but guaranteed to deallocate the caller's activation first.
    Jump {
        /// The procedure to tail-call.
        callee: Expr,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `return (args);` or the abnormal `return <i/n> (args);`.
    Return {
        /// Abnormal-return specification; `None` means `return <0/0>`.
        alt: Option<AltReturn>,
        /// Result expressions.
        args: Vec<Expr>,
    },
    /// `cut to k(args) also cuts to ...;` — transfer control to a
    /// continuation, truncating the stack to its activation, in constant
    /// time and without restoring callee-saves registers (§4.2).
    CutTo {
        /// The continuation value to cut to.
        cont: Expr,
        /// Argument expressions for the continuation's parameters.
        args: Vec<Expr>,
        /// `also cuts to` annotations naming possible targets in the
        /// *current* procedure (an unannotated `cut to` is considered
        /// simply to exit the current procedure).
        anns: Annotations,
    },
    /// `yield(args) also ...;` — a coroutine call into the front-end
    /// run-time system (§3.3), requesting a service such as exception
    /// dispatch. The run-time system may resume execution at the normal
    /// return point or at any continuation listed in the annotations,
    /// subject to the §5.2 `Yield` transition rules.
    Yield {
        /// Arguments made available to the run-time system (e.g. an
        /// exception code).
        args: Vec<Expr>,
        /// Exceptional-flow annotations, exactly as for a call.
        anns: Annotations,
    },
}

impl Stmt {
    /// Simple single assignment `v = e;`.
    pub fn assign(v: impl Into<Name>, e: Expr) -> Stmt {
        Stmt::Assign {
            lhs: vec![Lvalue::Var(v.into())],
            rhs: vec![e],
        }
    }

    /// Memory store `type[a] = e;`.
    pub fn store(ty: Ty, addr: Expr, e: Expr) -> Stmt {
        Stmt::Assign {
            lhs: vec![Lvalue::Mem(ty, addr)],
            rhs: vec![e],
        }
    }

    /// Plain `return (args);`.
    pub fn return_(args: impl IntoIterator<Item = Expr>) -> Stmt {
        Stmt::Return {
            alt: None,
            args: args.into_iter().collect(),
        }
    }

    /// A call with no annotations.
    pub fn call<N: Into<Name>>(
        results: impl IntoIterator<Item = N>,
        callee: impl Into<Name>,
        args: impl IntoIterator<Item = Expr>,
    ) -> Stmt {
        Stmt::Call {
            results: results.into_iter().map(Into::into).collect(),
            callee: Expr::Name(callee.into()),
            args: args.into_iter().collect(),
            anns: Annotations::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_builders_compose() {
        let a = Annotations::cuts_to(["k1"])
            .and_unwinds_to(["k2", "k3"])
            .and_returns_to(["k4"])
            .and_aborts()
            .and_descriptor("d0");
        assert_eq!(a.cuts_to, vec![Name::from("k1")]);
        assert_eq!(a.unwinds_to.len(), 2);
        assert_eq!(a.returns_to, vec![Name::from("k4")]);
        assert!(a.aborts);
        assert_eq!(a.descriptors, vec![Name::from("d0")]);
        assert_eq!(a.continuations().count(), 4);
        assert!(!a.is_empty());
        assert!(Annotations::none().is_empty());
    }

    #[test]
    fn alt_return_normal() {
        assert!(AltReturn::normal(2).is_normal());
        assert!(!AltReturn { index: 0, count: 2 }.is_normal());
        assert_eq!(AltReturn { index: 0, count: 2 }.to_string(), "<0/2>");
    }

    #[test]
    fn stmt_helpers() {
        let s = Stmt::assign("x", Expr::b32(1));
        match s {
            Stmt::Assign { lhs, rhs } => {
                assert_eq!(lhs, vec![Lvalue::var("x")]);
                assert_eq!(rhs, vec![Expr::b32(1)]);
            }
            _ => panic!("expected assignment"),
        }
        match Stmt::return_([Expr::b32(1), Expr::b32(2)]) {
            Stmt::Return { alt: None, args } => assert_eq!(args.len(), 2),
            _ => panic!("expected return"),
        }
    }
}
