//! Static well-formedness checks for C-- modules.
//!
//! The paper leaves many properties to the front end: "a continuation can
//! be declared only inside a procedure" whose "formal parameters" must be
//! variables of the enclosing procedure (§4.1); the names in `also`
//! annotations "are always names of continuations declared in the same
//! procedure as the call site" (§4.4); an invalid program is an unchecked
//! run-time error. This module checks those properties *statically*, so
//! tools that synthesize IR (front ends, the `cmm-difftest` program
//! generator) can validate their output before handing it to the
//! translator or a substrate.
//!
//! [`verify_module`] returns a list of human-readable violations; an empty
//! list means the module is well formed. The checks are purely syntactic —
//! no control-flow or type reconstruction — so a well-formed module can
//! still go wrong at run time (e.g. by cutting to a dead continuation).

use crate::expr::{BinOp, Expr};
use crate::module::{DataItem, Decl, Module};
use crate::name::Name;
use crate::proc::{BodyItem, Proc};
use crate::stmt::{Annotations, Lvalue, Stmt};
use std::collections::BTreeSet;

/// Checks every procedure and data block of a module.
///
/// Returns one message per violation; an empty vector means the module is
/// well formed.
pub fn verify_module(m: &Module) -> Vec<String> {
    let mut errors = Vec::new();
    let mut globals: BTreeSet<&str> = BTreeSet::new();
    let mut toplevel: BTreeSet<&str> = BTreeSet::new();

    for d in &m.decls {
        let name = match d {
            Decl::Proc(p) => Some(p.name.as_str()),
            Decl::Data(b) => Some(b.name.as_str()),
            Decl::Register(r) => Some(r.name.as_str()),
            Decl::Import(_) | Decl::Export(_) => None,
        };
        if let Some(n) = name {
            if !toplevel.insert(n) {
                errors.push(format!("duplicate top-level name `{n}`"));
            }
        }
        match d {
            Decl::Register(r) => {
                globals.insert(r.name.as_str());
            }
            Decl::Import(ns) => globals.extend(ns.iter().map(Name::as_str)),
            _ => {}
        }
    }
    globals.extend(m.procs().map(|p| p.name.as_str()));
    globals.extend(m.data_blocks().map(|b| b.name.as_str()));

    for b in m.data_blocks() {
        for item in &b.items {
            if let DataItem::SymRef(n) = item {
                if !globals.contains(n.as_str()) {
                    errors.push(format!("data `{}`: sym ref to unknown name `{n}`", b.name));
                }
            }
        }
    }
    for p in m.procs() {
        verify_proc(p, &globals, &mut errors);
    }
    errors
}

/// Checks a single procedure against a set of known global names
/// (procedures, data blocks, registers, imports).
pub fn verify_proc(p: &Proc, globals: &BTreeSet<&str>, errors: &mut Vec<String>) {
    let at = |msg: String| format!("proc `{}`: {msg}", p.name);

    // Variable declarations are unique.
    let mut vars: BTreeSet<&str> = BTreeSet::new();
    for (n, _) in p.all_vars() {
        if !vars.insert(n.as_str()) {
            errors.push(at(format!("variable `{n}` declared twice")));
        }
    }

    // Labels and continuations are unique code points.
    let labels: Vec<Name> = p.labels();
    let conts: Vec<(Name, Vec<Name>)> = p.continuations();
    let mut points: BTreeSet<&str> = BTreeSet::new();
    for l in &labels {
        if !points.insert(l.as_str()) {
            errors.push(at(format!("label `{l}` defined twice")));
        }
    }
    for (k, params) in &conts {
        if !points.insert(k.as_str()) {
            errors.push(at(format!(
                "continuation `{k}` clashes with another label or continuation"
            )));
        }
        // "The parameters are not binding instances; they must be declared
        // local variables of the enclosing procedure."
        for v in params {
            if !vars.contains(v.as_str()) {
                errors.push(at(format!(
                    "continuation `{k}` parameter `{v}` is not a declared variable"
                )));
            }
        }
    }

    let cont_names: BTreeSet<&str> = conts.iter().map(|(k, _)| k.as_str()).collect();
    let label_names: BTreeSet<&str> = labels.iter().map(Name::as_str).collect();
    let cx = ProcCx {
        proc: p,
        vars,
        cont_names,
        label_names,
        globals,
    };
    cx.items(&p.body, errors);
}

struct ProcCx<'a> {
    proc: &'a Proc,
    vars: BTreeSet<&'a str>,
    cont_names: BTreeSet<&'a str>,
    label_names: BTreeSet<&'a str>,
    globals: &'a BTreeSet<&'a str>,
}

impl ProcCx<'_> {
    fn at(&self, msg: String) -> String {
        format!("proc `{}`: {msg}", self.proc.name)
    }

    /// A name in expression position may denote a variable, a continuation
    /// value, or a global (procedure, data block, register, import).
    fn known(&self, n: &Name) -> bool {
        self.vars.contains(n.as_str())
            || self.cont_names.contains(n.as_str())
            || self.globals.contains(n.as_str())
    }

    fn expr(&self, e: &Expr, errors: &mut Vec<String>) {
        e.visit_names(&mut |n| {
            if !self.known(n) {
                errors.push(self.at(format!("unknown name `{n}` in expression")));
            }
        });
    }

    fn var_target(&self, n: &Name, what: &str, errors: &mut Vec<String>) {
        if !self.vars.contains(n.as_str()) && !self.globals.contains(n.as_str()) {
            errors.push(self.at(format!("{what} `{n}` is not a declared variable")));
        }
    }

    fn anns(&self, anns: &Annotations, errors: &mut Vec<String>) {
        // "The names appearing in annotations are always names of
        // continuations declared in the same procedure as the call site."
        for k in anns.continuations() {
            if !self.cont_names.contains(k.as_str()) {
                errors.push(self.at(format!(
                    "annotation names `{k}`, which is not a continuation of this procedure"
                )));
            }
        }
        for d in &anns.descriptors {
            if !self.globals.contains(d.as_str()) {
                errors.push(self.at(format!("descriptor `{d}` is not a known data block")));
            }
        }
    }

    fn items(&self, items: &[BodyItem], errors: &mut Vec<String>) {
        for item in items {
            match item {
                BodyItem::Stmt(s) => self.stmt(s, errors),
                BodyItem::Label(_) | BodyItem::Continuation { .. } => {}
            }
        }
    }

    fn stmt(&self, s: &Stmt, errors: &mut Vec<String>) {
        match s {
            Stmt::Assign { lhs, rhs } => {
                if lhs.len() != rhs.len() {
                    errors.push(self.at(format!(
                        "parallel assignment of {} targets from {} expressions",
                        lhs.len(),
                        rhs.len()
                    )));
                }
                for l in lhs {
                    match l {
                        Lvalue::Var(n) => self.var_target(n, "assignment target", errors),
                        Lvalue::Mem(_, a) => self.expr(a, errors),
                    }
                }
                for e in rhs {
                    self.expr(e, errors);
                }
            }
            Stmt::If { cond, then_, else_ } => {
                self.expr(cond, errors);
                self.items(then_, errors);
                self.items(else_, errors);
            }
            Stmt::Goto { target } => {
                if !self.label_names.contains(target.as_str())
                    && !self.cont_names.contains(target.as_str())
                {
                    errors.push(self.at(format!("goto to unknown label `{target}`")));
                }
            }
            Stmt::Call {
                results,
                callee,
                args,
                anns,
            } => {
                for r in results {
                    self.var_target(r, "call result", errors);
                }
                match callee {
                    // `%%`-names are the slow-but-solid checked primitives
                    // (§4.3), which "take the form of procedure calls".
                    Expr::Name(n) if n.as_str().starts_with("%%") => {
                        if BinOp::checked_primitive(n.as_str()).is_none() {
                            errors.push(self.at(format!("unknown checked primitive `{n}`")));
                        } else if args.len() != 2 || results.len() != 1 {
                            errors.push(self.at(format!(
                                "checked primitive `{n}` takes 2 arguments and 1 result"
                            )));
                        }
                    }
                    e => self.expr(e, errors),
                }
                for a in args {
                    self.expr(a, errors);
                }
                self.anns(anns, errors);
            }
            Stmt::Jump { callee, args } => {
                self.expr(callee, errors);
                for a in args {
                    self.expr(a, errors);
                }
            }
            Stmt::Return { alt, args } => {
                if let Some(alt) = alt {
                    if alt.index > alt.count {
                        errors.push(self.at(format!(
                            "return <{}/{}> index exceeds alternate count",
                            alt.index, alt.count
                        )));
                    }
                }
                for a in args {
                    self.expr(a, errors);
                }
            }
            Stmt::CutTo { cont, args, anns } => {
                self.expr(cont, errors);
                for a in args {
                    self.expr(a, errors);
                }
                self.anns(anns, errors);
            }
            Stmt::Yield { args, anns } => {
                for a in args {
                    self.expr(a, errors);
                }
                self.anns(anns, errors);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProcBuilder;
    use crate::ty::Ty;

    fn verify_src_ok(p: Proc) -> Vec<String> {
        let mut m = Module::new();
        m.push_proc(p);
        verify_module(&m)
    }

    #[test]
    fn accepts_well_formed_procedure() {
        let p = ProcBuilder::new("f").formal("x", Ty::B32).build_with(|b| {
            b.return_([Expr::var("x")]);
        });
        assert_eq!(verify_src_ok(p), Vec::<String>::new());
    }

    #[test]
    fn rejects_unknown_names_and_targets() {
        let mut p = Proc::new("f");
        p.body
            .push(BodyItem::Stmt(Stmt::assign("x", Expr::var("y"))));
        p.body.push(BodyItem::Stmt(Stmt::Goto {
            target: Name::from("nowhere"),
        }));
        let errors = verify_src_ok(p);
        assert!(errors.iter().any(|e| e.contains("`x`")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("`y`")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("nowhere")), "{errors:?}");
    }

    #[test]
    fn rejects_annotation_to_missing_continuation() {
        let mut p = Proc::new("f");
        p.locals.push((Name::from("r"), Ty::B32));
        p.body.push(BodyItem::Stmt(Stmt::Call {
            results: vec![Name::from("r")],
            callee: Expr::var("f"),
            args: vec![],
            anns: Annotations::cuts_to(["k"]),
        }));
        let errors = verify_src_ok(p);
        assert!(
            errors.iter().any(|e| e.contains("not a continuation")),
            "{errors:?}"
        );
    }

    #[test]
    fn rejects_continuation_param_not_declared() {
        let mut p = Proc::new("f");
        p.body.push(BodyItem::Continuation {
            name: Name::from("k"),
            params: vec![Name::from("ghost")],
        });
        let errors = verify_src_ok(p);
        assert!(errors.iter().any(|e| e.contains("ghost")), "{errors:?}");
    }

    #[test]
    fn rejects_bad_checked_primitive() {
        let mut p = Proc::new("f");
        p.locals.push((Name::from("r"), Ty::B32));
        p.body.push(BodyItem::Stmt(Stmt::Call {
            results: vec![Name::from("r")],
            callee: Expr::var("%%frobnicate"),
            args: vec![Expr::b32(1), Expr::b32(2)],
            anns: Annotations::none(),
        }));
        let errors = verify_src_ok(p);
        assert!(
            errors.iter().any(|e| e.contains("%%frobnicate")),
            "{errors:?}"
        );
    }

    #[test]
    fn rejects_arity_mismatch_and_duplicates() {
        let mut m = Module::new();
        let mut p = Proc::new("f");
        p.locals.push((Name::from("x"), Ty::B32));
        p.locals.push((Name::from("x"), Ty::B32));
        p.body.push(BodyItem::Stmt(Stmt::Assign {
            lhs: vec![Lvalue::var("x")],
            rhs: vec![Expr::b32(1), Expr::b32(2)],
        }));
        m.push_proc(p);
        m.push_proc(Proc::new("f"));
        let errors = verify_module(&m);
        assert!(
            errors.iter().any(|e| e.contains("declared twice")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("parallel assignment")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("duplicate top-level")),
            "{errors:?}"
        );
    }

    #[test]
    fn parsed_figure_style_program_is_well_formed() {
        let src = r#"
            data d { bits32 1, 2; }
            f(bits32 x) {
                bits32 r, e;
                r = g(x, k) also cuts to k also unwinds to ku also descriptor d;
                return (r);
                continuation k(e):
                return (e + 1);
                continuation ku(e):
                return (e + 2);
            }
            g(bits32 x, bits32 kk) {
                if x == 0 { cut to kk(7); }
                return (x);
            }
        "#;
        let m = cmm_parse_stub(src);
        assert_eq!(verify_module(&m), Vec::<String>::new());
    }

    // The ir crate cannot depend on cmm-parse (cycle); build the same
    // module programmatically for the figure-style test above.
    fn cmm_parse_stub(_src: &str) -> Module {
        use crate::expr::Lit;
        use crate::module::{DataBlock, DataItem};
        let mut m = Module::new();
        m.push_data(DataBlock::new(
            "d",
            vec![DataItem::Words(Ty::B32, vec![Lit::b32(1), Lit::b32(2)])],
        ));
        let f = ProcBuilder::new("f")
            .formal("x", Ty::B32)
            .locals([("r", Ty::B32), ("e", Ty::B32)])
            .build_with(|b| {
                b.stmt(Stmt::Call {
                    results: vec![Name::from("r")],
                    callee: Expr::var("g"),
                    args: vec![Expr::var("x"), Expr::var("k")],
                    anns: Annotations::cuts_to(["k"])
                        .and_unwinds_to(["ku"])
                        .and_descriptor("d"),
                });
                b.return_([Expr::var("r")]);
                b.continuation("k", ["e"]);
                b.return_([Expr::add(Expr::var("e"), Expr::b32(1))]);
                b.continuation("ku", ["e"]);
                b.return_([Expr::add(Expr::var("e"), Expr::b32(2))]);
            });
        m.push_proc(f);
        let g = ProcBuilder::new("g")
            .formal("x", Ty::B32)
            .formal("kk", Ty::B32)
            .build_with(|b| {
                b.if_(
                    Expr::eq(Expr::var("x"), Expr::b32(0)),
                    |t| {
                        t.stmt(Stmt::CutTo {
                            cont: Expr::var("kk"),
                            args: vec![Expr::b32(7)],
                            anns: Annotations::none(),
                        });
                    },
                    |_| {},
                );
                b.return_([Expr::var("x")]);
            });
        m.push_proc(g);
        m
    }
}
