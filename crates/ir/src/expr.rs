//! Pure C-- expressions.
//!
//! Per §4.3 of the paper: "C-- expressions represent pure computations on
//! values; they are evaluated without side effects, which occur only as the
//! result of assignments or calls."
//!
//! Operators in the `%` namespace that can fail (like `%divu` with a zero
//! divisor) have *unspecified* behaviour on failure; our operational
//! semantics makes such evaluation "go wrong". The slow-but-solid `%%`
//! variants are not expressions — they take the form of procedure calls and
//! map failure onto a `yield` (see `cmm-sem`).

use crate::name::Name;
use crate::ty::{FWidth, Ty, Width};
use std::fmt;

/// A literal constant, stored as the raw bit pattern of its type.
///
/// Floating literals store the IEEE-754 bits of the value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Lit {
    /// The type of the literal.
    pub ty: Ty,
    /// The bit pattern, zero-extended to 64 bits.
    pub bits: u64,
}

impl Lit {
    /// A `bitsN` literal; the value is truncated to the width.
    pub fn bits(width: Width, value: u64) -> Lit {
        Lit {
            ty: Ty::Bits(width),
            bits: value & width.mask(),
        }
    }

    /// A `bits32` literal.
    pub fn b32(value: u32) -> Lit {
        Lit::bits(Width::W32, u64::from(value))
    }

    /// A `bits64` literal.
    pub fn b64(value: u64) -> Lit {
        Lit::bits(Width::W64, value)
    }

    /// A `float32` literal.
    pub fn f32(value: f32) -> Lit {
        Lit {
            ty: Ty::F32,
            bits: u64::from(value.to_bits()),
        }
    }

    /// A `float64` literal.
    pub fn f64(value: f64) -> Lit {
        Lit {
            ty: Ty::F64,
            bits: value.to_bits(),
        }
    }

    /// Interprets the bit pattern as `f64` (only meaningful for float types).
    pub fn as_f64(&self) -> f64 {
        match self.ty {
            Ty::Float(FWidth::F32) => f64::from(f32::from_bits(self.bits as u32)),
            _ => f64::from_bits(self.bits),
        }
    }

    /// Interprets the bit pattern as a signed integer of the literal's width.
    pub fn as_signed(&self) -> i64 {
        match self.ty {
            Ty::Bits(w) => sign_extend(self.bits, w),
            Ty::Float(_) => self.bits as i64,
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Ty::Bits(Width::W32) => write!(f, "{}", self.bits),
            Ty::Bits(w) => write!(f, "{}::bits{}", self.bits, w.bits()),
            Ty::Float(w) => write!(f, "{:?}::float{}", self.as_f64(), w.bits()),
        }
    }
}

/// Sign-extends the low `w` bits of `bits` to an `i64`.
pub fn sign_extend(bits: u64, w: Width) -> i64 {
    let shift = 64 - w.bits();
    ((bits << shift) as i64) >> shift
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Two's-complement negation (`%neg`).
    Neg,
    /// Bitwise complement (`%com`).
    Com,
    /// Zero-extend to the given width (`%zx32` etc.).
    Zx(Width),
    /// Sign-extend to the given width (`%sx32` etc.).
    Sx(Width),
    /// Truncate to the low bits of the given width (`%lo8` etc.).
    Lo(Width),
    /// Floating negation (`%fneg`).
    FNeg,
}

impl UnOp {
    /// The operator's name in concrete syntax.
    pub fn name(self) -> String {
        match self {
            UnOp::Neg => "%neg".into(),
            UnOp::Com => "%com".into(),
            UnOp::Zx(w) => format!("%zx{}", w.bits()),
            UnOp::Sx(w) => format!("%sx{}", w.bits()),
            UnOp::Lo(w) => format!("%lo{}", w.bits()),
            UnOp::FNeg => "%fneg".into(),
        }
    }

    /// Evaluates the operator on a bit pattern of width `w`.
    ///
    /// Returns the result bits and the result width.
    pub fn eval(self, w: Width, a: u64) -> (u64, Width) {
        match self {
            UnOp::Neg => (a.wrapping_neg() & w.mask(), w),
            UnOp::Com => (!a & w.mask(), w),
            UnOp::Zx(to) => (a & w.mask() & to.mask(), to),
            UnOp::Sx(to) => ((sign_extend(a, w) as u64) & to.mask(), to),
            UnOp::Lo(to) => (a & to.mask(), to),
            UnOp::FNeg => match w {
                Width::W32 => (u64::from((-f32::from_bits(a as u32)).to_bits()), w),
                _ => ((-f64::from_bits(a)).to_bits(), w),
            },
        }
    }
}

/// Binary operators.
///
/// Comparison operators yield `bits32` 1 (true) or 0 (false). Division and
/// modulus by zero are failures: the fast `%`-variants' behaviour is
/// unspecified, which the semantics models by going wrong.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (`%divu`); fails on zero divisor.
    DivU,
    /// Unsigned modulus (`%modu`); fails on zero divisor.
    ModU,
    /// Signed division (`%divs`); fails on zero divisor or overflow.
    DivS,
    /// Signed modulus (`%mods`); fails on zero divisor.
    ModS,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Shift left; fails if the shift amount is ≥ the width.
    Shl,
    /// Logical shift right; fails if the shift amount is ≥ the width.
    ShrU,
    /// Arithmetic shift right; fails if the shift amount is ≥ the width.
    ShrS,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Unsigned less-than.
    LtU,
    /// Unsigned less-or-equal.
    LeU,
    /// Unsigned greater-than.
    GtU,
    /// Unsigned greater-or-equal.
    GeU,
    /// Signed less-than.
    LtS,
    /// Signed less-or-equal.
    LeS,
    /// Signed greater-than.
    GtS,
    /// Signed greater-or-equal.
    GeS,
    /// Floating addition.
    FAdd,
    /// Floating subtraction.
    FSub,
    /// Floating multiplication.
    FMul,
    /// Floating division.
    FDiv,
    /// Floating equality.
    FEq,
    /// Floating less-than.
    FLt,
    /// Floating less-or-equal.
    FLe,
}

/// Why a pure operator application failed to produce a value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpError {
    /// Division or modulus by zero.
    DivideByZero,
    /// Signed division overflow (`MIN / -1`).
    Overflow,
    /// Shift amount not less than the operand width.
    ShiftOutOfRange,
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::DivideByZero => write!(f, "division by zero"),
            OpError::Overflow => write!(f, "signed division overflow"),
            OpError::ShiftOutOfRange => write!(f, "shift amount out of range"),
        }
    }
}

impl std::error::Error for OpError {}

impl BinOp {
    /// The operator's concrete-syntax spelling, infix where one exists.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::DivU => "/",
            BinOp::ModU => "%",
            BinOp::DivS => "%divs",
            BinOp::ModS => "%mods",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::ShrU => ">>",
            BinOp::ShrS => "%shrs",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LtU => "<",
            BinOp::LeU => "<=",
            BinOp::GtU => ">",
            BinOp::GeU => ">=",
            BinOp::LtS => "%lts",
            BinOp::LeS => "%les",
            BinOp::GtS => "%gts",
            BinOp::GeS => "%ges",
            BinOp::FAdd => "%fadd",
            BinOp::FSub => "%fsub",
            BinOp::FMul => "%fmul",
            BinOp::FDiv => "%fdiv",
            BinOp::FEq => "%feq",
            BinOp::FLt => "%flt",
            BinOp::FLe => "%fle",
        }
    }

    /// True if the operator is written infix in concrete syntax (the
    /// bare `%` of `%modu` is infix; multi-character `%`-names like
    /// `%divs` are prefix applications).
    pub fn is_infix(self) -> bool {
        let s = self.symbol();
        s == "%" || !s.starts_with('%')
    }

    /// True if this is a comparison (result is a `bits32` truth value).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::LtU
                | BinOp::LeU
                | BinOp::GtU
                | BinOp::GeU
                | BinOp::LtS
                | BinOp::LeS
                | BinOp::GtS
                | BinOp::GeS
                | BinOp::FEq
                | BinOp::FLt
                | BinOp::FLe
        )
    }

    /// True if this operator can fail (and therefore has a `%%` variant).
    pub fn can_fail(self) -> bool {
        matches!(
            self,
            BinOp::DivU
                | BinOp::ModU
                | BinOp::DivS
                | BinOp::ModS
                | BinOp::Shl
                | BinOp::ShrU
                | BinOp::ShrS
        )
    }

    /// Looks up a fallible primitive by checked name, e.g. `"%%divu"`.
    pub fn checked_primitive(name: &str) -> Option<BinOp> {
        match name {
            "%%divu" => Some(BinOp::DivU),
            "%%modu" => Some(BinOp::ModU),
            "%%divs" => Some(BinOp::DivS),
            "%%mods" => Some(BinOp::ModS),
            "%%shl" => Some(BinOp::Shl),
            "%%shru" => Some(BinOp::ShrU),
            "%%shrs" => Some(BinOp::ShrS),
            _ => None,
        }
    }

    /// Evaluates the operator on two bit patterns of width `w`.
    ///
    /// Returns the result bits and result width (comparisons yield `W32`).
    ///
    /// # Errors
    ///
    /// Returns an [`OpError`] when the operation fails (zero divisor,
    /// signed overflow, out-of-range shift). Callers decide whether failure
    /// is "unspecified behaviour" (`%divu`: go wrong) or a `yield`
    /// (`%%divu`).
    pub fn eval(self, w: Width, a: u64, b: u64) -> Result<(u64, Width), OpError> {
        let m = w.mask();
        let bool32 = |c: bool| (u64::from(c), Width::W32);
        let sa = sign_extend(a, w);
        let sb = sign_extend(b, w);
        Ok(match self {
            BinOp::Add => (a.wrapping_add(b) & m, w),
            BinOp::Sub => (a.wrapping_sub(b) & m, w),
            BinOp::Mul => (a.wrapping_mul(b) & m, w),
            BinOp::DivU => {
                if b & m == 0 {
                    return Err(OpError::DivideByZero);
                }
                ((a & m) / (b & m), w)
            }
            BinOp::ModU => {
                if b & m == 0 {
                    return Err(OpError::DivideByZero);
                }
                ((a & m) % (b & m), w)
            }
            BinOp::DivS => {
                if sb == 0 {
                    return Err(OpError::DivideByZero);
                }
                let min = -(1i64 << (w.bits() - 1));
                if sa == min && sb == -1 {
                    return Err(OpError::Overflow);
                }
                (((sa / sb) as u64) & m, w)
            }
            BinOp::ModS => {
                if sb == 0 {
                    return Err(OpError::DivideByZero);
                }
                let min = -(1i64 << (w.bits() - 1));
                if sa == min && sb == -1 {
                    (0, w)
                } else {
                    (((sa % sb) as u64) & m, w)
                }
            }
            BinOp::And => (a & b & m, w),
            BinOp::Or => ((a | b) & m, w),
            BinOp::Xor => ((a ^ b) & m, w),
            BinOp::Shl => {
                if b >= u64::from(w.bits()) {
                    return Err(OpError::ShiftOutOfRange);
                }
                ((a << b) & m, w)
            }
            BinOp::ShrU => {
                if b >= u64::from(w.bits()) {
                    return Err(OpError::ShiftOutOfRange);
                }
                (((a & m) >> b) & m, w)
            }
            BinOp::ShrS => {
                if b >= u64::from(w.bits()) {
                    return Err(OpError::ShiftOutOfRange);
                }
                (((sa >> b) as u64) & m, w)
            }
            BinOp::Eq => bool32(a & m == b & m),
            BinOp::Ne => bool32(a & m != b & m),
            BinOp::LtU => bool32((a & m) < (b & m)),
            BinOp::LeU => bool32((a & m) <= (b & m)),
            BinOp::GtU => bool32((a & m) > (b & m)),
            BinOp::GeU => bool32((a & m) >= (b & m)),
            BinOp::LtS => bool32(sa < sb),
            BinOp::LeS => bool32(sa <= sb),
            BinOp::GtS => bool32(sa > sb),
            BinOp::GeS => bool32(sa >= sb),
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => {
                let (x, y) = (float_of(a, w), float_of(b, w));
                let r = match self {
                    BinOp::FAdd => x + y,
                    BinOp::FSub => x - y,
                    BinOp::FMul => x * y,
                    _ => x / y,
                };
                (float_to(r, w), w)
            }
            BinOp::FEq => bool32(float_of(a, w) == float_of(b, w)),
            BinOp::FLt => bool32(float_of(a, w) < float_of(b, w)),
            BinOp::FLe => bool32(float_of(a, w) <= float_of(b, w)),
        })
    }
}

fn float_of(bits: u64, w: Width) -> f64 {
    match w {
        Width::W32 => f64::from(f32::from_bits(bits as u32)),
        _ => f64::from_bits(bits),
    }
}

fn float_to(v: f64, w: Width) -> u64 {
    match w {
        Width::W32 => u64::from((v as f32).to_bits()),
        _ => v.to_bits(),
    }
}

/// A pure C-- expression.
///
/// Names are not resolved syntactically: an `Expr::Name` may denote a local
/// variable, a global register, a continuation value, or (per §5.1's
/// evaluation function `E`) a procedure or data-block name, which denotes an
/// immutable code- or data-pointer value.
#[derive(Clone, PartialEq, Hash, Debug)]
pub enum Expr {
    /// A literal constant.
    Lit(Lit),
    /// A variable, continuation, procedure, or data-block name.
    Name(Name),
    /// A typed memory load, `type[e]`.
    Mem(Ty, Box<Expr>),
    /// A unary operator application.
    Unary(UnOp, Box<Expr>),
    /// A binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Eq for Expr {}

impl Expr {
    /// A `bits32` literal expression.
    pub fn b32(v: u32) -> Expr {
        Expr::Lit(Lit::b32(v))
    }

    /// A `bits64` literal expression.
    pub fn b64(v: u64) -> Expr {
        Expr::Lit(Lit::b64(v))
    }

    /// A variable (or other name) reference.
    pub fn var(n: impl Into<Name>) -> Expr {
        Expr::Name(n.into())
    }

    /// A `bits32` memory load.
    pub fn mem32(addr: Expr) -> Expr {
        Expr::Mem(Ty::B32, Box::new(addr))
    }

    /// A typed memory load.
    pub fn mem(ty: Ty, addr: Expr) -> Expr {
        Expr::Mem(ty, Box::new(addr))
    }

    /// A binary operator application.
    pub fn binary(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// A unary operator application.
    pub fn unary(op: UnOp, a: Expr) -> Expr {
        Expr::Unary(op, Box::new(a))
    }

    /// `a + b`.
    #[allow(clippy::should_implement_trait)] // constructor, not arithmetic on Expr values
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::binary(BinOp::Add, a, b)
    }

    /// `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::binary(BinOp::Sub, a, b)
    }

    /// `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::binary(BinOp::Mul, a, b)
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::binary(BinOp::Eq, a, b)
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::binary(BinOp::Ne, a, b)
    }

    /// Unsigned `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::binary(BinOp::LtU, a, b)
    }

    /// Visits every name mentioned in the expression.
    pub fn visit_names(&self, f: &mut impl FnMut(&Name)) {
        match self {
            Expr::Lit(_) => {}
            Expr::Name(n) => f(n),
            Expr::Mem(_, a) => a.visit_names(f),
            Expr::Unary(_, a) => a.visit_names(f),
            Expr::Binary(_, a, b) => {
                a.visit_names(f);
                b.visit_names(f);
            }
        }
    }

    /// Collects every name mentioned in the expression.
    pub fn names(&self) -> Vec<Name> {
        let mut out = Vec::new();
        self.visit_names(&mut |n| out.push(n.clone()));
        out
    }

    /// True if the expression reads memory (mentions the pseudo-variable
    /// `M` of Table 3).
    pub fn reads_memory(&self) -> bool {
        match self {
            Expr::Lit(_) | Expr::Name(_) => false,
            Expr::Mem(..) => true,
            Expr::Unary(_, a) => a.reads_memory(),
            Expr::Binary(_, a, b) => a.reads_memory() || b.reads_memory(),
        }
    }

    /// True if the expression can fail when evaluated (contains a fallible
    /// operator such as `%divu`).
    pub fn can_fail(&self) -> bool {
        match self {
            Expr::Lit(_) | Expr::Name(_) => false,
            Expr::Mem(_, a) => a.can_fail(),
            Expr::Unary(_, a) => a.can_fail(),
            Expr::Binary(op, a, b) => op.can_fail() || a.can_fail() || b.can_fail(),
        }
    }

    /// Rewrites the expression, replacing each name for which `subst`
    /// returns `Some` with the returned expression.
    pub fn substitute(&self, subst: &impl Fn(&Name) -> Option<Expr>) -> Expr {
        match self {
            Expr::Lit(l) => Expr::Lit(*l),
            Expr::Name(n) => subst(n).unwrap_or_else(|| Expr::Name(n.clone())),
            Expr::Mem(ty, a) => Expr::Mem(*ty, Box::new(a.substitute(subst))),
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(a.substitute(subst))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.substitute(subst)),
                Box::new(b.substitute(subst)),
            ),
        }
    }

    /// Number of interior nodes, for size-bounded generators and tests.
    pub fn size(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Name(_) => 1,
            Expr::Mem(_, a) | Expr::Unary(_, a) => 1 + a.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl From<Lit> for Expr {
    fn from(l: Lit) -> Expr {
        Expr::Lit(l)
    }
}

impl From<Name> for Expr {
    fn from(n: Name) -> Expr {
        Expr::Name(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_truncates_to_width() {
        assert_eq!(Lit::bits(Width::W8, 0x1ff).bits, 0xff);
        assert_eq!(Lit::b32(7).bits, 7);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0xff, Width::W8), -1);
        assert_eq!(sign_extend(0x7f, Width::W8), 127);
        assert_eq!(sign_extend(0xffff_ffff, Width::W32), -1);
    }

    #[test]
    fn add_wraps_at_width() {
        let (r, w) = BinOp::Add.eval(Width::W8, 0xff, 1).unwrap();
        assert_eq!((r, w), (0, Width::W8));
    }

    #[test]
    fn divu_by_zero_fails() {
        assert_eq!(
            BinOp::DivU.eval(Width::W32, 10, 0),
            Err(OpError::DivideByZero)
        );
        assert_eq!(BinOp::DivU.eval(Width::W32, 10, 3).unwrap().0, 3);
    }

    #[test]
    fn divs_overflow_fails() {
        assert_eq!(
            BinOp::DivS.eval(Width::W32, 0x8000_0000, 0xffff_ffff),
            Err(OpError::Overflow)
        );
        assert_eq!(
            BinOp::DivS.eval(Width::W32, 0xffff_fff6, 2).unwrap().0,
            0xffff_fffb
        ); // -10/2 = -5
    }

    #[test]
    fn shifts_check_range() {
        assert_eq!(
            BinOp::Shl.eval(Width::W32, 1, 32),
            Err(OpError::ShiftOutOfRange)
        );
        assert_eq!(BinOp::Shl.eval(Width::W32, 1, 31).unwrap().0, 0x8000_0000);
        assert_eq!(
            BinOp::ShrS.eval(Width::W32, 0x8000_0000, 31).unwrap().0,
            0xffff_ffff
        );
    }

    #[test]
    fn comparisons_yield_bits32() {
        let (r, w) = BinOp::LtS.eval(Width::W32, 0xffff_ffff, 0).unwrap(); // -1 < 0
        assert_eq!((r, w), (1, Width::W32));
        let (r, _) = BinOp::LtU.eval(Width::W32, 0xffff_ffff, 0).unwrap(); // MAX < 0
        assert_eq!(r, 0);
    }

    #[test]
    fn float_arithmetic_round_trips_bits() {
        let a = Lit::f64(1.5).bits;
        let b = Lit::f64(2.25).bits;
        let (r, _) = BinOp::FAdd.eval(Width::W64, a, b).unwrap();
        assert_eq!(f64::from_bits(r), 3.75);
        let af = Lit::f32(0.5).bits;
        let bf = Lit::f32(0.25).bits;
        let (rf, _) = BinOp::FMul.eval(Width::W32, af, bf).unwrap();
        assert_eq!(f32::from_bits(rf as u32), 0.125);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(UnOp::Neg.eval(Width::W32, 1).0, 0xffff_ffff);
        assert_eq!(UnOp::Com.eval(Width::W8, 0x0f).0, 0xf0);
        assert_eq!(UnOp::Sx(Width::W32).eval(Width::W8, 0x80).0, 0xffff_ff80);
        assert_eq!(UnOp::Zx(Width::W32).eval(Width::W8, 0x80).0, 0x80);
        assert_eq!(UnOp::Lo(Width::W8).eval(Width::W32, 0x1234).0, 0x34);
    }

    #[test]
    fn expr_names_and_memory() {
        let e = Expr::add(Expr::mem32(Expr::var("p")), Expr::var("x"));
        let names = e.names();
        assert_eq!(names.len(), 2);
        assert!(e.reads_memory());
        assert!(!Expr::var("x").reads_memory());
    }

    #[test]
    fn expr_can_fail_detects_division() {
        let e = Expr::binary(BinOp::DivU, Expr::var("a"), Expr::var("b"));
        assert!(e.can_fail());
        assert!(!Expr::add(Expr::var("a"), Expr::var("b")).can_fail());
    }

    #[test]
    fn substitution_replaces_names() {
        let e = Expr::add(Expr::var("x"), Expr::var("y"));
        let s = e.substitute(&|n| (n == "x").then(|| Expr::b32(3)));
        assert_eq!(s, Expr::add(Expr::b32(3), Expr::var("y")));
    }

    #[test]
    fn checked_primitive_lookup() {
        assert_eq!(BinOp::checked_primitive("%%divu"), Some(BinOp::DivU));
        assert_eq!(BinOp::checked_primitive("%%mods"), Some(BinOp::ModS));
        assert_eq!(BinOp::checked_primitive("%%add"), None);
    }

    #[test]
    fn mods_min_by_minus_one_is_zero() {
        let (r, _) = BinOp::ModS
            .eval(Width::W32, 0x8000_0000, 0xffff_ffff)
            .unwrap();
        assert_eq!(r, 0);
    }
}
