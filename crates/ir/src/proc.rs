//! Procedures and procedure bodies.

use crate::name::Name;
use crate::stmt::Stmt;
use crate::ty::Ty;

/// One item in a procedure body.
///
/// A body is a sequence of statements interspersed with labels and
/// continuation definitions. Per §4.1, "a continuation can be declared only
/// inside a procedure", and its "formal parameters" must be variables of
/// the enclosing procedure.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BodyItem {
    /// An ordinary statement.
    Stmt(Stmt),
    /// A label `l:` naming the next item; the target of `goto`.
    Label(Name),
    /// A continuation definition `continuation k(x, y):`.
    ///
    /// The parameters are *not* binding instances; they must be declared
    /// local variables of the enclosing procedure. Control falls into a
    /// continuation from above exactly as into a label.
    Continuation {
        /// The continuation's name; denotes a value of the native
        /// data-pointer type.
        name: Name,
        /// Variables of the enclosing procedure that receive the
        /// continuation's arguments.
        params: Vec<Name>,
    },
}

impl BodyItem {
    /// Wraps a statement.
    pub fn stmt(s: Stmt) -> BodyItem {
        BodyItem::Stmt(s)
    }
}

impl From<Stmt> for BodyItem {
    fn from(s: Stmt) -> BodyItem {
        BodyItem::Stmt(s)
    }
}

/// A C-- procedure.
///
/// Procedures are parameterized, may declare local variables, may return
/// multiple results, and may contain continuation definitions. Local and
/// global variables model machine registers: they have no addresses.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Proc {
    /// The procedure's name, which denotes an immutable value of the
    /// native code-pointer type.
    pub name: Name,
    /// Formal parameters with their types.
    pub formals: Vec<(Name, Ty)>,
    /// Declared local variables with their types (formals excluded).
    pub locals: Vec<(Name, Ty)>,
    /// The body: statements, labels, and continuation definitions.
    pub body: Vec<BodyItem>,
    /// Whether the procedure is exported from its module.
    pub exported: bool,
}

impl Proc {
    /// Creates an empty procedure with the given name.
    pub fn new(name: impl Into<Name>) -> Proc {
        Proc {
            name: name.into(),
            formals: Vec::new(),
            locals: Vec::new(),
            body: Vec::new(),
            exported: false,
        }
    }

    /// The type of a formal or local variable, if declared.
    pub fn var_ty(&self, n: &Name) -> Option<Ty> {
        self.formals
            .iter()
            .chain(self.locals.iter())
            .find(|(v, _)| v == n)
            .map(|&(_, ty)| ty)
    }

    /// Iterates over all declared variables (formals then locals).
    pub fn all_vars(&self) -> impl Iterator<Item = &(Name, Ty)> {
        self.formals.iter().chain(self.locals.iter())
    }

    /// All continuation definitions in the body, in order of appearance.
    pub fn continuations(&self) -> Vec<(Name, Vec<Name>)> {
        let mut out = Vec::new();
        collect_continuations(&self.body, &mut out);
        out
    }

    /// All labels in the body, in order of appearance.
    pub fn labels(&self) -> Vec<Name> {
        let mut out = Vec::new();
        collect_labels(&self.body, &mut out);
        out
    }
}

fn collect_continuations(items: &[BodyItem], out: &mut Vec<(Name, Vec<Name>)>) {
    for item in items {
        match item {
            BodyItem::Continuation { name, params } => out.push((name.clone(), params.clone())),
            BodyItem::Stmt(Stmt::If { then_, else_, .. }) => {
                collect_continuations(then_, out);
                collect_continuations(else_, out);
            }
            _ => {}
        }
    }
}

fn collect_labels(items: &[BodyItem], out: &mut Vec<Name>) {
    for item in items {
        match item {
            BodyItem::Label(l) => out.push(l.clone()),
            BodyItem::Stmt(Stmt::If { then_, else_, .. }) => {
                collect_labels(then_, out);
                collect_labels(else_, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn var_lookup_covers_formals_and_locals() {
        let mut p = Proc::new("f");
        p.formals.push((Name::from("x"), Ty::B32));
        p.locals.push((Name::from("w"), Ty::F64));
        assert_eq!(p.var_ty(&Name::from("x")), Some(Ty::B32));
        assert_eq!(p.var_ty(&Name::from("w")), Some(Ty::F64));
        assert_eq!(p.var_ty(&Name::from("zz")), None);
    }

    #[test]
    fn continuations_found_in_nested_blocks() {
        let mut p = Proc::new("f");
        p.body.push(BodyItem::Stmt(Stmt::If {
            cond: Expr::b32(1),
            then_: vec![BodyItem::Label(Name::from("inner"))],
            else_: vec![],
        }));
        p.body.push(BodyItem::Continuation {
            name: Name::from("k"),
            params: vec![Name::from("x")],
        });
        assert_eq!(
            p.continuations(),
            vec![(Name::from("k"), vec![Name::from("x")])]
        );
        assert_eq!(p.labels(), vec![Name::from("inner")]);
    }
}
