//! Pretty-printing of IR to concrete C-- syntax.
//!
//! The printer regenerates syntax in the style of the paper's figures; its
//! output is accepted by the parser in `cmm-parse`, so
//! `parse ∘ pretty = id` (up to formatting). Operands of infix operators
//! are parenthesized whenever they are not primary expressions, which keeps
//! the grammar unambiguous without a precedence table in the printer.

use crate::expr::{Expr, Lit};
use crate::module::{DataItem, Decl, Module};
use crate::name::Name;
use crate::proc::{BodyItem, Proc};
use crate::stmt::{Annotations, Lvalue, Stmt};
use crate::ty::{Ty, Width};
use std::fmt::Write as _;

/// Pretty-prints a module.
pub fn module_to_string(m: &Module) -> String {
    let mut p = Printer::new();
    for d in &m.decls {
        p.decl(d);
    }
    p.out
}

/// Pretty-prints a single procedure.
pub fn proc_to_string(proc: &Proc) -> String {
    let mut p = Printer::new();
    p.proc(proc);
    p.out
}

/// Pretty-prints an expression.
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e);
    s
}

/// Pretty-prints a statement (single line where possible).
pub fn stmt_to_string(s: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(s);
    p.out.trim_end().to_string()
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Printer {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn decl(&mut self, d: &Decl) {
        match d {
            Decl::Proc(p) => self.proc(p),
            Decl::Data(b) => {
                let kw = if b.exported { "export data" } else { "data" };
                self.line(&format!("{kw} {} {{", b.name));
                self.indent += 1;
                for item in &b.items {
                    match item {
                        DataItem::Words(ty, lits) => {
                            let vals: Vec<String> = lits.iter().map(lit_str).collect();
                            self.line(&format!("{ty} {};", vals.join(", ")));
                        }
                        DataItem::SymRef(n) => self.line(&format!("sym {n};")),
                        DataItem::Space(n) => self.line(&format!("space {n};")),
                        DataItem::Str(s) => self.line(&format!("string {};", quote(s))),
                    }
                }
                self.indent -= 1;
                self.line("}");
            }
            Decl::Register(r) => match &r.init {
                Some(init) => self.line(&format!(
                    "register {} {} = {};",
                    r.ty,
                    r.name,
                    lit_str(init)
                )),
                None => self.line(&format!("register {} {};", r.ty, r.name)),
            },
            Decl::Import(ns) => self.line(&format!("import {};", comma_names(ns))),
            Decl::Export(ns) => self.line(&format!("export {};", comma_names(ns))),
        }
    }

    fn proc(&mut self, p: &Proc) {
        let formals: Vec<String> = p
            .formals
            .iter()
            .map(|(n, ty)| format!("{ty} {n}"))
            .collect();
        let kw = if p.exported { "export " } else { "" };
        self.line(&format!("{kw}{}({}) {{", p.name, formals.join(", ")));
        self.indent += 1;
        // Group locals by type for compact declarations.
        let mut by_ty: Vec<(Ty, Vec<Name>)> = Vec::new();
        for (n, ty) in &p.locals {
            match by_ty.iter_mut().find(|(t, _)| t == ty) {
                Some((_, ns)) => ns.push(n.clone()),
                None => by_ty.push((*ty, vec![n.clone()])),
            }
        }
        for (ty, ns) in by_ty {
            self.line(&format!("{ty} {};", comma_names(&ns)));
        }
        self.body(&p.body);
        self.indent -= 1;
        self.line("}");
    }

    fn body(&mut self, items: &[BodyItem]) {
        for item in items {
            match item {
                BodyItem::Stmt(s) => self.stmt(s),
                BodyItem::Label(l) => {
                    // Labels print flush with statements (the paper
                    // outdents them; either parses identically).
                    self.line(&format!("{l}:"));
                }
                BodyItem::Continuation { name, params } => {
                    self.line(&format!("continuation {name}({}):", comma_names(params)));
                }
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { lhs, rhs } => {
                let l: Vec<String> = lhs.iter().map(lvalue_str).collect();
                let r: Vec<String> = rhs.iter().map(expr_to_string).collect();
                self.line(&format!("{} = {};", l.join(", "), r.join(", ")));
            }
            Stmt::If { cond, then_, else_ } => {
                self.line(&format!("if {} {{", expr_to_string(cond)));
                self.indent += 1;
                self.body(then_);
                self.indent -= 1;
                if else_.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    self.body(else_);
                    self.indent -= 1;
                    self.line("}");
                }
            }
            Stmt::Goto { target } => self.line(&format!("goto {target};")),
            Stmt::Call {
                results,
                callee,
                args,
                anns,
            } => {
                let mut line = String::new();
                if !results.is_empty() {
                    let _ = write!(line, "{} = ", comma_names(results));
                }
                let _ = write!(line, "{}({})", callee_str(callee), comma_exprs(args));
                line.push_str(&anns_str(anns));
                line.push(';');
                self.line(&line);
            }
            Stmt::Jump { callee, args } => {
                self.line(&format!(
                    "jump {}({});",
                    callee_str(callee),
                    comma_exprs(args)
                ));
            }
            Stmt::Return { alt, args } => match alt {
                Some(a) => self.line(&format!(
                    "return <{}/{}> ({});",
                    a.index,
                    a.count,
                    comma_exprs(args)
                )),
                None => {
                    if args.is_empty() {
                        self.line("return;");
                    } else {
                        self.line(&format!("return ({});", comma_exprs(args)));
                    }
                }
            },
            Stmt::CutTo { cont, args, anns } => {
                self.line(&format!(
                    "cut to {}({}){};",
                    callee_str(cont),
                    comma_exprs(args),
                    anns_str(anns)
                ));
            }
            Stmt::Yield { args, anns } => {
                self.line(&format!("yield({}){};", comma_exprs(args), anns_str(anns)));
            }
        }
    }
}

fn lvalue_str(l: &Lvalue) -> String {
    match l {
        Lvalue::Var(n) => n.to_string(),
        Lvalue::Mem(ty, a) => format!("{ty}[{}]", expr_to_string(a)),
    }
}

fn callee_str(e: &Expr) -> String {
    match e {
        Expr::Name(n) => n.to_string(),
        other => format!("({})", expr_to_string(other)),
    }
}

fn anns_str(a: &Annotations) -> String {
    let mut s = String::new();
    if !a.cuts_to.is_empty() {
        let _ = write!(s, " also cuts to {}", comma_names(&a.cuts_to));
    }
    if !a.unwinds_to.is_empty() {
        let _ = write!(s, " also unwinds to {}", comma_names(&a.unwinds_to));
    }
    if !a.returns_to.is_empty() {
        let _ = write!(s, " also returns to {}", comma_names(&a.returns_to));
    }
    if a.aborts {
        s.push_str(" also aborts");
    }
    if !a.descriptors.is_empty() {
        let _ = write!(s, " also descriptor {}", comma_names(&a.descriptors));
    }
    s
}

fn comma_names(ns: &[Name]) -> String {
    ns.iter()
        .map(Name::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

fn comma_exprs(es: &[Expr]) -> String {
    es.iter().map(expr_to_string).collect::<Vec<_>>().join(", ")
}

fn lit_str(l: &Lit) -> String {
    match l.ty {
        Ty::Bits(Width::W32) => format!("{}", l.bits),
        Ty::Bits(w) => format!("{}::bits{}", l.bits, w.bits()),
        Ty::Float(w) => format!("{:?}::float{}", l.as_f64(), w.bits()),
    }
}

fn quote(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn is_primary(e: &Expr) -> bool {
    matches!(e, Expr::Lit(_) | Expr::Name(_) | Expr::Mem(..))
}

fn write_operand(out: &mut String, e: &Expr) {
    if is_primary(e) {
        write_expr(out, e);
    } else {
        out.push('(');
        write_expr(out, e);
        out.push(')');
    }
}

fn write_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Lit(l) => out.push_str(&lit_str(l)),
        Expr::Name(n) => out.push_str(n.as_str()),
        Expr::Mem(ty, a) => {
            let _ = write!(out, "{ty}[");
            write_expr(out, a);
            out.push(']');
        }
        Expr::Unary(op, a) => {
            let _ = write!(out, "{}(", op.name());
            write_expr(out, a);
            out.push(')');
        }
        Expr::Binary(op, a, b) => {
            if op.is_infix() {
                write_operand(out, a);
                let _ = write!(out, " {} ", op.symbol());
                write_operand(out, b);
            } else {
                let _ = write!(out, "{}(", op.symbol());
                write_expr(out, a);
                out.push_str(", ");
                write_expr(out, b);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProcBuilder;
    use crate::expr::BinOp;

    #[test]
    fn expr_printing() {
        let e = Expr::add(Expr::var("s"), Expr::var("n"));
        assert_eq!(expr_to_string(&e), "s + n");
        let nested = Expr::mul(Expr::add(Expr::var("a"), Expr::b32(1)), Expr::var("b"));
        assert_eq!(expr_to_string(&nested), "(a + 1) * b");
        let mem = Expr::mem32(Expr::add(Expr::var("p"), Expr::b32(4)));
        assert_eq!(expr_to_string(&mem), "bits32[p + 4]");
        let prefix = Expr::binary(BinOp::DivS, Expr::var("a"), Expr::var("b"));
        assert_eq!(expr_to_string(&prefix), "%divs(a, b)");
    }

    #[test]
    fn literal_printing() {
        assert_eq!(lit_str(&Lit::b32(42)), "42");
        assert_eq!(lit_str(&Lit::bits(Width::W8, 255)), "255::bits8");
        assert_eq!(lit_str(&Lit::f64(1.5)), "1.5::float64");
    }

    #[test]
    fn proc_printing_includes_annotations() {
        let p = ProcBuilder::new("f")
            .formal("x", Ty::B32)
            .local("y", Ty::B32)
            .build_with(|b| {
                b.call_ann(
                    ["y"],
                    "g",
                    [Expr::var("x")],
                    Annotations::cuts_to(["k"]).and_aborts(),
                );
                b.return_([Expr::var("y")]);
                b.continuation("k", ["y"]);
                b.return_([Expr::var("y")]);
            });
        let s = proc_to_string(&p);
        assert!(s.contains("f(bits32 x) {"), "{s}");
        assert!(s.contains("y = g(x) also cuts to k also aborts;"), "{s}");
        assert!(s.contains("continuation k(y):"), "{s}");
    }

    #[test]
    fn return_forms() {
        assert_eq!(stmt_to_string(&Stmt::return_([])), "return;");
        assert_eq!(
            stmt_to_string(&Stmt::Return {
                alt: Some(crate::stmt::AltReturn { index: 0, count: 2 }),
                args: vec![Expr::var("p")]
            }),
            "return <0/2> (p);"
        );
    }

    #[test]
    fn string_quoting() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
