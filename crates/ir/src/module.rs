//! Modules: the unit of separate compilation.
//!
//! A front end translates a high-level source program into one or more C--
//! modules (§3.3). A module contains procedures, global register
//! declarations, and static data blocks (used among other things as the
//! call-site *descriptors* consulted by `GetDescriptor`).

use crate::expr::Lit;
use crate::name::Name;
use crate::proc::Proc;
use crate::ty::Ty;

/// One item of a static data block.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum DataItem {
    /// Initialized words of the given type.
    Words(Ty, Vec<Lit>),
    /// The address of another data block or procedure (a link-time
    /// constant of the native pointer type).
    SymRef(Name),
    /// `n` bytes of uninitialized (zeroed) space.
    Space(u64),
    /// A NUL-terminated string constant.
    Str(String),
}

impl DataItem {
    /// Size of the item in bytes.
    pub fn size(&self) -> u64 {
        match self {
            DataItem::Words(ty, lits) => ty.bytes() * lits.len() as u64,
            DataItem::SymRef(_) => Ty::NATIVE_PTR.bytes(),
            DataItem::Space(n) => *n,
            DataItem::Str(s) => s.len() as u64 + 1,
        }
    }
}

/// A named static data block, allocated globally.
///
/// The name denotes the immutable *address* of the block (names "stand for
/// addresses of memory blocks, and as such they denote immutable values of
/// the native data-pointer type", §3.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DataBlock {
    /// The block's name.
    pub name: Name,
    /// The block's contents, laid out in order.
    pub items: Vec<DataItem>,
    /// Whether the block is exported.
    pub exported: bool,
}

impl DataBlock {
    /// Creates a data block.
    pub fn new(name: impl Into<Name>, items: Vec<DataItem>) -> DataBlock {
        DataBlock {
            name: name.into(),
            items,
            exported: false,
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.items.iter().map(DataItem::size).sum()
    }
}

/// A global register declaration, e.g. `register bits32 exn_top;`
/// (Figure 10 uses one to hold the top of the dynamic exception stack).
///
/// Global variables model machine registers, not memory locations; they
/// have no addresses and are shared by all procedures.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GlobalReg {
    /// The register's name.
    pub name: Name,
    /// Its type.
    pub ty: Ty,
    /// Optional initial value (defaults to zero).
    pub init: Option<Lit>,
}

/// A top-level declaration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Decl {
    /// A procedure.
    Proc(Proc),
    /// A static data block.
    Data(DataBlock),
    /// A global register.
    Register(GlobalReg),
    /// Names imported from other modules.
    Import(Vec<Name>),
    /// Names exported to other modules.
    Export(Vec<Name>),
}

/// A C-- module (compilation unit).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Module {
    /// Top-level declarations, in source order.
    pub decls: Vec<Decl>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Iterates over the module's procedures.
    pub fn procs(&self) -> impl Iterator<Item = &Proc> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Proc(p) => Some(p),
            _ => None,
        })
    }

    /// Iterates over the module's data blocks.
    pub fn data_blocks(&self) -> impl Iterator<Item = &DataBlock> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Data(b) => Some(b),
            _ => None,
        })
    }

    /// Iterates over the module's global registers.
    pub fn registers(&self) -> impl Iterator<Item = &GlobalReg> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Register(r) => Some(r),
            _ => None,
        })
    }

    /// Finds a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Proc> {
        self.procs().find(|p| p.name == name)
    }

    /// Finds a data block by name.
    pub fn data_block(&self, name: &str) -> Option<&DataBlock> {
        self.data_blocks().find(|b| b.name == name)
    }

    /// Adds a procedure.
    pub fn push_proc(&mut self, p: Proc) {
        self.decls.push(Decl::Proc(p));
    }

    /// Adds a data block.
    pub fn push_data(&mut self, b: DataBlock) {
        self.decls.push(Decl::Data(b));
    }

    /// Adds a global register.
    pub fn push_register(&mut self, r: GlobalReg) {
        self.decls.push(Decl::Register(r));
    }

    /// Merges another module's declarations into this one (simple
    /// "linking" for tests and front ends that emit several modules).
    pub fn merge(&mut self, other: Module) {
        self.decls.extend(other.decls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_block_sizes() {
        let b = DataBlock::new(
            "d",
            vec![
                DataItem::Words(Ty::B32, vec![Lit::b32(1), Lit::b32(2)]),
                DataItem::SymRef(Name::from("f")),
                DataItem::Space(3),
                DataItem::Str("hi".into()),
            ],
        );
        assert_eq!(b.size(), 8 + 4 + 3 + 3);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        m.push_proc(Proc::new("f"));
        m.push_data(DataBlock::new("d", vec![]));
        m.push_register(GlobalReg {
            name: Name::from("exn_top"),
            ty: Ty::B32,
            init: None,
        });
        assert!(m.proc("f").is_some());
        assert!(m.proc("g").is_none());
        assert!(m.data_block("d").is_some());
        assert_eq!(m.registers().count(), 1);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Module::new();
        a.push_proc(Proc::new("f"));
        let mut b = Module::new();
        b.push_proc(Proc::new("g"));
        a.merge(b);
        assert_eq!(a.procs().count(), 2);
    }
}
