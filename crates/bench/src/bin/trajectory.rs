//! `trajectory` — run every paper workload under both execution engines
//! and emit `BENCH_trajectory.json`.
//!
//! ```text
//! trajectory [--iters N] [--out FILE] [--check BASELINE] [--tolerance PCT]
//! ```
//!
//! With `--check`, the run exits nonzero if any workload's deterministic
//! instruction count regressed more than `PCT`% (default 25) against the
//! baseline file, or if a baseline workload disappeared. Wall times are
//! reported but never gated.

use cmm_bench::trajectory::{
    check_against_baseline, check_serve_baseline, parse_baseline, run_chaos_histogram,
    run_pool_throughput, run_serve_figures, run_snapshot_figures, run_trajectory, to_json,
    SNAPSHOT_EVERY,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trajectory: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut iters = 100u64;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance = 25.0f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iters needs a number")?;
            }
            "--out" => out = Some(it.next().ok_or("--out needs a file")?),
            "--check" => check = Some(it.next().ok_or("--check needs a baseline file")?),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--tolerance needs a percentage")?;
            }
            other => {
                return Err(format!(
                    "unknown option `{other}`\n\
                     usage: trajectory [--iters N] [--out FILE] [--check BASELINE] [--tolerance PCT]"
                ));
            }
        }
    }

    let measurements = run_trajectory(iters);
    // The chaos-sweep outcome histogram rides along in the JSON: a
    // deterministic record of what the seeded fault schedules do to a
    // fixed population of generated cases. Seeds are fixed so the
    // figures are bit-reproducible across machines.
    let chaos = run_chaos_histogram(40, 0, 0, 5);
    // Batch-service scaling at several worker counts. The committed
    // curve is the deterministic virtual clock (cost-model makespan);
    // wall jobs/sec ride along but are never gated. The run itself
    // asserts the timing-stripped batch report is byte-identical at
    // every -j.
    let pool = run_pool_throughput(&[1, 2, 4, 8]);
    // One more batch over the same manifest, checkpointed at every
    // SNAPSHOT_EVERY fuel units: the totals ride along in the JSON so
    // checkpoint volume and blob size are visible over time, but they
    // are never gated (the run itself asserts the checkpointed report
    // is byte-identical at -j1 and -j4 and that no round-trip changed
    // machine state).
    let snap = run_snapshot_figures(SNAPSHOT_EVERY);
    // The execution service under its acceptance load: 17 tenants ×
    // 64 threads over all five engine tiers with rotation migration,
    // run at -j1 and -j8. The run itself asserts the scheduler event
    // logs are byte-identical, the parked population peaks above 1000
    // blobs, and at least one thread crossed an engine tier. All
    // virtual figures are gated exactly; the wall rate is not.
    let serve = run_serve_figures();
    let json = to_json(iters, &measurements, &chaos, &pool, &snap, &serve);

    println!(
        "{:<34} {:>12} {:>7} {:>8} {:>7} {:>12} {:>12} {:>9}",
        "workload",
        "instructions",
        "calls",
        "rts ops",
        "yields",
        "old ns/it",
        "decoded ns/it",
        "speedup"
    );
    for m in &measurements {
        println!(
            "{:<34} {:>12} {:>7} {:>8} {:>7} {:>12} {:>12} {:>8.2}x",
            m.name,
            m.instructions,
            m.dispatch.calls,
            m.dispatch.rts_ops,
            m.dispatch.yields,
            m.old_ns_per_iter,
            m.decoded_ns_per_iter,
            m.speedup()
        );
    }
    // Fused-tier health at a glance: reported, never gated.
    let regressed: Vec<&str> = measurements
        .iter()
        .filter(|m| m.fused_regression())
        .map(|m| m.name.as_str())
        .collect();
    if regressed.is_empty() {
        println!("fused tier: no regressions vs decoded");
    } else {
        println!(
            "fused tier: {} regression(s) vs decoded: {}",
            regressed.len(),
            regressed.join(", ")
        );
    }

    println!(
        "chaos sweep {}x{}: {} halt, {} wrong, {} rts-error, {} fuel; {} fault(s) injected, {} quiet",
        chaos.cases,
        chaos.schedules,
        chaos.halt,
        chaos.wrong,
        chaos.rts_error,
        chaos.fuel,
        chaos.faults_injected,
        chaos.quiet
    );

    println!(
        "pool batch {} jobs, {} cost units ({}‰ cache hits, reports byte-identical):",
        pool.jobs, pool.total_cost, pool.hit_rate_permille
    );
    for r in &pool.rates {
        println!(
            "  -j{}: {} virtual jobs/s (speedup {:.2}x, efficiency {}‰), {} wall jobs/s",
            r.workers,
            r.virtual_jobs_per_sec,
            r.speedup_permille as f64 / 1000.0,
            r.efficiency_permille,
            r.wall_jobs_per_sec
        );
    }

    println!(
        "checkpointing every {} fuel: {} job(s) took {} snapshot(s), {} blob bytes (digest {:#018x})",
        snap.every, snap.jobs_checkpointed, snap.count, snap.bytes, snap.digest
    );

    println!(
        "serve {} tenants x {} threads over {} lanes (quantum {}): {} completed, {} yields, \
         {} migrations, parked high water {}",
        serve.tenants,
        serve.threads / serve.tenants.max(1),
        serve.lanes,
        serve.quantum,
        serve.completed,
        serve.yields,
        serve.migrations,
        serve.parked_high_water
    );
    println!(
        "  virtual: {} responses/s over {} ns (queue wait p50/p99 {}/{}, turnaround p50/p99 \
         {}/{}, event digest {:#018x}); wall (never gated): {} responses/s",
        serve.virtual_rps,
        serve.virtual_ns,
        serve.queue_wait_p50,
        serve.queue_wait_p99,
        serve.turnaround_p50,
        serve.turnaround_p99,
        serve.event_digest,
        serve.wall_rps
    );

    if let Some(path) = out {
        std::fs::write(&path, &json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let baseline = parse_baseline(&text);
        if baseline.is_empty() {
            return Err(format!("{path}: no workloads found in baseline"));
        }
        let violations = check_against_baseline(&baseline, &measurements, tolerance / 100.0);
        for v in &violations {
            eprintln!("regression: {v}");
        }
        if !violations.is_empty() {
            return Err(format!(
                "{} workload(s) regressed more than {tolerance}% vs {path}",
                violations.len()
            ));
        }
        // The serve section is gated exactly, tolerance-free: its
        // fields are virtual cost-model figures over a fixed profile,
        // so any drift is a scheduler behavior change.
        let serve_violations = check_serve_baseline(&text, &serve);
        for v in &serve_violations {
            eprintln!("regression: {v}");
        }
        if !serve_violations.is_empty() {
            return Err(format!(
                "{} serve field(s) drifted vs {path}",
                serve_violations.len()
            ));
        }
        println!(
            "all {} baseline workloads within {tolerance}% of {path}; serve section exact",
            baseline.len()
        );
    }
    Ok(())
}
