//! Regenerates one section of EXPERIMENTS.md; see cmm-bench's docs.
fn main() {
    print!("{}", cmm_bench::sec2_setjmp_cost());
}
