//! Regenerates one section of EXPERIMENTS.md; see cmm-bench's docs.
fn main() {
    print!("{}", cmm_bench::all_experiments());
}
