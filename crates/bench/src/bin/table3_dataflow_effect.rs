//! Regenerates one section of EXPERIMENTS.md; see cmm-bench's docs.
fn main() {
    print!("{}", cmm_bench::table3_dataflow_effect());
}
