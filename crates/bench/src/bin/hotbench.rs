//! Decoded-vs-fused wall time on the trajectory's six hot rows.
//!
//! Interleaves the two engines round-robin and keeps the minimum
//! per-iteration time across rounds, which is far more stable on a
//! shared core than the trajectory's single timed pass. Use this when
//! tuning the fuser:
//!
//! ```text
//! cargo run --release -p cmm-bench --bin hotbench -- 16
//! ```
//!
//! The argument is the round count (default 20). The instruction-count
//! lines printed per row must match the `hot_*` entries in
//! `BENCH_trajectory.json` — fusion never changes retired counts.

use cmm_cfg::build_program;
use cmm_frontend::workloads::{NO_RAISE, RAISE_FREQUENCY};
use cmm_frontend::{compile_minim3, Strategy};
use cmm_opt::{optimize_program, OptOptions};
use cmm_vm::{compile, VmMachine, VmStatus};
use std::time::Instant;

fn run(m: &mut VmMachine<'_>, args: &[u64]) -> u64 {
    m.start(cmm_frontend::lower::ENTRY, args, 2);
    loop {
        match m.run(1_000_000_000) {
            VmStatus::Halted(v) => return v[1],
            VmStatus::OutOfFuel => continue,
            other => panic!("{other:?}"),
        }
    }
}

fn main() {
    let rounds: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    for (wname, src) in [("raise_freq", RAISE_FREQUENCY), ("no_raise", NO_RAISE)] {
        for strategy in [Strategy::Cps, Strategy::Cutting, Strategy::NativeUnwind] {
            let module = compile_minim3(src, strategy).unwrap();
            let mut prog = build_program(&module).unwrap();
            optimize_program(&mut prog, &OptOptions::default());
            let vp = compile(&prog).unwrap();
            let args: &[u64] = if src == RAISE_FREQUENCY {
                &[300, 10]
            } else {
                &[400]
            };
            let mut dec = VmMachine::new_decoded(&vp);
            let mut fus = VmMachine::new_fused(&vp);
            assert_eq!(run(&mut dec, args), run(&mut fus, args));
            let c = dec.cost;
            println!(
                "  {} insts: {} loads {} stores {} branches {} calls",
                c.instructions, c.loads, c.stores, c.branches, c.calls
            );
            let iters = 40u32;
            let mut best = [u64::MAX; 2];
            for _ in 0..rounds {
                for (slot, m) in [&mut dec, &mut fus].into_iter().enumerate() {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        run(m, args);
                    }
                    best[slot] = best[slot].min(t0.elapsed().as_nanos() as u64 / u64::from(iters));
                }
            }
            println!(
                "{wname:<12} {:<15} dec {:>8} ns  fus {:>8} ns  ratio {:.3}",
                strategy.label(),
                best[0],
                best[1],
                best[0] as f64 / best[1] as f64
            );
        }
    }
}
