//! Regenerates one section of EXPERIMENTS.md; see cmm-bench's docs.
fn main() {
    print!("{}", cmm_bench::fig34_branch_table());
}
