//! # cmm-bench — the experiment harness
//!
//! One regenerator per table and figure of the paper's design-space
//! analysis (see `DESIGN.md` §3 for the index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2_design_space` | Figure 2: the 2×2 space of control-transfer mechanisms |
//! | `fig34_branch_table` | Figures 3/4: the branch-table method's call-site costs |
//! | `sec2_setjmp_cost` | §2: `jmp_buf` sizes vs the 2-pointer native cutter |
//! | `appendixa_dispatchers` | Appendix A: the two Modula-3 dispatcher cost models and their crossover |
//! | `sec42_callee_saves` | §4.2: cut edges kill callee-saves registers |
//! | `table3_dataflow_effect` | §6/Table 3: what the optimizer buys on exception-heavy code |
//! | `all_experiments` | everything above, in order (the source of `EXPERIMENTS.md`) |
//!
//! Measurements are exact instruction/load/store counts from the
//! `cmm-vm` cost model — deterministic, so "benchmarks" here are tables,
//! not statistics. Criterion wall-clock micro-benchmarks of the
//! implementation itself (parser, interpreter, optimizer, VM) live in
//! `benches/micro.rs`.

pub mod experiments;
pub mod trajectory;

pub use experiments::*;
