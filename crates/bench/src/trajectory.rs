//! The benchmark trajectory: every paper workload run under **every**
//! execution engine of each substrate — the reference step loops, the
//! pre-decoded/pre-resolved fast paths, and the fused superinstruction
//! tier — emitting one machine-readable JSON document
//! (`BENCH_trajectory.json`).
//!
//! Two kinds of numbers appear:
//!
//! * **Simulated instruction counts** (`instructions`) come from the
//!   `cmm-vm` cost model. They are deterministic, identical across
//!   engines (asserted on every run), and identical across machines —
//!   the CI regression gate compares them against the committed
//!   baseline.
//! * **Wall times** (`*_ns_per_iter`, `speedup`) measure the host-level
//!   cost of the two engines on this machine. They are reported for the
//!   trajectory but never gated: they vary with hardware.
//! * **Dispatch-event counts** (`dispatch`) come from a separate
//!   [`CountingSink`]-instrumented run per workload, so the gated
//!   instruction counts — measured through the zero-cost `NopSink` —
//!   stay bit-identical whether or not anyone reads the events. Both
//!   engines are instrumented and asserted to agree.
//!
//! The JSON is hand-rolled (the workspace deliberately has no external
//! dependencies); [`parse_baseline`] reads back exactly the subset the
//! gate needs.

use cmm_cfg::build_program;
use cmm_frontend::workloads::{deep_raise, NO_RAISE, RAISE_FREQUENCY};
use cmm_frontend::{
    compile_minim3, run_vm, run_vm_decoded, run_vm_fused, run_vm_traced, Strategy, VmEngine,
};
use cmm_ir::Module;
use cmm_obs::{CountingSink, EventCounts, TraceSink};
use cmm_opt::{optimize_program, OptOptions};
use cmm_parse::parse_module;
use cmm_vm::{compile, VmMachine, VmProgram, VmStatus};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Stable workload name (the regression-gate key).
    pub name: String,
    /// Deterministic simulated work (instructions + run-time-system
    /// equivalents), identical under both engines.
    pub instructions: u64,
    /// The workload's result, as a sanity anchor.
    pub result: u64,
    /// Mean wall time per iteration under the reference engine.
    pub old_ns_per_iter: u64,
    /// Mean wall time per iteration under the pre-decoded engine.
    pub decoded_ns_per_iter: u64,
    /// Mean wall time per iteration under the fused engine.
    pub fused_ns_per_iter: u64,
    /// Exception-dispatch event counts from an instrumented run,
    /// identical under every engine (asserted on every run).
    pub dispatch: EventCounts,
}

impl Measurement {
    /// Reference wall time over decoded wall time.
    pub fn speedup(&self) -> f64 {
        if self.decoded_ns_per_iter == 0 {
            return 1.0;
        }
        self.old_ns_per_iter as f64 / self.decoded_ns_per_iter as f64
    }

    /// Decoded wall time over fused wall time — what the fused tier
    /// buys over the already-fast pre-decoded engine. Reported, never
    /// gated.
    pub fn fused_speedup(&self) -> f64 {
        if self.fused_ns_per_iter == 0 {
            return 1.0;
        }
        self.decoded_ns_per_iter as f64 / self.fused_ns_per_iter as f64
    }

    /// True when the fused tier ran *slower* than the pre-decoded one
    /// on this machine. Reported, never gated — wall-clock noise can
    /// flip it — but surfacing it per row makes a persistent tier
    /// regression visible at a glance in baseline diffs.
    pub fn fused_regression(&self) -> bool {
        self.fused_speedup() < 1.0
    }
}

fn compile_cmm(src: &str) -> VmProgram {
    let mut prog =
        build_program(&parse_module(src).expect("workload parses")).expect("workload builds");
    optimize_program(&mut prog, &OptOptions::default());
    compile(&prog).expect("workload compiles")
}

fn run_to_halt<S: TraceSink>(
    m: &mut VmMachine<'_, S>,
    proc: &str,
    args: &[u64],
    results: usize,
) -> Vec<u64> {
    m.start(proc, args, results);
    match m.run(500_000_000) {
        VmStatus::Halted(vals) => vals,
        other => panic!("workload did not halt: {other:?}"),
    }
}

/// Measures a compiled workload on the simulated target: the decoded
/// and fused streams are built once and shared (`VmMachine` clones
/// share them), so the timing loop isolates the three step loops.
/// `results` is the entry's result arity; a two-result entry follows
/// the MiniM3 `(status, value)` convention and the status is asserted
/// zero.
fn measure_program(
    name: &str,
    vp: &VmProgram,
    proc: &str,
    args: &[u64],
    results: usize,
    iters: u64,
) -> Measurement {
    let old_template = VmMachine::new(vp);
    let decoded_template = VmMachine::new_decoded(vp);
    let fused_template = VmMachine::new_fused(vp);
    let pick = |vals: &[u64]| -> u64 {
        if results == 2 {
            let status = vals.first().copied().unwrap_or(1);
            assert_eq!(status, 0, "{name}: entry returned a nonzero status");
            vals.get(1).copied().unwrap_or(0)
        } else {
            vals.first().copied().unwrap_or(0)
        }
    };

    // Correctness anchor + deterministic work, all three engines.
    let mut m = old_template.clone();
    let result = pick(&run_to_halt(&mut m, proc, args, results));
    let instructions = m.cost.total();
    for (engine, template) in [
        ("vm-decoded", &decoded_template),
        ("vm-fused", &fused_template),
    ] {
        let mut e = template.clone();
        let r = pick(&run_to_halt(&mut e, proc, args, results));
        assert_eq!(result, r, "{name}: {engine} disagrees on the result");
        assert_eq!(
            instructions,
            e.cost.total(),
            "{name}: {engine} disagrees on simulated work"
        );
    }

    // Dispatch counts: a separate counting-sink run per engine, so the
    // gated NopSink instruction counts above stay untouched.
    let mut c = VmMachine::with_sink(vp, CountingSink::default());
    run_to_halt(&mut c, proc, args, results);
    let dispatch = c.into_sink().counts;
    let mut cd = VmMachine::with_sink_decoded(vp, CountingSink::default());
    run_to_halt(&mut cd, proc, args, results);
    assert_eq!(
        dispatch,
        cd.into_sink().counts,
        "{name}: vm-decoded disagrees on dispatch events"
    );
    let mut cf = VmMachine::with_sink_fused(vp, CountingSink::default());
    run_to_halt(&mut cf, proc, args, results);
    assert_eq!(
        dispatch,
        cf.into_sink().counts,
        "{name}: vm-fused disagrees on dispatch events"
    );

    // The workloads are restartable: a halted run leaves the stack
    // balanced and `start` resets the entry state, so the timed loops
    // reuse one machine per engine and measure the step loop alone.
    // Engines are timed in interleaved rounds and the best round is
    // kept, so frequency ramps and scheduler noise don't land on one
    // engine's column.
    let mut machines: Vec<VmMachine<'_>> = [&old_template, &decoded_template, &fused_template]
        .into_iter()
        .map(|t| {
            let mut m = t.clone();
            let r1 = pick(&run_to_halt(&mut m, proc, args, results));
            let r2 = pick(&run_to_halt(&mut m, proc, args, results));
            assert_eq!(r1, r2, "{name}: workload is not restartable");
            m
        })
        .collect();
    const ROUNDS: u64 = 4;
    let per_round = (iters / ROUNDS).max(1);
    let mut best = [u64::MAX; 3];
    for _ in 0..ROUNDS {
        for (slot, m) in machines.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..per_round {
                run_to_halt(m, proc, args, results);
            }
            best[slot] = best[slot].min((t0.elapsed().as_nanos() / u128::from(per_round)) as u64);
        }
    }
    let [old_ns_per_iter, decoded_ns_per_iter, fused_ns_per_iter] = best;
    Measurement {
        name: name.to_string(),
        instructions,
        result,
        old_ns_per_iter,
        decoded_ns_per_iter,
        fused_ns_per_iter,
        dispatch,
    }
}

/// Measures a raw C-- workload as an isolated step loop.
fn measure_cmm(name: &str, src: &str, proc: &str, args: &[u64], iters: u64) -> Measurement {
    measure_program(name, &compile_cmm(src), proc, args, 1, iters)
}

/// Measures a MiniM3 workload as an isolated step loop: the module is
/// lowered and compiled once, then the entry is driven directly on
/// shared machine templates (exactly as [`measure_cmm`] does). Only
/// strategies whose lowered programs never suspend qualify — the
/// run-time-unwinding dispatcher lives outside the machine. These rows
/// are where the fused tier's speedup over the decoded engine is
/// visible: [`measure_m3`]'s end-to-end rows pay a full compile per
/// iteration, which swamps the step loop.
fn measure_m3_hot(
    name: &str,
    src: &str,
    strategy: Strategy,
    args: &[u64],
    iters: u64,
) -> Measurement {
    let module = compile_minim3(src, strategy).expect("workload compiles");
    let mut prog = build_program(&module).expect("workload builds");
    optimize_program(&mut prog, &OptOptions::default());
    let vp = compile(&prog).expect("workload compiles");
    measure_program(name, &vp, cmm_frontend::lower::ENTRY, args, 2, iters)
}

/// Measures a MiniM3 workload end to end (compile + run + front-end
/// run-time system) under the two driver entry points. Both engines pay
/// the same compilation cost, so speedups here are diluted relative to
/// [`measure_cmm`]'s isolated step loops.
fn measure_m3(
    name: &str,
    module: &Module,
    strategy: Strategy,
    args: &[u32],
    iters: u64,
) -> Measurement {
    let (result, cost) = run_vm(module, strategy, args).expect("workload runs");
    let (dresult, dcost) = run_vm_decoded(module, strategy, args).expect("workload runs");
    assert_eq!(result, dresult, "{name}: engines disagree on the result");
    assert_eq!(
        cost.total(),
        dcost.total(),
        "{name}: engines disagree on simulated work"
    );
    let (fresult, fcost) = run_vm_fused(module, strategy, args).expect("workload runs");
    assert_eq!(result, fresult, "{name}: vm-fused disagrees on the result");
    assert_eq!(
        cost.total(),
        fcost.total(),
        "{name}: vm-fused disagrees on simulated work"
    );

    // Dispatch counts via separately traced runs, every engine.
    let opts = OptOptions::default();
    let (r, events) =
        run_vm_traced(module, strategy, args, &opts, VmEngine::Stepped).expect("workload runs");
    r.expect("workload runs");
    let dispatch = EventCounts::of(&events);
    for engine in [VmEngine::Decoded, VmEngine::Fused] {
        let (r, devents) =
            run_vm_traced(module, strategy, args, &opts, engine).expect("workload runs");
        r.expect("workload runs");
        assert_eq!(
            dispatch,
            EventCounts::of(&devents),
            "{name}: {} disagrees on dispatch events",
            engine.label()
        );
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = run_vm(module, strategy, args).expect("workload runs");
    }
    let old_ns_per_iter = (t0.elapsed().as_nanos() / u128::from(iters.max(1))) as u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = run_vm_decoded(module, strategy, args).expect("workload runs");
    }
    let decoded_ns_per_iter = (t0.elapsed().as_nanos() / u128::from(iters.max(1))) as u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = run_vm_fused(module, strategy, args).expect("workload runs");
    }
    let fused_ns_per_iter = (t0.elapsed().as_nanos() / u128::from(iters.max(1))) as u64;
    Measurement {
        name: name.to_string(),
        instructions: cost.total(),
        result: u64::from(result),
        old_ns_per_iter,
        decoded_ns_per_iter,
        fused_ns_per_iter,
        dispatch,
    }
}

/// The Figures 3/4 loop of always-normal calls, scaled up so execution
/// dominates; `table` adds one alternate return continuation per call
/// (the branch-table method).
fn fig34_src(table: bool) -> String {
    let call = if table {
        "r = g(n) also returns to kexn;"
    } else {
        "r = g(n);"
    };
    let ret = if table {
        "return <1/1> (x);"
    } else {
        "return (x);"
    };
    let cont = if table {
        "continuation kexn(r):\n            return (0 - 1);"
    } else {
        ""
    };
    format!(
        r#"
        f(bits32 n) {{
            bits32 acc, r;
            acc = 0;
          loop:
            if n == 0 {{ return (acc); }} else {{
                {call}
                acc = acc + r;
                n = n - 1;
                goto loop;
            }}
            {cont}
        }}
        g(bits32 x) {{ {ret} }}
        "#
    )
}

/// The §4.2 callee-saves workload: locals live across a call annotated
/// with either a cut edge or an unwind edge.
fn sec42_src(cuts: bool) -> String {
    let ann = if cuts {
        "also cuts to k"
    } else {
        "also unwinds to k"
    };
    format!(
        r#"
        f(bits32 n) {{
            bits32 acc, x, y, w, r;
            acc = 0;
          loop:
            if n == 0 {{ return (acc); }} else {{
                y = n * 3;
                w = n + 7;
                r = g(n, k) {ann};
                acc = acc + r + y + w;
                n = n - 1;
                goto loop;
            }}
            continuation k(r):
            return (r + y + w);
        }}
        g(bits32 a, bits32 kk) {{
            return (a);
        }}
        "#
    )
}

/// Runs the full trajectory: the paper's C-- workloads under the raw
/// simulated machine, plus each MiniM3 strategy on the Figure 7 game —
/// seed 3 is the normal case, seed 50 raises `BadMove` out of
/// `getMove` — and the Figure 2 / §2 scope-entry workloads.
pub fn run_trajectory(iters: u64) -> Vec<Measurement> {
    // Raw C-- workloads: isolated step-loop comparison.
    let mut out = vec![
        measure_cmm("fig34_plain", &fig34_src(false), "f", &[2000], iters),
        measure_cmm("fig34_table", &fig34_src(true), "f", &[2000], iters),
        measure_cmm("sec42_cuts", &sec42_src(true), "f", &[400], iters),
        measure_cmm("sec42_unwinds", &sec42_src(false), "f", &[400], iters),
    ];

    // MiniM3 end-to-end workloads. Fewer iterations: each pays a full
    // compile.
    let m3_iters = (iters / 8).max(1);
    let game = cmm_frontend::workloads::GAME;
    for strategy in Strategy::CORE {
        let module = compile_minim3(game, strategy).expect("game compiles");
        out.push(measure_m3(
            &format!("game_normal_{}", strategy.label()),
            &module,
            strategy,
            &[3],
            m3_iters,
        ));
        out.push(measure_m3(
            &format!("game_raise_{}", strategy.label()),
            &module,
            strategy,
            &[50],
            m3_iters,
        ));
    }
    // Figure 2's deep raise (100 frames) under the interpretive
    // unwinder — the dispatch-heaviest workload.
    let module = compile_minim3(&deep_raise(true), Strategy::RuntimeUnwind).expect("compiles");
    out.push(measure_m3(
        "fig2_deep_raise_runtime-unwind",
        &module,
        Strategy::RuntimeUnwind,
        &[100],
        m3_iters,
    ));
    // §2's scope-entry cost under the sjlj strategy.
    let module =
        compile_minim3(NO_RAISE, Strategy::Sjlj(cmm_vm::arch::PENTIUM_LINUX)).expect("compiles");
    out.push(measure_m3(
        "sec2_no_raise_sjlj-pentium",
        &module,
        Strategy::Sjlj(cmm_vm::arch::PENTIUM_LINUX),
        &[200],
        m3_iters,
    ));
    // Fused-tier hot rows: the MiniM3 loop workloads, lowered once per
    // strategy and timed as isolated step loops (compile excluded).
    // These are where the game rows' compile cost hid the step-loop
    // difference, and they carry the committed fused-vs-decoded
    // comparison.
    for strategy in [Strategy::Cps, Strategy::Cutting, Strategy::NativeUnwind] {
        out.push(measure_m3_hot(
            &format!("hot_raise_frequency_{}", strategy.label()),
            RAISE_FREQUENCY,
            strategy,
            &[300, 10],
            iters,
        ));
        out.push(measure_m3_hot(
            &format!("hot_no_raise_{}", strategy.label()),
            NO_RAISE,
            strategy,
            &[400],
            iters,
        ));
    }
    out
}

/// Outcome histogram of a seeded chaos sweep: generated difftest cases
/// run under seeded Table 1 fault schedules, with every (case,
/// schedule) outcome tallied. Engines agree on each outcome by
/// construction (the chaos sweep in `cmm-difftest` asserts it), so one
/// reference observation per pair suffices; the figures are
/// deterministic functions of `(case seed, fault seed)` and land in the
/// trajectory JSON as a bit-reproducible record of the fault model's
/// coverage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosHistogram {
    /// Generated cases swept.
    pub cases: u64,
    /// Base seed for case generation.
    pub case_seed: u64,
    /// Base seed for the fault schedules.
    pub fault_seed: u64,
    /// Schedules per case.
    pub schedules: u64,
    /// (case, schedule) pairs ending in normal termination.
    pub halt: u64,
    /// Pairs ending wrong (program fault or injected dispatch fault).
    pub wrong: u64,
    /// Pairs where a Table 1 operation failed during dispatch.
    pub rts_error: u64,
    /// Pairs cut off by fuel or the suspension bound.
    pub fuel: u64,
    /// Total faults injected across all pairs.
    pub faults_injected: u64,
    /// Pairs whose schedule never fired (the happy path re-covered).
    pub quiet: u64,
}

/// Runs the chaos sweep histogram over `cases` generated cases.
pub fn run_chaos_histogram(
    cases: u64,
    case_seed: u64,
    fault_seed: u64,
    schedules: u64,
) -> ChaosHistogram {
    use cmm_difftest::oracle::{observe_sem_chaos, Limits, Outcome, CHAOS_HORIZON};
    let limits = Limits::default();
    let mut h = ChaosHistogram {
        cases,
        case_seed,
        fault_seed,
        schedules,
        ..ChaosHistogram::default()
    };
    for index in 0..cases {
        let case = cmm_difftest::case_for(case_seed, index);
        let prog = build_program(&parse_module(&case.render()).expect("generated cases parse"))
            .expect("generated cases build");
        for k in 0..schedules {
            let plan = cmm_chaos::FaultPlan::seeded(
                cmm_chaos::schedule_seed(fault_seed, k),
                CHAOS_HORIZON,
            );
            let (obs, _, log) = observe_sem_chaos(&prog, case.args, &limits, &plan);
            match obs.outcome {
                Outcome::Halt(_) => h.halt += 1,
                Outcome::Wrong => h.wrong += 1,
                Outcome::RtsError => h.rts_error += 1,
                Outcome::Fuel => h.fuel += 1,
            }
            h.faults_injected += log.len() as u64;
            if log.is_empty() {
                h.quiet += 1;
            }
        }
    }
    h
}

/// One worker count's scaling figures for the `cmm-pool` batch service.
///
/// Two clocks per row. The **virtual** clock is the deterministic one:
/// every job's cost is its simulated instruction count (one cost unit =
/// one virtual nanosecond), and the batch's virtual makespan is the
/// deterministic list schedule of those costs over `workers` lanes
/// ([`virtual_makespan`]). Virtual rates are a pure function of the job
/// list, so they are bit-identical across machines — the committed
/// trajectory's scaling curve is this clock. The **wall** clock is the
/// usual host-level figure: reported alongside, never gated, and on a
/// one-core container it shows no speedup at all (which is exactly why
/// it cannot be the committed curve).
#[derive(Clone, Debug)]
pub struct PoolRate {
    /// Worker count (`-j`).
    pub workers: usize,
    /// Jobs per virtual second under the deterministic cost-model clock.
    pub virtual_jobs_per_sec: u64,
    /// Jobs per wall second on this machine (never gated).
    pub wall_jobs_per_sec: u64,
    /// Virtual speedup over the `-j1` row, in permille.
    pub speedup_permille: u64,
    /// Virtual speedup divided by worker count, in permille.
    pub efficiency_permille: u64,
}

/// Throughput of the `cmm-pool` batch service over a fixed manifest of
/// paper workloads, at several worker counts.
///
/// The cache hit rate and the batch report bytes are deterministic:
/// every run here asserts the timing-stripped report is byte-identical
/// across worker counts, the same property CI checks through the CLI.
#[derive(Clone, Debug)]
pub struct PoolThroughput {
    /// Jobs per batch run.
    pub jobs: u64,
    /// What the deterministic clock counts (documentation string,
    /// embedded in the JSON so readers of the committed baseline know
    /// the scaling rows are simulated, not wall time).
    pub clock: &'static str,
    /// Total simulated cost of the whole batch (sum of per-job
    /// instruction counts), in cost units.
    pub total_cost: u64,
    /// Compilation-cache hit rate over one run, in permille
    /// (scheduling-independent: identical at every worker count).
    pub hit_rate_permille: u64,
    /// One row per measured worker count.
    pub rates: Vec<PoolRate>,
}

/// The batch manifest measured by [`run_pool_throughput`]: every raw
/// C-- workload on all five engines plus the Figure 2 deep raise under
/// two strategies on both substrates, replicated [`POOL_REPLICAS`]
/// times with staggered arguments so per-job costs are heterogeneous
/// (a realistic load-balancing problem, not `n` copies of one cost).
/// Replicas share sources, so the cache's single-flight dedup carries
/// most of the compilation load.
pub const POOL_REPLICAS: u32 = 8;

fn pool_specs() -> Vec<cmm_pool::JobSpec> {
    use cmm_pool::{EngineKind, JobSpec, SourceLang};
    let engines = [
        EngineKind::Sem,
        EngineKind::SemResolved,
        EngineKind::Vm,
        EngineKind::VmDecoded,
        EngineKind::VmFused,
    ];
    let mut specs = Vec::new();
    for rep in 0..POOL_REPLICAS {
        for (name, src) in [
            ("fig34_plain", fig34_src(false)),
            ("fig34_table", fig34_src(true)),
            ("sec42_cuts", sec42_src(true)),
            ("sec42_unwinds", sec42_src(false)),
        ] {
            for engine in engines {
                specs.push(JobSpec {
                    name: name.to_string(),
                    lang: SourceLang::Cmm,
                    source: src.clone(),
                    entry: "f".to_string(),
                    args: vec![100 + 25 * rep],
                    results: 1,
                    engine,
                    opts: OptOptions::default(),
                    fuel: 20_000_000,
                    max_yields: 64,
                    chaos: None,
                });
            }
        }
        let deep = deep_raise(true);
        for strategy in [Strategy::RuntimeUnwind, Strategy::Cutting] {
            for engine in [EngineKind::Sem, EngineKind::Vm] {
                specs.push(JobSpec {
                    name: "fig2_deep_raise".to_string(),
                    lang: SourceLang::MiniM3(strategy),
                    source: deep.clone(),
                    entry: "main".to_string(),
                    args: vec![30 + 5 * rep],
                    results: 1,
                    engine,
                    opts: OptOptions::default(),
                    fuel: 20_000_000,
                    max_yields: 64,
                    chaos: None,
                });
            }
        }
    }
    specs
}

/// Checkpoint totals of one `--snapshot-every` batch over the same
/// manifest [`run_pool_throughput`] measures. Reported in the committed
/// trajectory so checkpointing cost is visible over time, but — like
/// wall-clock throughput — **never gated**: the section carries no
/// `"name":` key, so [`parse_baseline`] cannot mistake it for a
/// workload row and `--tolerance 0` cannot see it.
///
/// All five fields are deterministic (the blob digest folds every
/// job's checkpoint stream in submission order), and the producing run
/// asserts the checkpointed batch report is byte-identical at `-j1`
/// and `-j4` — the same honesty contract as the scaling rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotFigures {
    /// Fuel-slice interval between checkpoints (`--snapshot-every`).
    pub every: u64,
    /// Jobs that crossed at least one slice boundary.
    pub jobs_checkpointed: u64,
    /// Snapshots captured (and round-tripped) across the batch.
    pub count: u64,
    /// Total encoded blob bytes.
    pub bytes: u64,
    /// FNV fold of every job's checkpoint-stream digest, in submission
    /// order — scheduling-independent, identical at every `-j`.
    pub digest: u64,
}

/// The checkpoint interval the committed trajectory uses. Small enough
/// that every C-- workload in the manifest crosses several boundaries;
/// the MiniM3 jobs ride along uncheckpointed (their interpreter owns
/// the inner machine).
pub const SNAPSHOT_EVERY: u64 = 1024;

/// Runs the pool manifest once per worker count in `[1, 4]` with
/// checkpointing at every `every` fuel units, asserting the stripped
/// reports are byte-identical, and aggregates the snapshot totals.
/// Any `snap-error` outcome (a checkpoint round-trip that changed
/// machine state) is a hard failure here — the difftest oracle owns
/// diagnosis; the trajectory only refuses to commit figures over it.
pub fn run_snapshot_figures(every: u64) -> SnapshotFigures {
    use cmm_pool::{run_batch, BatchConfig, PipelineCache};
    let specs = pool_specs();
    let mut reference: Option<String> = None;
    let mut figures = SnapshotFigures {
        every,
        jobs_checkpointed: 0,
        count: 0,
        bytes: 0,
        digest: cmm_snap::FOLD_INIT,
    };
    for workers in [1usize, 4] {
        let cache = PipelineCache::default();
        let report = run_batch(
            &specs,
            &cache,
            &BatchConfig {
                workers,
                queue_cap: 256,
                snapshot_every: Some(every),
                ..BatchConfig::default()
            },
        );
        let stripped = report.to_json(false);
        match &reference {
            None => {
                for j in &report.jobs {
                    assert!(
                        j.outcome != "snap-error",
                        "job {} ({}) failed its checkpoint round-trip: {}",
                        j.id,
                        j.name,
                        j.detail
                    );
                    // MiniM3 jobs carry no snapshot row: the language
                    // interpreter owns the inner machine, so the batch
                    // driver has no boundary to checkpoint at.
                    let Some(snap) = j.snap else { continue };
                    if snap.count > 0 {
                        figures.jobs_checkpointed += 1;
                    }
                    figures.count += snap.count;
                    figures.bytes += snap.bytes;
                    figures.digest =
                        cmm_snap::fold_digest(figures.digest, &snap.digest.to_le_bytes());
                }
                reference = Some(stripped);
            }
            Some(r) => assert_eq!(
                r, &stripped,
                "checkpointed batch reports must be byte-identical at every -j"
            ),
        }
    }
    figures
}

// The deterministic list schedule lives in `cmm-pool` now (the serve
// scheduler's virtual clock is built on it too); re-exported here for
// the existing bench callers.
pub use cmm_pool::virtual_makespan;

/// What the virtual clock counts, embedded verbatim in the JSON.
pub const POOL_CLOCK: &str = "virtual: 1 instruction = 1ns, deterministic list schedule; \
     wall rates reported alongside, never gated";

/// Measures batch scaling at each worker count, each over a fresh
/// cache, asserting along the way that the timing-stripped report is
/// byte-identical across counts. Virtual rates come from the report's
/// per-job instruction counts (deterministic); wall rates come from
/// timing the same runs (informational).
pub fn run_pool_throughput(worker_counts: &[usize]) -> PoolThroughput {
    use cmm_pool::{run_batch, BatchConfig, PipelineCache};
    let specs = pool_specs();
    let mut rates = Vec::new();
    let mut reference: Option<String> = None;
    let mut hit_rate_permille = 0;
    let mut costs: Vec<u64> = Vec::new();
    for &workers in worker_counts {
        let cache = PipelineCache::default();
        let t0 = Instant::now();
        let report = run_batch(
            &specs,
            &cache,
            &BatchConfig {
                workers,
                queue_cap: 256,
                ..BatchConfig::default()
            },
        );
        let elapsed = t0.elapsed().as_nanos().max(1);
        let wall_jobs_per_sec = (specs.len() as u128 * 1_000_000_000 / elapsed) as u64;
        let stripped = report.to_json(false);
        match &reference {
            None => {
                let snap = report.cache;
                hit_rate_permille = (snap.hits * 1000)
                    .checked_div(snap.hits + snap.misses)
                    .unwrap_or(0);
                assert!(hit_rate_permille > 0, "batch run must share compilations");
                costs = report.jobs.iter().map(|j| j.instructions).collect();
                for (job, &c) in report.jobs.iter().zip(&costs) {
                    assert!(c > 0, "job {} ({}) has no simulated cost", job.id, job.name);
                }
                reference = Some(stripped);
            }
            Some(r) => assert_eq!(
                r, &stripped,
                "batch reports must be byte-identical at every -j"
            ),
        }
        rates.push((workers, wall_jobs_per_sec));
    }
    let total_cost: u64 = costs.iter().sum();
    let base_makespan = virtual_makespan(&costs, worker_counts.first().copied().unwrap_or(1));
    let rates = rates
        .into_iter()
        .map(|(workers, wall_jobs_per_sec)| {
            let makespan = virtual_makespan(&costs, workers);
            let speedup_permille = base_makespan * 1000 / makespan;
            PoolRate {
                workers,
                virtual_jobs_per_sec: (costs.len() as u128 * 1_000_000_000 / u128::from(makespan))
                    as u64,
                wall_jobs_per_sec,
                speedup_permille,
                efficiency_permille: speedup_permille / workers as u64,
            }
        })
        .collect();
    PoolThroughput {
        jobs: specs.len() as u64,
        clock: POOL_CLOCK,
        total_cost,
        hit_rate_permille,
        rates,
    }
}

/// What the serve scheduler's clock counts, embedded verbatim in the
/// JSON.
pub const SERVE_CLOCK: &str =
    "virtual: cost-model ns over fixed lanes, deterministic at every -j; \
     wall rates reported alongside, never gated";

/// Figures from one acceptance-scale run of the execution service's
/// deterministic load generator (`cmm serve --selftest`). Everything
/// except `wall_rps` is a pure function of the load profile — the
/// scheduler runs on the virtual cost-model clock over a fixed lane
/// count — so those fields are gated **exactly** by
/// [`check_serve_baseline`]; `wall_rps` rides along and is never
/// gated. The section carries no `"name":` key, so [`parse_baseline`]
/// cannot mistake it for a workload row either.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeFigures {
    /// The clock contract, embedded verbatim.
    pub clock: &'static str,
    /// Tenants in the load profile.
    pub tenants: u64,
    /// Service threads submitted.
    pub threads: u64,
    /// Virtual scheduling lanes (what the clock divides work over).
    pub lanes: u64,
    /// Preemption quantum (fuel per slice).
    pub quantum: u64,
    /// Threads that ran to completion.
    pub completed: u64,
    /// Yield responses delivered to tenants.
    pub yields: u64,
    /// Cross-tier snapshot migrations.
    pub migrations: u64,
    /// Most threads ever parked as blobs at once.
    pub parked_high_water: u64,
    /// Virtual duration of the whole run.
    pub virtual_ns: u64,
    /// Tenant-visible responses per virtual second.
    pub virtual_rps: u64,
    /// Queue-wait quantiles on the virtual clock.
    pub queue_wait_p50: u64,
    /// 99th percentile queue wait.
    pub queue_wait_p99: u64,
    /// Submit-to-finish quantiles on the virtual clock.
    pub turnaround_p50: u64,
    /// 99th percentile turnaround.
    pub turnaround_p99: u64,
    /// FNV fold of the scheduler event log.
    pub event_digest: u64,
    /// Wall responses per second — informational, **never gated**.
    pub wall_rps: u64,
}

impl ServeFigures {
    /// Every field the baseline gate compares exactly, in emission
    /// order. `wall_rps` is deliberately absent.
    pub fn gated_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("tenants", self.tenants),
            ("threads", self.threads),
            ("lanes", self.lanes),
            ("quantum", self.quantum),
            ("completed", self.completed),
            ("yields", self.yields),
            ("migrations", self.migrations),
            ("parked_high_water", self.parked_high_water),
            ("virtual_ns", self.virtual_ns),
            ("virtual_rps", self.virtual_rps),
            ("queue_wait_p50", self.queue_wait_p50),
            ("queue_wait_p99", self.queue_wait_p99),
            ("turnaround_p50", self.turnaround_p50),
            ("turnaround_p99", self.turnaround_p99),
            ("event_digest", self.event_digest),
        ]
    }
}

/// Runs the acceptance load (17 tenants × 64 threads, all five engine
/// tiers, rotation migration, seeded chaos) through the service at
/// `-j1` and `-j8`, asserting the scheduler event logs are
/// byte-identical, the parked population peaks at ≥ 1000 blobs, and at
/// least one thread crossed an engine tier — then reports the virtual
/// figures (plus the `-j8` wall rate, never gated).
pub fn run_serve_figures() -> ServeFigures {
    use cmm_serve::{acceptance_profile, load_config, run_load};
    let profile = acceptance_profile();
    let (svc1, r1) = run_load(load_config(1), &profile);
    let (svc8, r8) = run_load(load_config(8), &profile);
    assert_eq!(
        svc1.events_text(),
        svc8.events_text(),
        "serve event logs must be byte-identical at every -j"
    );
    assert_eq!(r1.event_digest, r8.event_digest);
    assert_eq!(r1.completed, r1.threads, "every service thread must finish");
    assert!(
        r1.parked_high_water >= 1000,
        "the acceptance load must park >= 1000 threads at once, saw {}",
        r1.parked_high_water
    );
    assert!(r1.migrations >= 1, "rotation must migrate across tiers");
    let config = load_config(8);
    ServeFigures {
        clock: SERVE_CLOCK,
        tenants: profile.tenants as u64,
        threads: r1.threads,
        lanes: config.lanes as u64,
        quantum: config.quantum,
        completed: r1.completed,
        yields: r1.yields,
        migrations: r1.migrations,
        parked_high_water: r1.parked_high_water,
        virtual_ns: r1.virtual_ns,
        virtual_rps: r1.virtual_rps,
        queue_wait_p50: r1.queue_wait_p50,
        queue_wait_p99: r1.queue_wait_p99,
        turnaround_p50: r1.turnaround_p50,
        turnaround_p99: r1.turnaround_p99,
        event_digest: r1.event_digest,
        wall_rps: r8.wall_rps,
    }
}

/// Renders the trajectory as JSON. Field order is stable:
/// [`parse_baseline`] relies on `name` preceding `instructions`. The
/// chaos and pool sections deliberately avoid `"name":` keys so the
/// baseline parser never mistakes them for workload entries — which is
/// what keeps wall-clock throughput out of the `--tolerance 0` gate.
pub fn to_json(
    iters: u64,
    measurements: &[Measurement],
    chaos: &ChaosHistogram,
    pool: &PoolThroughput,
    snap: &SnapshotFigures,
    serve: &ServeFigures,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"iters\": {iters},");
    let _ = writeln!(
        s,
        "  \"note\": \"instructions are deterministic and gated in CI; wall times are per-machine\","
    );
    s.push_str("  \"workloads\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let c = &m.dispatch;
        let _ = write!(
            s,
            "    {{ \"name\": \"{}\", \"instructions\": {}, \"result\": {}, \
             \"dispatch\": {{ \"calls\": {}, \"tail_calls\": {}, \"returns\": {}, \
             \"abnormal_returns\": {}, \"cuts\": {}, \"yields\": {}, \"rts_ops\": {} }}, \
             \"old_ns_per_iter\": {}, \"decoded_ns_per_iter\": {}, \
             \"fused_ns_per_iter\": {}, \"speedup\": {:.2}, \"fused_speedup\": {:.2}, \
             \"fused_regression\": {} }}",
            m.name,
            m.instructions,
            m.result,
            c.calls,
            c.tail_calls,
            c.returns,
            c.abnormal_returns,
            c.cuts,
            c.yields,
            c.rts_ops,
            m.old_ns_per_iter,
            m.decoded_ns_per_iter,
            m.fused_ns_per_iter,
            m.speedup(),
            m.fused_speedup(),
            m.fused_regression()
        );
        s.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    // Summary of fused-tier regressions: bare name strings, so the
    // baseline parser (which needs `"name": "` on the line) never
    // mistakes this never-gated list for workload entries.
    let regressed: Vec<String> = measurements
        .iter()
        .filter(|m| m.fused_regression())
        .map(|m| format!("\"{}\"", m.name))
        .collect();
    let _ = writeln!(s, "  \"fused_regressions\": [{}],", regressed.join(", "));
    let _ = writeln!(
        s,
        "  \"chaos\": {{ \"cases\": {}, \"case_seed\": {}, \"fault_seed\": {}, \
         \"schedules\": {}, \"outcomes\": {{ \"halt\": {}, \"wrong\": {}, \
         \"rts_error\": {}, \"fuel\": {} }}, \"faults_injected\": {}, \"quiet\": {} }},",
        chaos.cases,
        chaos.case_seed,
        chaos.fault_seed,
        chaos.schedules,
        chaos.halt,
        chaos.wrong,
        chaos.rts_error,
        chaos.fuel,
        chaos.faults_injected,
        chaos.quiet
    );
    let rates: Vec<String> = pool
        .rates
        .iter()
        .map(|r| {
            format!(
                "{{ \"workers\": {}, \"virtual_jobs_per_sec\": {}, \"wall_jobs_per_sec\": {}, \
                 \"speedup_permille\": {}, \"efficiency_permille\": {} }}",
                r.workers,
                r.virtual_jobs_per_sec,
                r.wall_jobs_per_sec,
                r.speedup_permille,
                r.efficiency_permille
            )
        })
        .collect();
    let _ = writeln!(
        s,
        "  \"pool\": {{ \"jobs\": {}, \"clock\": \"{}\", \"total_cost\": {}, \
         \"hit_rate_permille\": {}, \"throughput\": [\n    {}\n  ] }},",
        pool.jobs,
        pool.clock,
        pool.total_cost,
        pool.hit_rate_permille,
        rates.join(",\n    ")
    );
    // Checkpointing totals from a `--snapshot-every` run of the same
    // manifest: reported for trend-watching, never gated (no `"name":`
    // key, so the baseline parser skips the whole line).
    let _ = writeln!(
        s,
        "  \"snapshots\": {{ \"every\": {}, \"jobs_checkpointed\": {}, \"count\": {}, \
         \"bytes\": {}, \"blob_digest\": \"{:#018x}\" }},",
        snap.every, snap.jobs_checkpointed, snap.count, snap.bytes, snap.digest
    );
    // The execution-service figures. One line, no `"name":` key; every
    // field except `wall_rps` is deterministic and gated exactly by
    // `check_serve_baseline`.
    let _ = writeln!(
        s,
        "  \"serve\": {{ \"clock\": \"{}\", \"tenants\": {}, \"threads\": {}, \"lanes\": {}, \
         \"quantum\": {}, \"completed\": {}, \"yields\": {}, \"migrations\": {}, \
         \"parked_high_water\": {}, \"virtual_ns\": {}, \"virtual_rps\": {}, \
         \"queue_wait_p50\": {}, \"queue_wait_p99\": {}, \"turnaround_p50\": {}, \
         \"turnaround_p99\": {}, \"event_digest\": \"{:#018x}\", \"wall_rps\": {} }}",
        serve.clock,
        serve.tenants,
        serve.threads,
        serve.lanes,
        serve.quantum,
        serve.completed,
        serve.yields,
        serve.migrations,
        serve.parked_high_water,
        serve.virtual_ns,
        serve.virtual_rps,
        serve.queue_wait_p50,
        serve.queue_wait_p99,
        serve.turnaround_p50,
        serve.turnaround_p99,
        serve.event_digest,
        serve.wall_rps
    );
    s.push_str("}\n");
    s
}

/// Extracts `(name, instructions)` pairs from a trajectory JSON
/// document (the committed baseline). Only the subset the regression
/// gate needs is read; the parser relies on the stable field order
/// [`to_json`] emits.
pub fn parse_baseline(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(npos) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[npos + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { continue };
        let name = rest[..end].to_string();
        let Some(ipos) = rest.find("\"instructions\": ") else {
            continue;
        };
        let irest = &rest[ipos + "\"instructions\": ".len()..];
        let digits: String = irest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(n) = digits.parse() {
            out.push((name, n));
        }
    }
    out
}

/// Extracts one `"key": value` pair from the serve baseline line —
/// `value` is either a bare integer or a quoted `"0x…"` hex digest.
fn serve_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let rest = &line[line.find(&pat)? + pat.len()..];
    if let Some(hex) = rest.strip_prefix("\"0x") {
        let digits: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
        return u64::from_str_radix(&digits, 16).ok();
    }
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The serve gate: every deterministic field of the committed `serve`
/// section must match the current run **exactly** — these are virtual
/// cost-model figures over a fixed load profile, so any drift is a
/// behavior change, not noise. `wall_rps` is not compared (and a
/// baseline predating the section is itself a violation: the gate
/// never silently waves the service through).
pub fn check_serve_baseline(baseline_text: &str, serve: &ServeFigures) -> Vec<String> {
    let Some(line) = baseline_text.lines().find(|l| l.contains("\"serve\": {")) else {
        return vec!["baseline has no `serve` section (regenerate it with --out)".into()];
    };
    let mut violations = Vec::new();
    for (key, current) in serve.gated_fields() {
        match serve_field(line, key) {
            None => violations.push(format!("baseline `serve` section lacks `{key}`")),
            Some(base) if base != current => violations.push(format!(
                "serve `{key}` changed: {current} vs baseline {base} \
                 (deterministic serve fields are gated exactly)"
            )),
            Some(_) => {}
        }
    }
    violations
}

/// The CI regression gate: every baseline workload must still exist and
/// must not have grown its deterministic instruction count by more than
/// `tolerance` (e.g. `0.25` for 25%). Returns the list of violations.
pub fn check_against_baseline(
    baseline: &[(String, u64)],
    current: &[Measurement],
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (name, base) in baseline {
        let Some(m) = current.iter().find(|m| &m.name == name) else {
            violations.push(format!("workload `{name}` disappeared from the trajectory"));
            continue;
        };
        let limit = (*base as f64 * (1.0 + tolerance)).floor() as u64;
        if m.instructions > limit {
            violations.push(format!(
                "workload `{name}` regressed: {} instructions vs baseline {} (limit {})",
                m.instructions, base, limit
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(workers: usize, virt: u64, wall: u64, speedup_permille: u64) -> PoolRate {
        PoolRate {
            workers,
            virtual_jobs_per_sec: virt,
            wall_jobs_per_sec: wall,
            speedup_permille,
            efficiency_permille: speedup_permille / workers as u64,
        }
    }

    fn snap_fixture() -> SnapshotFigures {
        SnapshotFigures {
            every: 1024,
            jobs_checkpointed: 160,
            count: 777,
            bytes: 65536,
            digest: 0xdead_beef_cafe_f00d,
        }
    }

    fn serve_fixture() -> ServeFigures {
        ServeFigures {
            clock: SERVE_CLOCK,
            tenants: 17,
            threads: 1088,
            lanes: 8,
            quantum: 2000,
            completed: 1088,
            yields: 4242,
            migrations: 512,
            parked_high_water: 1040,
            virtual_ns: 9_876_543,
            virtual_rps: 538_000,
            queue_wait_p50: 100,
            queue_wait_p99: 4000,
            turnaround_p50: 200_000,
            turnaround_p99: 900_000,
            event_digest: 0x1234_5678_9abc_def0,
            wall_rps: 31_337,
        }
    }

    #[test]
    fn json_round_trips_the_gated_subset() {
        let ms = vec![
            Measurement {
                name: "a".into(),
                instructions: 123,
                result: 7,
                old_ns_per_iter: 10,
                decoded_ns_per_iter: 5,
                fused_ns_per_iter: 4,
                dispatch: EventCounts::default(),
            },
            Measurement {
                name: "b".into(),
                instructions: 456,
                result: 8,
                old_ns_per_iter: 0,
                decoded_ns_per_iter: 0,
                fused_ns_per_iter: 0,
                dispatch: EventCounts::default(),
            },
        ];
        let chaos = ChaosHistogram {
            cases: 40,
            schedules: 5,
            halt: 150,
            wrong: 30,
            rts_error: 15,
            fuel: 5,
            faults_injected: 60,
            quiet: 120,
            ..ChaosHistogram::default()
        };
        let pool = PoolThroughput {
            jobs: 20,
            clock: POOL_CLOCK,
            total_cost: 5000,
            hit_rate_permille: 400,
            rates: vec![rate(1, 111, 91, 1000), rate(4, 333, 89, 3000)],
        };
        let json = to_json(3, &ms, &chaos, &pool, &snap_fixture(), &serve_fixture());
        let parsed = parse_baseline(&json);
        // The chaos, pool, and snapshot sections must not leak into
        // the gated workload list.
        assert_eq!(parsed, vec![("a".into(), 123), ("b".into(), 456)]);
        assert!(json.contains("\"faults_injected\": 60"), "{json}");
        assert!(json.contains("\"virtual_jobs_per_sec\": 111"), "{json}");
        assert!(json.contains("\"wall_jobs_per_sec\": 91"), "{json}");
        assert!(json.contains("\"jobs_checkpointed\": 160"), "{json}");
        assert!(
            json.contains("\"blob_digest\": \"0xdeadbeefcafef00d\""),
            "{json}"
        );
    }

    #[test]
    fn throughput_is_reported_but_never_gated() {
        // The honesty property behind `--tolerance 0`: perturbing a
        // wall-clock throughput figure in the committed baseline must
        // not move the gate, while perturbing a deterministic
        // instruction count must trip it.
        let ms = vec![Measurement {
            name: "a".into(),
            instructions: 123,
            result: 7,
            old_ns_per_iter: 10,
            decoded_ns_per_iter: 5,
            fused_ns_per_iter: 4,
            dispatch: EventCounts::default(),
        }];
        let pool = PoolThroughput {
            jobs: 20,
            clock: POOL_CLOCK,
            total_cost: 5000,
            hit_rate_permille: 400,
            rates: vec![rate(1, 111, 91, 1000), rate(4, 333, 89, 3000)],
        };
        let json = to_json(
            3,
            &ms,
            &ChaosHistogram::default(),
            &pool,
            &snap_fixture(),
            &serve_fixture(),
        );

        // Every wall-clock, scaling, and checkpointing figure
        // perturbed: the gated subset is unchanged, so a
        // zero-tolerance check still passes. This is the honesty
        // property for the scaling rows, the fused tier's timing
        // fields, and the snapshot row — none of them can move the
        // gate.
        for field in [
            "\"virtual_jobs_per_sec\": 111",
            "\"wall_jobs_per_sec\": 91",
            "\"speedup_permille\": 3000",
            "\"efficiency_permille\": 750",
            "\"total_cost\": 5000",
            "\"old_ns_per_iter\": 10",
            "\"decoded_ns_per_iter\": 5",
            "\"fused_ns_per_iter\": 4",
            "\"speedup\": 2.00",
            "\"fused_speedup\": 1.25",
            "\"fused_regression\": false",
            "\"every\": 1024",
            "\"jobs_checkpointed\": 160",
            "\"count\": 777",
            "\"bytes\": 65536",
            "\"blob_digest\": \"0xdeadbeefcafef00d\"",
        ] {
            let bumped = field.rsplit_once(' ').expect("field has a value").0;
            let faster = json.replace(field, &format!("{bumped} 999999"));
            assert_ne!(json, faster, "the perturbation must actually hit: {field}");
            assert_eq!(parse_baseline(&json), parse_baseline(&faster));
            assert!(check_against_baseline(&parse_baseline(&faster), &ms, 0.0).is_empty());
        }

        // One instruction shaved off the baseline: current (123) now
        // exceeds baseline (122) and zero tolerance must flag it.
        let tighter = json.replace("\"instructions\": 123", "\"instructions\": 122");
        let v = check_against_baseline(&parse_baseline(&tighter), &ms, 0.0);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn every_serve_field_is_gated_individually_and_wall_rps_is_not() {
        // The serve honesty property: perturbing ANY deterministic
        // serve field in the committed baseline trips the gate on its
        // own, while the wall-clock rate can drift freely — and a
        // baseline predating the section is itself a violation.
        let serve = serve_fixture();
        let pool = PoolThroughput {
            jobs: 1,
            clock: POOL_CLOCK,
            total_cost: 1,
            hit_rate_permille: 0,
            rates: Vec::new(),
        };
        let json = to_json(
            1,
            &[],
            &ChaosHistogram::default(),
            &pool,
            &snap_fixture(),
            &serve,
        );
        assert!(check_serve_baseline(&json, &serve).is_empty());
        // The section must stay invisible to the workload-row parser.
        assert!(parse_baseline(&json).is_empty());

        for (key, value) in serve.gated_fields() {
            let (pat, bumped) = if key == "event_digest" {
                (
                    format!("\"{key}\": \"{value:#018x}\""),
                    format!("\"{key}\": \"{:#018x}\"", value + 1),
                )
            } else {
                (
                    format!("\"{key}\": {value}"),
                    format!("\"{key}\": {}", value + 1),
                )
            };
            let perturbed = json.replace(&pat, &bumped);
            assert_ne!(json, perturbed, "perturbation must hit: {pat}");
            let v = check_serve_baseline(&perturbed, &serve);
            assert_eq!(v.len(), 1, "{key} perturbation not caught: {v:?}");
            assert!(v[0].contains(key), "{key}: {v:?}");
        }

        // wall_rps is never gated.
        let faster = json.replace(
            &format!("\"wall_rps\": {}", serve.wall_rps),
            "\"wall_rps\": 999999999",
        );
        assert_ne!(json, faster, "the wall perturbation must hit");
        assert!(check_serve_baseline(&faster, &serve).is_empty());

        // A serve-less baseline is a violation, not a silent pass.
        let stripped: String = json
            .lines()
            .filter(|l| !l.contains("\"serve\": {"))
            .collect::<Vec<_>>()
            .join("\n");
        let v = check_serve_baseline(&stripped, &serve);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no `serve` section"), "{v:?}");
    }

    #[test]
    fn fused_regressions_are_flagged_per_row_and_summarized() {
        // One healthy row, one where the fused tier lost to decoded.
        let mk = |name: &str, decoded: u64, fused: u64| Measurement {
            name: name.into(),
            instructions: 10,
            result: 0,
            old_ns_per_iter: 20,
            decoded_ns_per_iter: decoded,
            fused_ns_per_iter: fused,
            dispatch: EventCounts::default(),
        };
        let good = mk("good", 5, 4);
        let bad = mk("bad", 4, 5);
        assert!(!good.fused_regression());
        assert!(bad.fused_regression());
        // Zero fused time means "tier not measured", never a regression.
        assert!(!mk("unmeasured", 5, 0).fused_regression());

        let ms = vec![good, bad];
        let pool = PoolThroughput {
            jobs: 1,
            clock: POOL_CLOCK,
            total_cost: 1,
            hit_rate_permille: 0,
            rates: Vec::new(),
        };
        let json = to_json(
            1,
            &ms,
            &ChaosHistogram::default(),
            &pool,
            &snap_fixture(),
            &serve_fixture(),
        );
        assert!(json.contains("\"fused_regression\": false"), "{json}");
        assert!(json.contains("\"fused_regression\": true"), "{json}");
        assert!(json.contains("\"fused_regressions\": [\"bad\"],"), "{json}");
        // The summary line must stay invisible to the baseline parser:
        // only real workload rows carry `"name": ` + `"instructions": `.
        let parsed = parse_baseline(&json);
        assert_eq!(parsed, vec![("good".into(), 10), ("bad".into(), 10)]);
    }

    #[test]
    fn virtual_makespan_is_deterministic_and_monotone() {
        // Hand-checkable list schedule: lanes fill least-loaded-first
        // in submission order, ties to the lowest lane index.
        assert_eq!(virtual_makespan(&[4, 3, 3, 2, 2], 1), 14);
        assert_eq!(virtual_makespan(&[4, 3, 3, 2, 2], 2), 8);
        assert_eq!(virtual_makespan(&[4, 3, 3, 2, 2], 3), 5);
        // Zero-cost jobs still occupy a schedule slot.
        assert_eq!(virtual_makespan(&[0, 0], 1), 2);
        assert_eq!(virtual_makespan(&[], 4), 1);
        // Makespan never increases with more lanes, on a cost list
        // shaped like the real manifest (heterogeneous, many jobs).
        let costs: Vec<u64> = (0..200).map(|i| 100 + (i * 37) % 900).collect();
        let mut last = u64::MAX;
        for workers in 1..=16 {
            let m = virtual_makespan(&costs, workers);
            assert!(m <= last, "-j{workers} made the schedule worse");
            last = m;
        }
    }

    #[test]
    fn pool_scaling_is_monotone_with_real_parallel_headroom() {
        // The full acceptance run: the committed trajectory's scaling
        // rows must be monotone non-decreasing in virtual jobs/sec
        // through -j8, with -j4 at least twice -j1. The virtual clock
        // is deterministic, so a failure here is a real scheduling or
        // cost-model regression, not machine noise. The run also
        // asserts internally that the stripped batch report is
        // byte-identical across all four worker counts.
        let p = run_pool_throughput(&[1, 2, 4, 8]);
        assert!(p.jobs >= 160, "the manifest should be large: {}", p.jobs);
        assert!(p.hit_rate_permille > 0);
        assert!(p.total_cost > 0);
        assert_eq!(p.rates.len(), 4);
        for pair in p.rates.windows(2) {
            assert!(
                pair[1].virtual_jobs_per_sec >= pair[0].virtual_jobs_per_sec,
                "-j{} is slower than -j{} on the virtual clock",
                pair[1].workers,
                pair[0].workers
            );
        }
        let j1 = &p.rates[0];
        let j4 = &p.rates[2];
        assert_eq!((j1.workers, j4.workers), (1, 4));
        assert!(
            j4.virtual_jobs_per_sec >= 2 * j1.virtual_jobs_per_sec,
            "-j4 must be at least 2x -j1: {} vs {}",
            j4.virtual_jobs_per_sec,
            j1.virtual_jobs_per_sec
        );
        assert_eq!(j1.speedup_permille, 1000);
        for r in &p.rates {
            assert!(
                r.efficiency_permille <= 1000,
                "-j{} claims superlinear speedup",
                r.workers
            );
        }
    }

    #[test]
    fn snapshot_figures_are_reproducible_and_non_vacuous() {
        // Two fresh checkpointed runs of the trajectory manifest land
        // on identical totals (each run also asserts -j1 == -j4
        // internally), and the committed interval is small enough that
        // checkpointing actually happens.
        let a = run_snapshot_figures(SNAPSHOT_EVERY);
        let b = run_snapshot_figures(SNAPSHOT_EVERY);
        assert_eq!(
            a, b,
            "snapshot figures must be a pure function of the manifest"
        );
        assert!(a.jobs_checkpointed > 0, "no job ever crossed a boundary");
        assert!(a.count > 0 && a.bytes > 0);
        assert_ne!(a.digest, cmm_snap::FOLD_INIT, "digest never folded a blob");
    }

    #[test]
    fn chaos_histogram_is_reproducible_and_non_vacuous() {
        let a = run_chaos_histogram(10, 0, 0, 3);
        let b = run_chaos_histogram(10, 0, 0, 3);
        assert_eq!(a, b, "histogram must be a pure function of its seeds");
        assert_eq!(a.halt + a.wrong + a.rts_error + a.fuel, 30);
        assert!(
            a.faults_injected > 0,
            "a 10x3 sweep should inject at least one fault"
        );
    }

    #[test]
    fn gate_flags_regressions_and_lost_workloads() {
        let current = vec![Measurement {
            name: "a".into(),
            instructions: 130,
            result: 0,
            old_ns_per_iter: 0,
            decoded_ns_per_iter: 0,
            fused_ns_per_iter: 0,
            dispatch: EventCounts::default(),
        }];
        // 130 <= 100 * 1.25 is false: regression.
        let v = check_against_baseline(&[("a".into(), 100)], &current, 0.25);
        assert_eq!(v.len(), 1, "{v:?}");
        // Within tolerance.
        assert!(check_against_baseline(&[("a".into(), 110)], &current, 0.25).is_empty());
        // Lost workload.
        let v = check_against_baseline(&[("gone".into(), 1)], &current, 0.25);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn instruction_counts_agree_across_engines_on_every_workload() {
        // measure_program / measure_m3 assert old == decoded == fused
        // internally; one iteration of the full trajectory is the test.
        let ms = run_trajectory(1);
        assert!(ms.len() >= 18);
        for m in &ms {
            assert!(m.instructions > 0, "{} did no work", m.name);
        }
        // The fused hot rows made it in, for every non-suspending
        // strategy.
        for label in ["cps", "cutting", "native-unwind"] {
            for prefix in ["hot_raise_frequency", "hot_no_raise"] {
                let name = format!("{prefix}_{label}");
                assert!(
                    ms.iter().any(|m| m.name == name),
                    "hot row `{name}` missing"
                );
            }
        }
    }

    #[test]
    fn dispatch_counts_match_hand_counted_figures() {
        // The Figures 3/4 loop makes exactly `n` calls into `g` plus one
        // top-level return of `f`; no abnormal arm is ever taken. The
        // Figure 2 deep raise walks depth + 1 frames: every Table 1 op
        // of that walk shows up in `rts_ops`.
        let ms = run_trajectory(1);
        let get = |name: &str| {
            ms.iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("workload `{name}` missing"))
        };
        for name in ["fig34_plain", "fig34_table"] {
            let m = get(name);
            assert_eq!(m.dispatch.calls, 2000, "{name}");
            assert_eq!(m.dispatch.returns, 2001, "{name}");
            assert_eq!(m.dispatch.abnormal_returns, 0, "{name}");
            assert_eq!(m.dispatch.cuts, 0, "{name}");
        }
        let deep = get("fig2_deep_raise_runtime-unwind");
        assert!(deep.dispatch.yields > 0, "deep raise never suspended");
        assert!(deep.dispatch.rts_ops > 0, "deep raise used no Table 1 ops");
        // The sjlj strategy transfers to handlers with `cut to`; no-raise
        // runs never cut, while the interpretive unwinder's raise does
        // resume through the RTS.
        assert_eq!(get("sec2_no_raise_sjlj-pentium").dispatch.cuts, 0);
    }
}
