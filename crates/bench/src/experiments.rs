//! The experiment implementations. Each returns its report as a string
//! (and asserts the paper's qualitative claims hold).

use cmm_cfg::build_program;
use cmm_frontend::workloads::{
    deep_raise, no_raise_expected, raise_frequency_expected, NO_RAISE, RAISE_FREQUENCY,
};
use cmm_frontend::{compile_minim3, run_vm, run_vm_with, Strategy};
use cmm_opt::{optimize_program, OptOptions};
use cmm_parse::parse_module;
use cmm_vm::{arch, compile, Cost, VmMachine, VmStatus};
use std::fmt::Write as _;

fn run_cmm(
    src: &str,
    proc: &str,
    args: &[u64],
    results: usize,
    opts: &OptOptions,
) -> (Vec<u64>, Cost) {
    let mut prog = build_program(&parse_module(src).expect("experiment source parses"))
        .expect("experiment source builds");
    optimize_program(&mut prog, opts);
    let vp = compile(&prog).expect("experiment source compiles");
    let mut m = VmMachine::new(&vp);
    m.start(proc, args, results);
    match m.run(500_000_000) {
        VmStatus::Halted(vals) => (vals, m.cost),
        other => panic!("experiment did not halt: {other:?}"),
    }
}

/// Figure 2: raise cost vs stack depth for all four mechanisms, plus
/// the normal-case cost of entering handler scopes.
pub fn fig2_design_space() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Figure 2 — the design space of control transfer\n");
    let _ = writeln!(
        out,
        "Raise caught `depth` frames above (total instructions incl. run-time system):\n"
    );
    let depths = [5u32, 25, 50, 100, 200];
    let _ = write!(out, "{:<18}", "strategy");
    for d in depths {
        let _ = write!(out, "{:>10}", format!("d={d}"));
    }
    let _ = writeln!(out, "{:>16}", "per-frame cost");

    let mut per_frame = Vec::new();
    for strategy in Strategy::CORE {
        let module = compile_minim3(&deep_raise(true), strategy).expect("compiles");
        let mut totals = Vec::new();
        for d in depths {
            let (r, cost) = run_vm(&module, strategy, &[d]).expect("runs");
            assert_eq!(r, 43);
            totals.push(cost.total());
        }
        let slope = (totals[4] - totals[3]) as f64 / f64::from(depths[4] - depths[3]);
        per_frame.push((strategy, slope));
        let _ = write!(out, "{:<18}", strategy.label());
        for t in &totals {
            let _ = write!(out, "{:>10}", t);
        }
        let _ = writeln!(out, "{:>16.1}", slope);
    }
    // The calls themselves cost the same for the direct strategies; the
    // per-frame slope difference is dispatch cost. Cutting's slope is
    // the baseline (O(1) dispatch).
    let slope_of = |s: Strategy| per_frame.iter().find(|(x, _)| *x == s).expect("present").1;
    let cutting = slope_of(Strategy::Cutting);
    let native = slope_of(Strategy::NativeUnwind);
    let runtime = slope_of(Strategy::RuntimeUnwind);
    assert!(
        runtime > native && native > cutting,
        "expected interpretive > native > cutting dispatch slope"
    );
    let _ = writeln!(
        out,
        "\nDispatch overhead per frame (slope minus cutting's O(1) baseline):\n\
         \x20 runtime-unwind {:+.1}, native-unwind {:+.1}, cutting +0 (baseline), cps raises in O(1).",
        runtime - cutting,
        native - cutting
    );

    // Normal-case cost: handler scopes entered but never used.
    let _ = writeln!(
        out,
        "\nNormal-case cost per handler-scope entry (never raises):\n"
    );
    let n = 200u32;
    let mut rows = Vec::new();
    for strategy in Strategy::CORE {
        let module = compile_minim3(NO_RAISE, strategy).expect("compiles");
        let (r, cost) = run_vm(&module, strategy, &[n]).expect("runs");
        assert_eq!(r, no_raise_expected(n));
        rows.push((strategy, cost.total()));
    }
    let base = rows.iter().map(|&(_, t)| t).min().expect("nonempty");
    for (strategy, total) in &rows {
        let _ = writeln!(
            out,
            "  {:<18} {:>8} total  ({:+.2}/iteration vs best)",
            strategy.label(),
            total,
            (*total as f64 - base as f64) / f64::from(n)
        );
    }
    let unwind_total = rows
        .iter()
        .find(|(s, _)| *s == Strategy::RuntimeUnwind)
        .expect("present")
        .1;
    let cutting_total = rows
        .iter()
        .find(|(s, _)| *s == Strategy::Cutting)
        .expect("present")
        .1;
    assert!(
        unwind_total < cutting_total,
        "unwinding must have lower normal-case cost than cutting"
    );
    let _ = writeln!(
        out,
        "\nThe 2x2 of Figure 2 holds: stack-walking techniques (unwind columns) pay\n\
         nothing per scope entry; non-walking techniques (cut to / SetCutToCont)\n\
         pay per entry but dispatch in constant time."
    );
    out
}

/// Figures 3/4: instruction counts at call sites under the branch-table
/// method versus a test-and-branch alternative.
pub fn fig34_branch_table() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Figures 3/4 — the branch-table method\n");

    // A loop of calls that always return normally.
    let plain = r#"
        f(bits32 n) {
            bits32 acc, r;
            acc = 0;
          loop:
            if n == 0 { return (acc); } else {
                r = g(n);
                acc = acc + r;
                n = n - 1;
                goto loop;
            }
        }
        g(bits32 x) { return (x); }
    "#;
    // Same, with one alternate return continuation (branch table).
    let table = r#"
        f(bits32 n) {
            bits32 acc, r;
            acc = 0;
          loop:
            if n == 0 { return (acc); } else {
                r = g(n) also returns to kexn;
                acc = acc + r;
                n = n - 1;
                goto loop;
            }
            continuation kexn(r):
            return (0 - 1);
        }
        g(bits32 x) { return <1/1> (x); }
    "#;
    // The alternative the paper rejects: return a status code and test
    // it at every call site.
    let test_branch = r#"
        f(bits32 n) {
            bits32 acc, r, status;
          bits32 e;
            acc = 0;
          loop:
            if n == 0 { return (acc); } else {
                status, r = g(n);
                if status != 0 { return (0 - 1); }
                acc = acc + r;
                n = n - 1;
                goto loop;
            }
        }
        g(bits32 x) { return (0, x); }
    "#;
    let n = 100u64;
    let opts = OptOptions::default();
    let (v1, c1) = run_cmm(plain, "f", &[n], 1, &opts);
    let (v2, c2) = run_cmm(table, "f", &[n], 1, &opts);
    let (v3, c3) = run_cmm(test_branch, "f", &[n], 1, &opts);
    assert_eq!(v1, v2);
    assert_eq!(v2, v3);
    let _ = writeln!(out, "{n} normal-returning calls:\n");
    let _ = writeln!(
        out,
        "  {:<34} {:>8} {:>10}",
        "call-site technique", "instr", "branches"
    );
    let _ = writeln!(
        out,
        "  {:<34} {:>8} {:>10}",
        "plain call (no alternates)", c1.instructions, c1.branches
    );
    let _ = writeln!(
        out,
        "  {:<34} {:>8} {:>10}",
        "branch table (Figure 4)", c2.instructions, c2.branches
    );
    let _ = writeln!(
        out,
        "  {:<34} {:>8} {:>10}",
        "status code + test at call site", c3.instructions, c3.branches
    );
    assert_eq!(
        c1.instructions, c2.instructions,
        "the branch-table method has NO dynamic overhead in the normal case"
    );
    assert!(
        c3.instructions >= c1.instructions + 2 * n,
        "test-and-branch pays >= 2 instructions per call"
    );
    let _ = writeln!(
        out,
        "\nNormal case: branch table = plain call exactly ({} instructions);\n\
         the status-code alternative pays {} extra instructions ({} per call).",
        c1.instructions,
        c3.instructions - c1.instructions,
        (c3.instructions - c1.instructions) / n
    );

    // Abnormal case: branch-to-branch.
    let raise_table = table.replace("return <1/1> (x);", "return <0/1> (x);");
    let (v, c) = run_cmm(&raise_table, "f", &[1], 1, &opts);
    assert_eq!(v, vec![0xffff_ffff]);
    let _ = writeln!(
        out,
        "\nAbnormal return: jr ra+i into the table, then an unconditional jump to\n\
         the continuation — \"a branch to a branch\" ({} branches for 1 call+raise).",
        c.branches
    );
    out
}

/// §2: the cost of `setjmp`-style scope entry across architectures.
pub fn sec2_setjmp_cost() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## §2 — jmp_buf sizes vs the native stack cutter\n");
    let n = 100u32;
    let _ = writeln!(
        out,
        "{n} handler-scope entries (no raise): stores per entry\n"
    );
    let _ = writeln!(
        out,
        "  {:<24} {:>14} {:>18}",
        "architecture", "jmp_buf words", "stores/entry"
    );
    let baseline = {
        let module = compile_minim3(NO_RAISE, Strategy::Cutting).expect("compiles");
        let (r, cost) = run_vm(&module, Strategy::Cutting, &[n]).expect("runs");
        assert_eq!(r, no_raise_expected(n));
        cost.stores
    };
    let mut per_entry = Vec::new();
    for profile in [
        arch::NATIVE_CUTTER,
        arch::PENTIUM_LINUX,
        arch::SPARC_SOLARIS,
        arch::ALPHA_DIGITAL_UNIX,
    ] {
        let strategy = Strategy::Sjlj(profile);
        let module = compile_minim3(NO_RAISE, strategy).expect("compiles");
        let (r, cost) = run_vm(&module, strategy, &[n]).expect("runs");
        assert_eq!(r, no_raise_expected(n));
        // Stores beyond the cutting baseline, plus cutting's own 1
        // store per entry, averaged.
        let stores = (cost.stores - baseline) as f64 / f64::from(n) + 1.0;
        per_entry.push(stores);
        let _ = writeln!(
            out,
            "  {:<24} {:>14} {:>18.1}",
            profile.name, profile.jmp_buf_words, stores
        );
    }
    assert!(
        per_entry[0] < per_entry[1] && per_entry[1] < per_entry[2] && per_entry[2] < per_entry[3]
    );
    let _ = writeln!(
        out,
        "\nThe paper's ordering reproduces: 2 (native cutter) << 6 (Pentium) <\n\
         19 (SPARC) < 84 (Alpha) words saved per scope entry. (The native\n\
         cutter's 2-pointer (pc, sp) pair is initialized once per activation in\n\
         the prologue — §5.4's representation — so its *per-entry* cost is a\n\
         single push: even better than the paper's conservative count.)"
    );
    out
}

/// Appendix A: the two dispatcher cost models and their crossover as
/// raise frequency varies.
pub fn appendixa_dispatchers() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Appendix A — zero-overhead entry vs constant-time dispatch\n"
    );
    let n = 240u32;
    let freqs = [0u32, 60, 12, 4, 2, 1];
    let _ = writeln!(
        out,
        "{n} iterations; every m-th raises (m=0: never). Total work:\n"
    );
    let _ = write!(out, "  {:<18}", "strategy");
    for m in freqs {
        let label = if m == 0 {
            "never".to_string()
        } else {
            format!("1/{m}")
        };
        let _ = write!(out, "{:>10}", label);
    }
    let _ = writeln!(out);
    let mut table = Vec::new();
    for strategy in [Strategy::RuntimeUnwind, Strategy::Cutting] {
        let module = compile_minim3(RAISE_FREQUENCY, strategy).expect("compiles");
        let mut row = Vec::new();
        for m in freqs {
            let (r, cost) = run_vm(&module, strategy, &[n, m]).expect("runs");
            assert_eq!(r, raise_frequency_expected(n, m));
            row.push(cost.total());
        }
        let _ = write!(out, "  {:<18}", strategy.label());
        for t in &row {
            let _ = write!(out, "{:>10}", t);
        }
        let _ = writeln!(out);
        table.push((strategy, row));
    }
    let unwind = &table[0].1;
    let cutting = &table[1].1;
    assert!(
        unwind[0] < cutting[0],
        "with no raises, zero-overhead scope entry (unwinding) must win"
    );
    assert!(
        unwind[freqs.len() - 1] > cutting[freqs.len() - 1],
        "with a raise every iteration, constant-time dispatch (cutting) must win"
    );
    let crossover = freqs
        .iter()
        .zip(unwind.iter().zip(cutting.iter()))
        .find(|(_, (u, c))| u > c)
        .map(|(m, _)| *m);
    let _ = writeln!(
        out,
        "\nCrossover: unwinding (Figure 8/9: free entry, expensive dispatch) wins\n\
         while raises are rare; cutting (Figure 10: paid entry, cheap dispatch)\n\
         wins from roughly one raise per {} iterations.",
        crossover.unwrap_or(1)
    );
    out
}

/// §4.2: cut edges kill callee-saves registers; unwind edges do not.
pub fn sec42_callee_saves() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## §4.2 — callee-saves registers vs cut edges\n");
    let body = |ann: &str, raise: &str| {
        format!(
            r#"
            f(bits32 n) {{
                bits32 acc, x, y, w, r;
                acc = 0;
              loop:
                if n == 0 {{ return (acc); }} else {{
                    y = n * 3;
                    w = n + 7;
                    r = g(n, k) {ann};
                    acc = acc + r + y + w;
                    n = n - 1;
                    goto loop;
                }}
                continuation k(r):
                return (r + y + w);
            }}
            g(bits32 a, bits32 kk) {{
                {raise}
                return (a);
            }}
            "#
        )
    };
    // Normal path only (never raises): measure frame traffic.
    let cuts = body("also cuts to k", "");
    let unwinds = body("also unwinds to k", "");
    let n = 100u64;
    let opts = OptOptions::default();
    let (v1, c_cut) = run_cmm(&cuts, "f", &[n], 1, &opts);
    let (v2, c_unw) = run_cmm(&unwinds, "f", &[n], 1, &opts);
    assert_eq!(v1, v2);
    let _ = writeln!(
        out,
        "{n} loop iterations, y and w live across the call and into the handler:\n"
    );
    let _ = writeln!(
        out,
        "  {:<26} {:>8} {:>8} {:>8}",
        "annotation at the call", "instr", "loads", "stores"
    );
    let _ = writeln!(
        out,
        "  {:<26} {:>8} {:>8} {:>8}",
        "also cuts to k", c_cut.instructions, c_cut.loads, c_cut.stores
    );
    let _ = writeln!(
        out,
        "  {:<26} {:>8} {:>8} {:>8}",
        "also unwinds to k", c_unw.instructions, c_unw.loads, c_unw.stores
    );
    assert!(
        c_cut.loads + c_cut.stores > c_unw.loads + c_unw.stores,
        "cut edges must force frame traffic that unwind edges avoid"
    );
    let _ = writeln!(
        out,
        "\nWith `also cuts to`, the optimizer may not promote y/w to callee-saves\n\
         registers (the cut would lose them), so they live in the frame: {} extra\n\
         memory operations. With `also unwinds to`, the stack walk restores\n\
         callee-saves registers, so y/w stay in registers — \"the unwinding\n\
         technique allows callee-saves registers to be used at every call site\".",
        (c_cut.loads + c_cut.stores) - (c_unw.loads + c_unw.stores)
    );
    out
}

/// §6/Table 3: what the single, exception-aware optimizer buys.
pub fn table3_dataflow_effect() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Table 3 — one optimizer for all exception styles\n");
    let n = 60u32;
    let _ = writeln!(
        out,
        "GAME-like workload ({} iterations of RAISE_FREQUENCY, m=4), optimized vs not:\n",
        n
    );
    let _ = writeln!(
        out,
        "  {:<18} {:>12} {:>12} {:>9}",
        "strategy", "unoptimized", "optimized", "saved"
    );
    for strategy in Strategy::CORE {
        let module = compile_minim3(RAISE_FREQUENCY, strategy).expect("compiles");
        let (r1, c1) = run_vm_with(&module, strategy, &[n, 4], &OptOptions::none()).expect("runs");
        let (r2, c2) =
            run_vm_with(&module, strategy, &[n, 4], &OptOptions::default()).expect("runs");
        assert_eq!(r1, r2, "{strategy}: optimization must preserve results");
        assert_eq!(r1, raise_frequency_expected(n, 4));
        let saved = c1.total() as i64 - c2.total() as i64;
        let _ = writeln!(
            out,
            "  {:<18} {:>12} {:>12} {:>8.1}%",
            strategy.label(),
            c1.total(),
            c2.total(),
            100.0 * saved as f64 / c1.total() as f64
        );
        assert!(
            c2.total() <= c1.total(),
            "{strategy}: optimization must not hurt"
        );
    }
    let _ = writeln!(
        out,
        "\nThe same pass pipeline (constants, copies, CSE, DCE, callee-saves\n\
         promotion) runs unchanged on all four exception styles — exceptions are\n\
         ordinary edges, so \"a single optimizer suffices for all C-- programs\"."
    );
    out
}

/// Every experiment, in paper order.
pub fn all_experiments() -> String {
    let mut out = String::new();
    for section in [
        sec2_setjmp_cost(),
        fig2_design_space(),
        fig34_branch_table(),
        sec42_callee_saves(),
        table3_dataflow_effect(),
        appendixa_dispatchers(),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each experiment asserts its claims internally; running them is
    // the test.
    #[test]
    fn fig2_claims_hold() {
        fig2_design_space();
    }

    #[test]
    fn fig34_claims_hold() {
        fig34_branch_table();
    }

    #[test]
    fn sec2_claims_hold() {
        sec2_setjmp_cost();
    }

    #[test]
    fn appendixa_claims_hold() {
        appendixa_dispatchers();
    }

    #[test]
    fn sec42_claims_hold() {
        sec42_callee_saves();
    }

    #[test]
    fn table3_claims_hold() {
        table3_dataflow_effect();
    }
}
