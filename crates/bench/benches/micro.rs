//! Criterion wall-clock benchmarks of the implementation itself:
//! parser, translator, optimizer, abstract machine, simulated target,
//! and the end-to-end MiniM3 strategies.
//!
//! The *paper's* experiments are deterministic instruction-count tables
//! (see the `cmm-bench` binaries); these benches track the speed of this
//! reproduction's own components.

use cmm_cfg::build_program;
use cmm_frontend::workloads::{GAME, RAISE_FREQUENCY};
use cmm_frontend::{compile_minim3, run_vm, Strategy};
use cmm_opt::{optimize_program, OptOptions};
use cmm_parse::parse_module;
use cmm_sem::{Machine, Status, Value};
use cmm_vm::{compile, VmMachine, VmStatus};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SP_SRC: &str = r#"
    sp1(bits32 n) {
        bits32 s, p;
        if n == 1 { return (1, 1); }
        else { s, p = sp1(n - 1); return (s + n, p * n); }
    }
    sp3(bits32 n) {
        bits32 s, p;
        s = 1; p = 1;
      loop:
        if n == 1 { return (s, p); }
        else { s = s + n; p = p * n; n = n - 1; goto loop; }
    }
"#;

fn bench_parser(c: &mut Criterion) {
    c.bench_function("parse_figure1", |b| {
        b.iter(|| parse_module(black_box(SP_SRC)).expect("parses"))
    });
}

fn bench_translate(c: &mut Criterion) {
    let module = parse_module(SP_SRC).expect("parses");
    c.bench_function("build_program", |b| {
        b.iter(|| build_program(black_box(&module)).expect("builds"))
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let prog = build_program(&parse_module(SP_SRC).expect("parses")).expect("builds");
    c.bench_function("optimize_program", |b| {
        b.iter(|| {
            let mut p = prog.clone();
            optimize_program(&mut p, &OptOptions::default())
        })
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let prog = build_program(&parse_module(SP_SRC).expect("parses")).expect("builds");
    c.bench_function("sem_interpret_sp3_1000", |b| {
        b.iter(|| {
            let mut m = Machine::new(&prog);
            m.start("sp3", vec![Value::b32(1000)]).expect("starts");
            assert!(matches!(m.run(10_000_000), Status::Terminated(_)));
        })
    });
}

fn bench_vm(c: &mut Criterion) {
    let mut prog = build_program(&parse_module(SP_SRC).expect("parses")).expect("builds");
    optimize_program(&mut prog, &OptOptions::default());
    let vp = compile(&prog).expect("compiles");
    c.bench_function("vm_execute_sp3_1000", |b| {
        b.iter(|| {
            let mut m = VmMachine::new(&vp);
            m.start("sp3", &[1000], 2);
            assert!(matches!(m.run(10_000_000), VmStatus::Halted(_)));
        })
    });
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("minim3_strategies");
    for strategy in Strategy::CORE {
        let module = compile_minim3(RAISE_FREQUENCY, strategy).expect("compiles");
        group.bench_function(strategy.label(), |b| {
            b.iter(|| run_vm(black_box(&module), strategy, &[60, 4]).expect("runs"))
        });
    }
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("compile_minim3_game", |b| {
        b.iter(|| compile_minim3(black_box(GAME), Strategy::Cutting).expect("compiles"))
    });
}

criterion_group!(
    benches,
    bench_parser,
    bench_translate,
    bench_optimizer,
    bench_interpreter,
    bench_vm,
    bench_strategies,
    bench_frontend
);
criterion_main!(benches);
