//! Wall-clock benchmarks of the implementation itself: parser,
//! translator, optimizer, abstract machine, simulated target, and the
//! end-to-end MiniM3 strategies.
//!
//! The *paper's* experiments are deterministic instruction-count tables
//! (see the `cmm-bench` binaries); these benches track the speed of this
//! reproduction's own components. They use a small self-contained timing
//! harness (median of several timed batches) so the workspace builds
//! without external benchmarking crates.

use cmm_cfg::build_program;
use cmm_frontend::workloads::{GAME, RAISE_FREQUENCY};
use cmm_frontend::{compile_minim3, run_vm, Strategy};
use cmm_opt::{optimize_program, OptOptions};
use cmm_parse::parse_module;
use cmm_sem::{Machine, Status, Value};
use cmm_vm::{compile, VmMachine, VmStatus};
use std::hint::black_box;
use std::time::{Duration, Instant};

const SP_SRC: &str = r#"
    sp1(bits32 n) {
        bits32 s, p;
        if n == 1 { return (1, 1); }
        else { s, p = sp1(n - 1); return (s + n, p * n); }
    }
    sp3(bits32 n) {
        bits32 s, p;
        s = 1; p = 1;
      loop:
        if n == 1 { return (s, p); }
        else { s = s + n; p = p * n; n = n - 1; goto loop; }
    }
"#;

/// Times `f` in batches until ~50 ms have elapsed or 7 batches have run,
/// and reports the median per-iteration time.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up and estimate a batch size aiming at ~5 ms per batch.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(50));
    let batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

    let mut samples = Vec::new();
    let deadline = Instant::now() + Duration::from_millis(50);
    for _ in 0..7 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t.elapsed() / batch);
        if Instant::now() > deadline {
            break;
        }
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!(
        "{name:<32} {median:>12.2?}/iter  ({batch} iters/batch, {} batches)",
        samples.len()
    );
}

fn main() {
    bench("parse_figure1", || {
        parse_module(black_box(SP_SRC)).expect("parses");
    });

    let module = parse_module(SP_SRC).expect("parses");
    bench("build_program", || {
        build_program(black_box(&module)).expect("builds");
    });

    let prog = build_program(&module).expect("builds");
    bench("optimize_program", || {
        let mut p = prog.clone();
        optimize_program(&mut p, &OptOptions::default());
    });

    bench("sem_interpret_sp3_1000", || {
        let mut m = Machine::new(&prog);
        m.start("sp3", vec![Value::b32(1000)]).expect("starts");
        assert!(matches!(m.run(10_000_000), Status::Terminated(_)));
    });

    let mut opt_prog = prog.clone();
    optimize_program(&mut opt_prog, &OptOptions::default());
    let vp = compile(&opt_prog).expect("compiles");
    bench("vm_execute_sp3_1000", || {
        let mut m = VmMachine::new(&vp);
        m.start("sp3", &[1000], 2);
        assert!(matches!(m.run(10_000_000), VmStatus::Halted(_)));
    });

    for strategy in Strategy::CORE {
        let module = compile_minim3(RAISE_FREQUENCY, strategy).expect("compiles");
        bench(&format!("minim3_strategies/{}", strategy.label()), || {
            run_vm(black_box(&module), strategy, &[60, 4]).expect("runs");
        });
    }

    bench("compile_minim3_game", || {
        compile_minim3(black_box(GAME), Strategy::Cutting).expect("compiles");
    });
}
