//! Cross-strategy equivalence: the same MiniM3 programs must produce the
//! same observable results under all four implementation techniques (and
//! the sjlj variant), on both execution substrates.
//!
//! This is the paper's central claim made executable: the four
//! techniques are interchangeable *policies* over one intermediate
//! language.

use cmm_frontend::workloads::*;
use cmm_frontend::{compile_minim3, run_sem, run_vm, M3Error, Strategy};
use cmm_vm::arch;

fn all_strategies() -> Vec<Strategy> {
    let mut v = Strategy::CORE.to_vec();
    v.push(Strategy::Sjlj(arch::PENTIUM_LINUX));
    v
}

fn check_everywhere(src: &str, args: &[u32], expected: u32) {
    for strategy in all_strategies() {
        let module = compile_minim3(src, strategy)
            .unwrap_or_else(|e| panic!("{strategy}: lower error: {e}"));
        let sem = run_sem(&module, strategy, args)
            .unwrap_or_else(|e| panic!("{strategy}/sem args {args:?}: {e}"));
        assert_eq!(sem, expected, "{strategy}/sem args {args:?}");
        let (vm, _) = run_vm(&module, strategy, args)
            .unwrap_or_else(|e| panic!("{strategy}/vm args {args:?}: {e}"));
        assert_eq!(vm, expected, "{strategy}/vm args {args:?}");
    }
}

#[test]
fn game_example_all_strategies() {
    for (seed, expected) in GAME_CASES {
        check_everywhere(GAME, &[seed], expected);
    }
}

#[test]
fn nested_handlers_and_rethrow() {
    for (which, expected) in NESTED_CASES {
        check_everywhere(NESTED, &[which], expected);
    }
}

#[test]
fn deep_raise_is_caught_at_the_top() {
    check_everywhere(&deep_raise(true), &[25], 43);
}

#[test]
fn deep_raise_without_handler_is_uncaught() {
    for strategy in all_strategies() {
        let module = compile_minim3(&deep_raise(false), strategy).unwrap();
        match run_sem(&module, strategy, &[10]) {
            Err(M3Error::Uncaught { exception }) => assert_eq!(exception, "Deep", "{strategy}"),
            other => panic!("{strategy}: expected uncaught, got {other:?}"),
        }
        match run_vm(&module, strategy, &[10]) {
            Err(M3Error::Uncaught { exception }) => assert_eq!(exception, "Deep", "{strategy}"),
            other => panic!("{strategy}: expected uncaught, got {other:?}"),
        }
    }
}

#[test]
fn raise_frequency_sweep() {
    for (n, m) in [(12, 0), (12, 1), (12, 3), (12, 11)] {
        check_everywhere(RAISE_FREQUENCY, &[n, m], raise_frequency_expected(n, m));
    }
}

#[test]
fn no_raise_workload() {
    check_everywhere(NO_RAISE, &[10], no_raise_expected(10));
}

#[test]
fn handler_uses_enclosing_locals() {
    for x in [2, 10] {
        check_everywhere(HANDLER_USES_LOCALS, &[x], handler_uses_locals_expected(x));
    }
}

#[test]
fn plain_computation_without_exceptions() {
    let src = r#"
        proc fib(n) {
            var a, b, t, i;
            a = 0; b = 1; i = 0;
            while i < n { t = a + b; a = b; b = t; i = i + 1; }
            return a;
        }
        proc main(n) { var r; r = fib(n); return r; }
    "#;
    check_everywhere(src, &[10], 55);
    check_everywhere(src, &[1], 1);
    check_everywhere(src, &[0], 0);
}

#[test]
fn handler_body_can_raise_to_outer_scope() {
    let src = r#"
        exception A, B;
        proc f(x) { if x == 1 { raise A(5); } return x; }
        proc main(x) {
            var r;
            try {
                try {
                    r = f(x);
                } except {
                    A(v) => { raise B(v + 1); }
                }
            } except {
                B(v) => { r = v + 100; }
                A(v) => { r = 0; }
            }
            return r;
        }
    "#;
    check_everywhere(src, &[1], 106);
    check_everywhere(src, &[7], 7);
}

#[test]
fn raise_in_loop_reuses_scope() {
    // Handler scope entered and exited dynamically many times.
    let src = r#"
        exception E;
        proc maybe(i) { if i % 3 == 0 { raise E(i); } return i; }
        proc main(n) {
            var i, acc, r;
            i = 1; acc = 0;
            while i <= n {
                try { r = maybe(i); acc = acc + r; }
                except { E(v) => { acc = acc + 100 + v; } }
                i = i + 1;
            }
            return acc;
        }
    "#;
    // i=1..6: 1+2+(100+3)+4+5+(100+6) = 221
    check_everywhere(src, &[6], 221);
}
