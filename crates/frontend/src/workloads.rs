//! Standard MiniM3 workloads used by the cross-strategy tests and the
//! benchmark harness. Each returns (source, expected results for sample
//! inputs) where practical.

/// The paper's Figure 7 game fragment, made runnable: `tryAMove`
/// protects `getMove`/`makeMove` with two handlers; a seed over 10
/// raises `BadMove(seed)`, a seed of exactly 0 raises `NoMoreTiles`.
pub const GAME: &str = r#"
    exception BadMove, NoMoreTiles;

    proc getMove(player, seed) {
        if seed == 0 { raise NoMoreTiles; }
        if seed > 10 { raise BadMove(seed); }
        return seed + player;
    }

    proc makeMove(t) {
        if t > 15 { raise BadMove(t); }
        return t;
    }

    proc tryAMove(player, seed) {
        var t, movesTried;
        movesTried = 0;
        try {
            t = getMove(player, seed);
            t = makeMove(t);
            movesTried = t;
        } except {
            BadMove(why) => { movesTried = why + 1000; }
            NoMoreTiles  => { movesTried = 9999; }
        }
        movesTried = movesTried + 1;
        return movesTried;
    }

    proc main(seed) {
        var r;
        r = tryAMove(7, seed);
        return r;
    }
"#;

/// Expected `GAME` results: (seed, result). Seed 3 plays normally;
/// seed 0 runs out of tiles; seed 50 fails in `getMove`; seed 9 passes
/// `getMove` (9 + 7 = 16) but fails in `makeMove`.
pub const GAME_CASES: [(u32, u32); 4] = [(3, 11), (0, 10000), (50, 1051), (9, 1017)];

/// An exception raised `depth` call frames below its handler: measures
/// how dispatch cost scales with stack depth (the x-axis of the
/// Figure 2 comparison).
pub fn deep_raise(with_try_at_top: bool) -> String {
    let body = if with_try_at_top {
        r#"
        proc main(depth) {
            var r;
            try { r = recurse(depth); } except { Deep(v) => { r = v + 1; } }
            return r;
        }"#
    } else {
        r#"
        proc main(depth) {
            var r;
            r = recurse(depth);
            return r;
        }"#
    };
    format!(
        r#"
        exception Deep;
        proc recurse(n) {{
            var r;
            if n == 0 {{ raise Deep(42); }}
            r = recurse(n - 1);
            return r + 0;
        }}
        {body}
        "#
    )
}

/// A loop of `n` iterations where every `m`'th iteration raises (and is
/// handled locally): sweeping `m` traces the normal-case-overhead vs
/// raise-cost crossover of the two Appendix A dispatchers.
pub const RAISE_FREQUENCY: &str = r#"
    exception Odd;

    proc work(i, m) {
        if m > 0 {
            if i % m == 0 { raise Odd(i); }
        }
        return i * 2;
    }

    proc main(n, m) {
        var i, acc, r;
        i = 0;
        acc = 0;
        while i < n {
            try {
                r = work(i, m);
                acc = acc + r;
            } except {
                Odd(v) => { acc = acc + v + 1; }
            }
            i = i + 1;
        }
        return acc;
    }
"#;

/// Reference implementation of `RAISE_FREQUENCY` for checking results.
pub fn raise_frequency_expected(n: u32, m: u32) -> u32 {
    let mut acc = 0u32;
    for i in 0..n {
        if m > 0 && i % m == 0 {
            acc = acc.wrapping_add(i + 1);
        } else {
            acc = acc.wrapping_add(i * 2);
        }
    }
    acc
}

/// Pure computation inside a `try` that never raises: isolates the
/// normal-case overhead of entering handler scopes (zero for the
/// unwinding strategies, per-entry work for cutting/sjlj).
pub const NO_RAISE: &str = r#"
    exception Never;

    proc step(x) {
        return x * 2 + 1;
    }

    proc main(n) {
        var i, acc, r;
        i = 0;
        acc = 0;
        while i < n {
            try {
                r = step(i);
                acc = acc + r;
            } except {
                Never => { acc = 0; }
            }
            i = i + 1;
        }
        return acc;
    }
"#;

/// Reference implementation of `NO_RAISE`.
pub fn no_raise_expected(n: u32) -> u32 {
    (0..n).fold(0u32, |acc, i| acc.wrapping_add(i * 2 + 1))
}

/// Nested handlers and rethrow: the inner handler catches `Inner`,
/// rethrows anything else; `Outer` must reach the outer handler through
/// the inner scope.
pub const NESTED: &str = r#"
    exception Inner, Outer;

    proc boom(which) {
        if which == 1 { raise Inner(10); }
        if which == 2 { raise Outer(20); }
        return 0;
    }

    proc main(which) {
        var r;
        r = 0;
        try {
            try {
                r = boom(which);
            } except {
                Inner(v) => { r = v + 100; }
            }
            r = r + 1;
        } except {
            Outer(v) => { r = v + 200; }
        }
        return r;
    }
"#;

/// Expected `NESTED` results: (which, result).
pub const NESTED_CASES: [(u32, u32); 3] = [(0, 1), (1, 111), (2, 220)];

/// A handler that uses variables of the enclosing procedure set *before*
/// the try — the §4.2 callee-saves scenario (y and w live across the
/// call and into the handler).
pub const HANDLER_USES_LOCALS: &str = r#"
    exception E;

    proc risky(x) {
        if x > 5 { raise E(x); }
        return x;
    }

    proc main(x) {
        var y, w, r;
        y = x * 3;
        w = x + 7;
        try {
            r = risky(x);
        } except {
            E(v) => { r = v + y + w; }
        }
        return r + y;
    }
"#;

/// Expected `HANDLER_USES_LOCALS` results.
pub fn handler_uses_locals_expected(x: u32) -> u32 {
    let y = x * 3;
    let w = x + 7;
    let r = if x > 5 { x + y + w } else { x };
    r + y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_minim3;

    #[test]
    fn all_workloads_parse() {
        for src in [GAME, RAISE_FREQUENCY, NO_RAISE, NESTED, HANDLER_USES_LOCALS] {
            parse_minim3(src).unwrap();
        }
        parse_minim3(&deep_raise(true)).unwrap();
        parse_minim3(&deep_raise(false)).unwrap();
    }

    #[test]
    fn reference_implementations() {
        assert_eq!(raise_frequency_expected(4, 2), 1 + 2 + 3 + 6);
        assert_eq!(no_raise_expected(3), 1 + 3 + 5);
        assert_eq!(handler_uses_locals_expected(2), 2 + 6);
        assert_eq!(handler_uses_locals_expected(10), (10 + 30 + 17) + 30);
    }
}
