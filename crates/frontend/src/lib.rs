//! # cmm-frontend — source-language front ends over C--
//!
//! The paper's thesis is that one intermediate language can support the
//! exception policy of *any* source language, implemented by *any* of the
//! four known techniques. This crate is the demonstration: **MiniM3**, a
//! Modula-3-flavoured source language with `try`/`except`/`raise`
//! (Appendix A's running example), compiled to C-- by four interchangeable
//! strategies — plus a `setjmp`/`longjmp`-style fifth for the §2 cost
//! comparison:
//!
//! | [`Strategy`] | Paper technique | Mechanism used |
//! |---|---|---|
//! | `RuntimeUnwind` | run-time stack unwinding (Figs 8/9) | `also unwinds to` + descriptors + the Table 1 interface, dispatched by [`dispatch`] |
//! | `Cutting` | stack cutting (Fig 10) | a dynamic handler stack of continuations + `cut to` |
//! | `NativeUnwind` | native-code stack unwinding | one abnormal return continuation per call (`also returns to` + `return <0/1>`), compiled with the branch-table method |
//! | `Cps` | continuation-passing style | whole-program CPS: heap-allocated return/handler closures + `jump` |
//! | `Sjlj(arch)` | `setjmp`/`longjmp` (§2) | stack cutting that additionally saves an `arch`-sized `jmp_buf` at every scope entry |
//!
//! All strategies produce observably equivalent programs (the
//! cross-strategy integration tests enforce it); they differ exactly in
//! the cost trade-offs of Figure 2, which `cmm-bench` measures.
//!
//! The front-end **run-time system** for `RuntimeUnwind` — the paper's
//! Figure 9 dispatcher, originally C — is ported to safe Rust in
//! [`dispatch`], working over the Table 1 interface only (both the
//! `cmm-sem` and `cmm-vm` implementations of it).
//!
//! # Example
//!
//! ```
//! use cmm_frontend::{compile_minim3, run_sem, Strategy};
//!
//! let src = r#"
//!     exception Overflow;
//!     proc add(a, b) {
//!         if a > 1000 { raise Overflow(a); }
//!         return a + b;
//!     }
//!     proc main(x) {
//!         var r;
//!         try { r = add(x, 10); } except {
//!             Overflow(v) => { r = 0 - 1; }
//!         }
//!         return r;
//!     }
//! "#;
//! for strategy in [Strategy::RuntimeUnwind, Strategy::Cutting,
//!                  Strategy::NativeUnwind, Strategy::Cps] {
//!     let module = compile_minim3(src, strategy)?;
//!     assert_eq!(run_sem(&module, strategy, &[5])?, 15);
//!     assert_eq!(run_sem(&module, strategy, &[2000])?, 0xffff_ffff);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod dispatch;
pub mod driver;
pub mod lower;
pub mod parse;
pub mod workloads;

pub use driver::{
    run_sem, run_sem_resolved, run_sem_thread, run_sem_traced, run_vm, run_vm_decoded,
    run_vm_decoded_with, run_vm_fused, run_vm_fused_with, run_vm_thread, run_vm_traced,
    run_vm_with, M3Error, VmEngine,
};
pub use lower::{compile_minim3, compile_program, LowerError, Strategy};
pub use parse::parse_minim3;

/// The yield code MiniM3's run-time-unwinding strategy uses to request
/// exception dispatch (`yield(M3_EXCEPTION, tag, value)`).
pub const M3_EXCEPTION: u64 = 300;
