//! The three direct-style strategies: run-time unwinding, stack cutting
//! (and its sjlj variant), and native-code unwinding.
//!
//! The generated shapes follow Appendix A closely:
//!
//! * **run-time unwinding** is Figure 8: calls carry `also unwinds to`
//!   listing every enclosing handler continuation (innermost first),
//!   `also aborts`, and `also descriptor` naming a static block that the
//!   Figure 9 dispatcher interprets; `raise` is a `yield`;
//! * **stack cutting** is Figure 10: `try` pushes the handler
//!   continuation onto a dynamic exception stack held in the global
//!   register `exn_top`, `raise` pops and `cut to`s, and the handler
//!   itself re-raises unmatched exceptions;
//! * **native unwinding** gives every call site one abnormal return
//!   continuation (`also returns to`); `raise` is `return <0/1>` and
//!   propagation re-returns frame by frame through branch tables.

use super::{lower_expr, tag_block, LowerError, Strategy, ENTRY};
use crate::ast::{M3Program, M3Stmt};
use crate::M3_EXCEPTION;
use cmm_ir::{
    Annotations, BodyItem, DataBlock, DataItem, Expr, GlobalReg, Lit, Module, Name, Proc, Stmt, Ty,
};

/// The global register holding the top of the dynamic exception stack
/// (cutting/sjlj strategies; Figure 10's `exn_top`).
pub const EXN_TOP: &str = "exn_top";
/// The exception-stack data block.
pub const EXN_STACK: &str = "m3$exnstack";

/// Lowers all procedures plus the entry wrapper.
pub fn lower(prog: &M3Program, module: &mut Module, strategy: Strategy) -> Result<(), LowerError> {
    if matches!(strategy, Strategy::Cutting | Strategy::Sjlj(_)) {
        module.push_register(GlobalReg {
            name: Name::from(EXN_TOP),
            ty: Ty::B32,
            init: None,
        });
        module.push_data(DataBlock::new(EXN_STACK, vec![DataItem::Space(1 << 20)]));
    }
    let mut desc_counter = 0usize;
    for p in &prog.procs {
        let lowered = ProcLower::new(strategy, module, &mut desc_counter).proc(p);
        module.push_proc(lowered);
    }
    module.push_proc(entry_wrapper(prog, strategy));
    Ok(())
}

/// The frame size of one handler-stack entry, in bytes.
fn scope_frame(strategy: Strategy) -> u32 {
    match strategy {
        Strategy::Sjlj(a) => 4 * a.jmp_buf_words,
        _ => 4,
    }
}

fn entry_wrapper(prog: &M3Program, strategy: Strategy) -> Proc {
    let main = prog.proc("main").expect("validated");
    let mut p = Proc::new(ENTRY);
    p.exported = true;
    for param in &main.params {
        p.formals.push((Name::from(param.as_str()), Ty::B32));
    }
    p.locals.push((Name::from("$r"), Ty::B32));
    p.locals.push((Name::from("$tag"), Ty::B32));
    p.locals.push((Name::from("$val"), Ty::B32));
    let args: Vec<Expr> = main.params.iter().map(|n| Expr::var(n.as_str())).collect();
    let mut body: Vec<BodyItem> = Vec::new();
    match strategy {
        Strategy::RuntimeUnwind => {
            body.push(
                Stmt::Call {
                    results: vec![Name::from("$r")],
                    callee: Expr::var("main"),
                    args,
                    anns: Annotations::none().and_aborts(),
                }
                .into(),
            );
            body.push(Stmt::return_([Expr::b32(0), Expr::var("$r")]).into());
        }
        Strategy::Cutting | Strategy::Sjlj(_) => {
            body.push(Stmt::assign(EXN_TOP, Expr::var(EXN_STACK)).into());
            body.push(Stmt::store(Ty::B32, Expr::var(EXN_TOP), Expr::var("k$uncaught")).into());
            body.push(
                Stmt::Call {
                    results: vec![Name::from("$r")],
                    callee: Expr::var("main"),
                    args,
                    anns: Annotations::cuts_to(["k$uncaught"]).and_aborts(),
                }
                .into(),
            );
            body.push(Stmt::return_([Expr::b32(0), Expr::var("$r")]).into());
            body.push(BodyItem::Continuation {
                name: Name::from("k$uncaught"),
                params: vec![Name::from("$tag"), Name::from("$val")],
            });
            body.push(Stmt::return_([Expr::b32(1), Expr::var("$tag")]).into());
        }
        Strategy::NativeUnwind => {
            body.push(
                Stmt::Call {
                    results: vec![Name::from("$r")],
                    callee: Expr::var("main"),
                    args,
                    anns: Annotations::returns_to(["k$uncaught"]),
                }
                .into(),
            );
            body.push(Stmt::return_([Expr::b32(0), Expr::var("$r")]).into());
            body.push(BodyItem::Continuation {
                name: Name::from("k$uncaught"),
                params: vec![Name::from("$tag"), Name::from("$val")],
            });
            body.push(Stmt::return_([Expr::b32(1), Expr::var("$tag")]).into());
        }
        Strategy::Cps => unreachable!("CPS has its own lowering"),
    }
    p.body = body;
    p
}

/// One enclosing `try` scope during lowering.
struct Scope {
    /// Handler continuation names (one per handler for unwinding; one
    /// shared dispatch continuation for cutting/native).
    conts: Vec<Name>,
    /// The exception each continuation handles, parallel to `conts`
    /// (run-time unwinding only; used to build descriptors).
    exceptions: Vec<String>,
    /// The label of the local dispatch code (native unwinding only).
    dispatch: Option<Name>,
    /// The descriptor block for the enclosing-handler chain at this
    /// scope (run-time unwinding only).
    descriptor: Option<Name>,
}

struct ProcLower<'a> {
    strategy: Strategy,
    module: &'a mut Module,
    desc_counter: &'a mut usize,
    scopes: Vec<Scope>,
    deferred: Vec<BodyItem>,
    counter: usize,
    locals: Vec<Name>,
}

impl<'a> ProcLower<'a> {
    fn new(
        strategy: Strategy,
        module: &'a mut Module,
        desc_counter: &'a mut usize,
    ) -> ProcLower<'a> {
        ProcLower {
            strategy,
            module,
            desc_counter,
            scopes: Vec::new(),
            deferred: Vec::new(),
            counter: 0,
            locals: Vec::new(),
        }
    }

    fn fresh(&mut self, hint: &str) -> Name {
        self.counter += 1;
        Name::from(format!("{hint}${}", self.counter))
    }

    fn local(&mut self, n: &str) -> Name {
        let name = Name::from(n);
        if !self.locals.contains(&name) {
            self.locals.push(name.clone());
        }
        name
    }

    fn proc(mut self, p: &crate::ast::M3Proc) -> Proc {
        for l in &p.locals {
            self.local(l);
        }
        // Native unwinding: a per-procedure propagation continuation,
        // so any abnormal return arriving at an unprotected call site is
        // re-returned to the caller.
        let prop = if matches!(self.strategy, Strategy::NativeUnwind) {
            self.local("$tag");
            self.local("$val");
            Some(Name::from("k$prop"))
        } else {
            None
        };
        let mut items = Vec::new();
        self.stmts(&p.body, &mut items);
        items.push(self.lower_return(Expr::b32(0)));
        if let Some(prop) = &prop {
            items.push(BodyItem::Continuation {
                name: prop.clone(),
                params: vec![Name::from("$tag"), Name::from("$val")],
            });
            items.push(
                Stmt::Return {
                    alt: Some(cmm_ir::AltReturn { index: 0, count: 1 }),
                    args: vec![Expr::var("$tag"), Expr::var("$val")],
                }
                .into(),
            );
        }
        items.append(&mut self.deferred);
        let mut out = Proc::new(p.name.as_str());
        for param in &p.params {
            out.formals.push((Name::from(param.as_str()), Ty::B32));
        }
        for l in &self.locals {
            out.locals.push((l.clone(), Ty::B32));
        }
        out.body = items;
        out
    }

    fn lower_return(&self, e: Expr) -> BodyItem {
        match self.strategy {
            Strategy::NativeUnwind => Stmt::Return {
                alt: Some(cmm_ir::AltReturn { index: 1, count: 1 }),
                args: vec![e],
            }
            .into(),
            _ => Stmt::return_([e]).into(),
        }
    }

    /// All enclosing handler continuations, innermost first.
    fn handler_chain(&self) -> Vec<Name> {
        self.scopes
            .iter()
            .rev()
            .flat_map(|s| s.conts.iter().cloned())
            .collect()
    }

    fn call_annotations(&self) -> Annotations {
        match self.strategy {
            Strategy::RuntimeUnwind => {
                let mut a = Annotations::unwinds_to(self.handler_chain()).and_aborts();
                if let Some(d) = self.scopes.last().and_then(|s| s.descriptor.clone()) {
                    a = a.and_descriptor(d);
                }
                a
            }
            Strategy::Cutting | Strategy::Sjlj(_) => {
                Annotations::cuts_to(self.handler_chain()).and_aborts()
            }
            Strategy::NativeUnwind => {
                let target = self
                    .scopes
                    .last()
                    .and_then(|s| s.conts.first().cloned())
                    .unwrap_or_else(|| Name::from("k$prop"));
                Annotations::returns_to([target])
            }
            Strategy::Cps => unreachable!(),
        }
    }

    fn stmts(&mut self, stmts: &[M3Stmt], out: &mut Vec<BodyItem>) {
        for s in stmts {
            self.stmt(s, out);
        }
    }

    fn stmt(&mut self, s: &M3Stmt, out: &mut Vec<BodyItem>) {
        match s {
            M3Stmt::Assign(x, e) => {
                self.local(x);
                out.push(Stmt::assign(x.as_str(), lower_expr(e)).into());
            }
            M3Stmt::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    self.local(d);
                }
                let results: Vec<Name> = dst.iter().map(|d| Name::from(d.as_str())).collect();
                out.push(
                    Stmt::Call {
                        results,
                        callee: Expr::var(callee.as_str()),
                        args: args.iter().map(lower_expr).collect(),
                        anns: self.call_annotations(),
                    }
                    .into(),
                );
            }
            M3Stmt::If(cond, then_, else_) => {
                let mut t = Vec::new();
                self.stmts(then_, &mut t);
                let mut e = Vec::new();
                self.stmts(else_, &mut e);
                out.push(
                    Stmt::If {
                        cond: lower_expr(cond),
                        then_: t,
                        else_: e,
                    }
                    .into(),
                );
            }
            M3Stmt::While(cond, body) => {
                let head = self.fresh("l$while");
                let done = self.fresh("l$wdone");
                out.push(BodyItem::Label(head.clone()));
                let mut b = Vec::new();
                self.stmts(body, &mut b);
                b.push(
                    Stmt::Goto {
                        target: head.clone(),
                    }
                    .into(),
                );
                out.push(
                    Stmt::If {
                        cond: lower_expr(cond),
                        then_: b,
                        else_: vec![Stmt::Goto {
                            target: done.clone(),
                        }
                        .into()],
                    }
                    .into(),
                );
                out.push(BodyItem::Label(done));
            }
            M3Stmt::Return(e) => out.push(self.lower_return(lower_expr(e))),
            M3Stmt::Raise(exc, value) => {
                let tag = Expr::var(tag_block(exc));
                let val = value.as_ref().map(lower_expr).unwrap_or(Expr::b32(0));
                self.lower_raise(tag, val, out);
            }
            M3Stmt::Try { body, handlers } => self.lower_try(body, handlers, out),
        }
    }

    fn lower_raise(&mut self, tag: Expr, val: Expr, out: &mut Vec<BodyItem>) {
        match self.strategy {
            Strategy::RuntimeUnwind => {
                out.push(
                    Stmt::Yield {
                        args: vec![Expr::b32(M3_EXCEPTION as u32), tag, val],
                        anns: self.call_annotations(),
                    }
                    .into(),
                );
            }
            Strategy::Cutting | Strategy::Sjlj(_) => {
                let h = self.local("$h");
                let frame = scope_frame(self.strategy);
                out.push(Stmt::assign(h.clone(), Expr::mem32(Expr::var(EXN_TOP))).into());
                out.push(
                    Stmt::assign(EXN_TOP, Expr::sub(Expr::var(EXN_TOP), Expr::b32(frame))).into(),
                );
                if let Strategy::Sjlj(a) = self.strategy {
                    // longjmp's extra cost (e.g. SPARC register-window
                    // flushing), modelled as loads.
                    let t = self.local("$t");
                    for _ in 0..a.longjmp_extra {
                        out.push(Stmt::assign(t.clone(), Expr::mem32(Expr::var(EXN_STACK))).into());
                    }
                }
                out.push(
                    Stmt::CutTo {
                        cont: Expr::Name(h),
                        args: vec![tag, val],
                        anns: Annotations::cuts_to(self.handler_chain()),
                    }
                    .into(),
                );
            }
            Strategy::NativeUnwind => {
                if let Some(dispatch) = self.scopes.last().and_then(|s| s.dispatch.clone()) {
                    self.local("$tag");
                    self.local("$val");
                    out.push(Stmt::assign("$tag", tag).into());
                    out.push(Stmt::assign("$val", val).into());
                    out.push(Stmt::Goto { target: dispatch }.into());
                } else {
                    out.push(
                        Stmt::Return {
                            alt: Some(cmm_ir::AltReturn { index: 0, count: 1 }),
                            args: vec![tag, val],
                        }
                        .into(),
                    );
                }
            }
            Strategy::Cps => unreachable!(),
        }
    }

    fn lower_try(
        &mut self,
        body: &[M3Stmt],
        handlers: &[crate::ast::M3Handler],
        out: &mut Vec<BodyItem>,
    ) {
        let done = self.fresh("l$done");
        match self.strategy {
            Strategy::RuntimeUnwind => {
                let val = self.local("$val");
                let conts: Vec<Name> = handlers.iter().map(|_| self.fresh("h")).collect();
                // Descriptor for the handler chain with this scope
                // innermost: indices match the flattened unwind list.
                let scope = Scope {
                    conts: conts.clone(),
                    exceptions: handlers.iter().map(|h| h.exception.clone()).collect(),
                    dispatch: None,
                    descriptor: None,
                };
                self.scopes.push(scope);
                let chain = self.handler_chain();
                let desc = self.make_descriptor(&chain, handlers);
                self.scopes.last_mut().expect("just pushed").descriptor = Some(desc);
                // Zero entry cost: just compile the body in scope.
                let mut b = Vec::new();
                self.stmts(body, &mut b);
                out.append(&mut b);
                self.scopes.pop();
                out.push(
                    Stmt::Goto {
                        target: done.clone(),
                    }
                    .into(),
                );
                // Handlers: one continuation each, taking the value.
                for (h, cont) in handlers.iter().zip(&conts) {
                    let mut hb = vec![BodyItem::Continuation {
                        name: cont.clone(),
                        params: vec![val.clone()],
                    }];
                    if let Some(x) = &h.binds {
                        self.local(x);
                        hb.push(Stmt::assign(x.as_str(), Expr::var(val.clone())).into());
                    }
                    self.stmts(&h.body, &mut hb);
                    hb.push(
                        Stmt::Goto {
                            target: done.clone(),
                        }
                        .into(),
                    );
                    self.deferred.append(&mut hb);
                }
            }
            Strategy::Cutting | Strategy::Sjlj(_) => {
                let tag = self.local("$tag");
                let val = self.local("$val");
                let cont = self.fresh("h");
                let frame = scope_frame(self.strategy);
                // Scope entry: push the continuation (plus, for sjlj,
                // the rest of the jmp_buf).
                out.push(
                    Stmt::assign(EXN_TOP, Expr::add(Expr::var(EXN_TOP), Expr::b32(frame))).into(),
                );
                out.push(Stmt::store(Ty::B32, Expr::var(EXN_TOP), Expr::var(cont.clone())).into());
                if let Strategy::Sjlj(a) = self.strategy {
                    for j in 1..a.jmp_buf_words.saturating_sub(1) {
                        out.push(
                            Stmt::store(
                                Ty::B32,
                                Expr::sub(Expr::var(EXN_TOP), Expr::b32(4 * j)),
                                Expr::b32(0),
                            )
                            .into(),
                        );
                    }
                }
                self.scopes.push(Scope {
                    conts: vec![cont.clone()],
                    exceptions: Vec::new(),
                    dispatch: None,
                    descriptor: None,
                });
                let mut b = Vec::new();
                self.stmts(body, &mut b);
                out.append(&mut b);
                self.scopes.pop();
                // Normal exit: pop the handler stack.
                out.push(
                    Stmt::assign(EXN_TOP, Expr::sub(Expr::var(EXN_TOP), Expr::b32(frame))).into(),
                );
                out.push(
                    Stmt::Goto {
                        target: done.clone(),
                    }
                    .into(),
                );
                // The handler: dispatch by tag; unmatched exceptions
                // re-raise by popping the next handler (Figure 10).
                let mut hb = vec![BodyItem::Continuation {
                    name: cont,
                    params: vec![tag.clone(), val.clone()],
                }];
                let mut dispatch: Vec<BodyItem> = Vec::new();
                // Build the if/else chain from the last handler inward.
                // Unmatched exceptions re-raise.
                let mut else_branch: Vec<BodyItem> = Vec::new();
                self.lower_raise(
                    Expr::var(tag.clone()),
                    Expr::var(val.clone()),
                    &mut else_branch,
                );
                for h in handlers.iter().rev() {
                    let mut arm = Vec::new();
                    if let Some(x) = &h.binds {
                        self.local(x);
                        arm.push(Stmt::assign(x.as_str(), Expr::var(val.clone())).into());
                    }
                    self.stmts(&h.body, &mut arm);
                    arm.push(
                        Stmt::Goto {
                            target: done.clone(),
                        }
                        .into(),
                    );
                    let cond = Expr::eq(Expr::var(tag.clone()), Expr::var(tag_block(&h.exception)));
                    else_branch = vec![Stmt::If {
                        cond,
                        then_: arm,
                        else_: else_branch,
                    }
                    .into()];
                }
                dispatch.append(&mut else_branch);
                hb.append(&mut dispatch);
                self.deferred.append(&mut hb);
            }
            Strategy::NativeUnwind => {
                let tag = self.local("$tag");
                let val = self.local("$val");
                let cont = self.fresh("h");
                let dispatch = self.fresh("l$disp");
                self.scopes.push(Scope {
                    conts: vec![cont.clone()],
                    exceptions: Vec::new(),
                    dispatch: Some(dispatch.clone()),
                    descriptor: None,
                });
                let mut b = Vec::new();
                self.stmts(body, &mut b);
                out.append(&mut b);
                self.scopes.pop();
                out.push(
                    Stmt::Goto {
                        target: done.clone(),
                    }
                    .into(),
                );
                // The abnormal-return continuation funnels into a local
                // dispatch label shared with local raises.
                let mut hb = vec![
                    BodyItem::Continuation {
                        name: cont,
                        params: vec![tag.clone(), val.clone()],
                    },
                    BodyItem::Label(dispatch.clone()),
                ];
                // Unmatched exceptions propagate.
                let mut else_branch: Vec<BodyItem> = Vec::new();
                self.lower_raise(
                    Expr::var(tag.clone()),
                    Expr::var(val.clone()),
                    &mut else_branch,
                );
                for h in handlers.iter().rev() {
                    let mut arm = Vec::new();
                    if let Some(x) = &h.binds {
                        self.local(x);
                        arm.push(Stmt::assign(x.as_str(), Expr::var(val.clone())).into());
                    }
                    self.stmts(&h.body, &mut arm);
                    arm.push(
                        Stmt::Goto {
                            target: done.clone(),
                        }
                        .into(),
                    );
                    let cond = Expr::eq(Expr::var(tag.clone()), Expr::var(tag_block(&h.exception)));
                    else_branch = vec![Stmt::If {
                        cond,
                        then_: arm,
                        else_: else_branch,
                    }
                    .into()];
                }
                hb.append(&mut else_branch);
                self.deferred.append(&mut hb);
            }
            Strategy::Cps => unreachable!(),
        }
        out.push(BodyItem::Label(done));
    }

    /// Emits the Figure 9-style descriptor: `[count][(tag, cont_index,
    /// takes_arg)...]` covering the whole enclosing handler chain,
    /// innermost first, with `cont_index` matching the position in the
    /// flattened `also unwinds to` list.
    fn make_descriptor(&mut self, chain: &[Name], _handlers: &[crate::ast::M3Handler]) -> Name {
        *self.desc_counter += 1;
        let name = Name::from(format!("m3$desc${}", self.desc_counter));
        let mut items = vec![DataItem::Words(Ty::B32, vec![Lit::b32(chain.len() as u32)])];
        // Reconstruct (exception, cont) pairs scope by scope, innermost
        // first, to match `handler_chain()`.
        let mut idx = 0u32;
        for scope in self.scopes.iter().rev() {
            for (cont_i, _) in scope.conts.iter().enumerate() {
                let exc = &scope.exceptions[cont_i];
                items.push(DataItem::SymRef(tag_block(exc)));
                items.push(DataItem::Words(Ty::B32, vec![Lit::b32(idx)]));
                items.push(DataItem::Words(Ty::B32, vec![Lit::b32(1)]));
                idx += 1;
            }
        }
        self.module.push_data(DataBlock::new(name.clone(), items));
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{compile_minim3, Strategy};
    use cmm_ir::Stmt;
    use cmm_vm::arch;

    fn find_proc<'m>(m: &'m Module, name: &str) -> &'m Proc {
        m.proc(name).unwrap_or_else(|| panic!("no proc {name}"))
    }

    const SRC: &str = r#"
        exception E;
        proc g(x) { if x > 3 { raise E(x); } return x; }
        proc main(x) {
            var r;
            try { r = g(x); } except { E(v) => { r = v + 1; } }
            return r;
        }
    "#;

    fn calls_of(p: &Proc) -> Vec<&Stmt> {
        fn walk<'a>(items: &'a [BodyItem], out: &mut Vec<&'a Stmt>) {
            for i in items {
                match i {
                    BodyItem::Stmt(s @ Stmt::Call { .. }) => out.push(s),
                    BodyItem::Stmt(Stmt::If { then_, else_, .. }) => {
                        walk(then_, out);
                        walk(else_, out);
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&p.body, &mut out);
        out
    }

    #[test]
    fn runtime_unwind_annotates_with_unwinds_and_descriptor() {
        let m = compile_minim3(SRC, Strategy::RuntimeUnwind).unwrap();
        let main = find_proc(&m, "main");
        let calls = calls_of(main);
        let protected = calls
            .iter()
            .find_map(|s| match s {
                Stmt::Call { anns, .. } if !anns.unwinds_to.is_empty() => Some(anns),
                _ => None,
            })
            .expect("the protected call carries unwind annotations");
        assert!(protected.aborts);
        assert_eq!(protected.descriptors.len(), 1);
        // The descriptor block exists and starts with the handler count.
        let d = m
            .data_block(protected.descriptors[0].as_str())
            .expect("descriptor emitted");
        assert!(matches!(&d.items[0], DataItem::Words(Ty::B32, v) if v[0].bits == 1));
        // Raise became a yield.
        let g = find_proc(&m, "g");
        let has_yield = g.body.iter().any(|i| {
            matches!(i, BodyItem::Stmt(Stmt::If { then_, .. })
                if then_.iter().any(|j| matches!(j, BodyItem::Stmt(Stmt::Yield { .. }))))
        });
        assert!(has_yield, "{g:#?}");
    }

    #[test]
    fn cutting_pushes_and_pops_the_handler_stack() {
        let m = compile_minim3(SRC, Strategy::Cutting).unwrap();
        assert!(m.registers().any(|r| r.name == EXN_TOP));
        assert!(m.data_block(EXN_STACK).is_some());
        let main = find_proc(&m, "main");
        // Entry and exit adjust exn_top; the raise in g pops + cuts.
        let text = cmm_ir::pretty::proc_to_string(main);
        assert!(text.contains("exn_top = exn_top + 4;"), "{text}");
        assert!(text.contains("exn_top = exn_top - 4;"), "{text}");
        let g_text = cmm_ir::pretty::proc_to_string(find_proc(&m, "g"));
        assert!(g_text.contains("cut to"), "{g_text}");
    }

    #[test]
    fn sjlj_scales_scope_entry_with_buffer_size() {
        let m = compile_minim3(SRC, Strategy::Sjlj(arch::SPARC_SOLARIS)).unwrap();
        let text = cmm_ir::pretty::proc_to_string(find_proc(&m, "main"));
        let frame = 4 * arch::SPARC_SOLARIS.jmp_buf_words;
        assert!(
            text.contains(&format!("exn_top = exn_top + {frame};")),
            "{text}"
        );
        // 17 dummy stores (words - 2) beyond the continuation push.
        let stores = text.matches("bits32[exn_top - ").count();
        assert_eq!(
            stores,
            (arch::SPARC_SOLARIS.jmp_buf_words - 2) as usize,
            "{text}"
        );
    }

    #[test]
    fn native_unwind_uses_abnormal_returns_everywhere() {
        let m = compile_minim3(SRC, Strategy::NativeUnwind).unwrap();
        let g = find_proc(&m, "g");
        let text = cmm_ir::pretty::proc_to_string(g);
        // The raise is an abnormal return; normal returns are <1/1>.
        assert!(text.contains("return <0/1>"), "{text}");
        assert!(text.contains("return <1/1>"), "{text}");
        // Calls in main target the handler continuation.
        let main = find_proc(&m, "main");
        let call_ann = calls_of(main)
            .iter()
            .find_map(|s| match s {
                Stmt::Call { anns, callee, .. } if *callee == Expr::var("g") => Some(anns.clone()),
                _ => None,
            })
            .expect("call to g");
        assert_eq!(call_ann.returns_to.len(), 1);
        assert!(call_ann.cuts_to.is_empty() && call_ann.unwinds_to.is_empty());
    }

    #[test]
    fn entry_wrapper_returns_status_and_value() {
        for strategy in [
            Strategy::RuntimeUnwind,
            Strategy::Cutting,
            Strategy::NativeUnwind,
        ] {
            let m = compile_minim3(SRC, strategy).unwrap();
            let entry = find_proc(&m, ENTRY);
            assert!(entry.exported);
            assert_eq!(entry.formals.len(), 1, "{strategy}: main's one parameter");
        }
    }

    #[test]
    fn nested_scopes_accumulate_handler_chains() {
        let nested = r#"
            exception A, B;
            proc g(x) { return x; }
            proc main(x) {
                var r;
                try {
                    try { r = g(x); } except { A(v) => { r = 1; } }
                } except { B(v) => { r = 2; } }
                return r;
            }
        "#;
        let m = compile_minim3(nested, Strategy::RuntimeUnwind).unwrap();
        let main = find_proc(&m, "main");
        let inner_call = calls_of(main)
            .iter()
            .find_map(|s| match s {
                Stmt::Call { anns, .. } if anns.unwinds_to.len() == 2 => Some(anns.clone()),
                _ => None,
            })
            .expect("inner call sees both handlers");
        // Innermost first: the descriptor lists A before B.
        let d = m.data_block(inner_call.descriptors[0].as_str()).unwrap();
        let syms: Vec<&DataItem> = d
            .items
            .iter()
            .filter(|i| matches!(i, DataItem::SymRef(_)))
            .collect();
        assert_eq!(syms.len(), 2);
        assert!(matches!(syms[0], DataItem::SymRef(n) if n == &tag_block("A")));
        assert!(matches!(syms[1], DataItem::SymRef(n) if n == &tag_block("B")));
    }
}
