//! Lowering MiniM3 to C--, one module per strategy.

pub mod cps;
pub mod direct;

use crate::ast::{M3Expr, M3Op, M3Program, M3Stmt};
use crate::parse::parse_minim3;
use cmm_ir::{BinOp, DataBlock, DataItem, Expr, Module, Name};
use cmm_vm::ArchProfile;
use std::fmt;

/// Which of the paper's implementation techniques to compile with.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Strategy {
    /// Run-time stack unwinding (Figures 8/9): `also unwinds to`,
    /// descriptors, and a dispatcher in the front-end run-time system.
    RuntimeUnwind,
    /// Stack cutting (Figure 10): a dynamic handler stack of
    /// continuation values and `cut to`.
    Cutting,
    /// Native-code stack unwinding: one abnormal return continuation
    /// per call site, compiled with the branch-table method.
    NativeUnwind,
    /// Continuation-passing style: heap-allocated return and handler
    /// closures, raises and returns are `jump`s.
    Cps,
    /// `setjmp`/`longjmp` flavoured stack cutting: every scope entry
    /// saves an architecture-sized `jmp_buf` (§2).
    Sjlj(ArchProfile),
}

impl Strategy {
    /// The four core techniques (without the §2 sjlj variant).
    pub const CORE: [Strategy; 4] = [
        Strategy::RuntimeUnwind,
        Strategy::Cutting,
        Strategy::NativeUnwind,
        Strategy::Cps,
    ];

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            Strategy::RuntimeUnwind => "runtime-unwind".into(),
            Strategy::Cutting => "cutting".into(),
            Strategy::NativeUnwind => "native-unwind".into(),
            Strategy::Cps => "cps".into(),
            Strategy::Sjlj(a) => format!("sjlj({})", a.name),
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A front-end compilation error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LowerError {
    /// MiniM3 syntax error.
    Parse(String),
    /// A call to an undefined procedure.
    UndefinedProc(String),
    /// A raise or handler names an undeclared exception.
    UndefinedException(String),
    /// No `main` procedure.
    NoMain,
    /// Wrong number of arguments at a call.
    ArityMismatch {
        /// The callee.
        callee: String,
        /// Arguments supplied.
        got: usize,
        /// Parameters declared.
        want: usize,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Parse(m) => write!(f, "{m}"),
            LowerError::UndefinedProc(p) => write!(f, "call to undefined procedure `{p}`"),
            LowerError::UndefinedException(e) => write!(f, "undeclared exception `{e}`"),
            LowerError::NoMain => write!(f, "program has no `main` procedure"),
            LowerError::ArityMismatch { callee, got, want } => {
                write!(f, "`{callee}` takes {want} arguments, {got} supplied")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// The name of the generated entry wrapper. It takes `main`'s arguments
/// and returns `(status, value)`: status 0 for a normal result, 1 for an
/// uncaught exception (whose tag is then in `value`).
pub const ENTRY: &str = "m3$entry";

/// The name of the data block whose address is exception `E`'s tag.
pub fn tag_block(exc: &str) -> Name {
    Name::from(format!("exn${exc}"))
}

/// Compiles MiniM3 source with the given strategy.
///
/// # Errors
///
/// Returns a [`LowerError`] for syntax or semantic errors.
pub fn compile_minim3(src: &str, strategy: Strategy) -> Result<Module, LowerError> {
    let prog = parse_minim3(src).map_err(|e| LowerError::Parse(e.to_string()))?;
    compile_program(&prog, strategy)
}

/// Compiles a parsed MiniM3 program.
///
/// # Errors
///
/// Returns a [`LowerError`] for semantic errors.
pub fn compile_program(prog: &M3Program, strategy: Strategy) -> Result<Module, LowerError> {
    validate(prog)?;
    let mut module = Module::new();
    // Exception tags: one data block per exception; its address is the
    // tag, and its contents (the name) aid diagnostics.
    for exc in &prog.exceptions {
        module.push_data(DataBlock::new(
            tag_block(exc),
            vec![DataItem::Str(exc.clone())],
        ));
    }
    match strategy {
        Strategy::Cps => cps::lower(prog, &mut module)?,
        _ => direct::lower(prog, &mut module, strategy)?,
    }
    Ok(module)
}

fn validate(prog: &M3Program) -> Result<(), LowerError> {
    if prog.proc("main").is_none() {
        return Err(LowerError::NoMain);
    }
    let check_stmts = |stmts: &[M3Stmt]| -> Result<(), LowerError> {
        let mut stack: Vec<&M3Stmt> = stmts.iter().collect();
        while let Some(s) = stack.pop() {
            match s {
                M3Stmt::Call { callee, args, .. } => {
                    let Some(p) = prog.proc(callee) else {
                        return Err(LowerError::UndefinedProc(callee.clone()));
                    };
                    if p.params.len() != args.len() {
                        return Err(LowerError::ArityMismatch {
                            callee: callee.clone(),
                            got: args.len(),
                            want: p.params.len(),
                        });
                    }
                }
                M3Stmt::Raise(e, _) if !prog.exceptions.iter().any(|x| x == e) => {
                    return Err(LowerError::UndefinedException(e.clone()));
                }
                M3Stmt::If(_, a, b) => {
                    stack.extend(a.iter());
                    stack.extend(b.iter());
                }
                M3Stmt::While(_, b) => stack.extend(b.iter()),
                M3Stmt::Try { body, handlers } => {
                    stack.extend(body.iter());
                    for h in handlers {
                        if !prog.exceptions.iter().any(|x| x == &h.exception) {
                            return Err(LowerError::UndefinedException(h.exception.clone()));
                        }
                        stack.extend(h.body.iter());
                    }
                }
                _ => {}
            }
        }
        Ok(())
    };
    for p in &prog.procs {
        check_stmts(&p.body)?;
    }
    Ok(())
}

/// Compiles a pure MiniM3 expression to a C-- expression.
pub fn lower_expr(e: &M3Expr) -> Expr {
    match e {
        M3Expr::Num(v) => Expr::b32(*v),
        M3Expr::Var(n) => Expr::var(n.as_str()),
        M3Expr::Bin(op, a, b) => {
            let op = match op {
                M3Op::Add => BinOp::Add,
                M3Op::Sub => BinOp::Sub,
                M3Op::Mul => BinOp::Mul,
                M3Op::Div => BinOp::DivU,
                M3Op::Mod => BinOp::ModU,
                M3Op::Eq => BinOp::Eq,
                M3Op::Ne => BinOp::Ne,
                M3Op::Lt => BinOp::LtU,
                M3Op::Le => BinOp::LeU,
                M3Op::Gt => BinOp::GtU,
                M3Op::Ge => BinOp::GeU,
            };
            Expr::binary(op, lower_expr(a), lower_expr(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_errors() {
        let no_main = parse_minim3("proc f(x) { return x; }").unwrap();
        assert_eq!(
            compile_program(&no_main, Strategy::Cutting).unwrap_err(),
            LowerError::NoMain
        );

        let bad_call = parse_minim3("proc main(x) { var r; r = nope(x); return r; }").unwrap();
        assert!(matches!(
            compile_program(&bad_call, Strategy::Cutting).unwrap_err(),
            LowerError::UndefinedProc(_)
        ));

        let bad_exc = parse_minim3("proc main(x) { raise Nope; }").unwrap();
        assert!(matches!(
            compile_program(&bad_exc, Strategy::Cutting).unwrap_err(),
            LowerError::UndefinedException(_)
        ));

        let bad_arity =
            parse_minim3("proc main(x) { var r; r = f(x, x); return r; } proc f(a) { return a; }")
                .unwrap();
        assert!(matches!(
            compile_program(&bad_arity, Strategy::Cutting).unwrap_err(),
            LowerError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn tag_blocks_emitted() {
        let m =
            compile_minim3("exception E; proc main(x) { return x; }", Strategy::Cutting).unwrap();
        assert!(m.data_block("exn$E").is_some());
    }
}
