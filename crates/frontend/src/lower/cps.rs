//! Continuation-passing-style lowering (the fourth technique).
//!
//! "In continuation-passing style, the potential exception handlers are
//! represented by an exception continuation. Generated code raises an
//! exception by making a tail call to this continuation" (§2) — the
//! Standard ML of New Jersey technique. C-- "supports continuation-
//! passing style through fully general tail calls" (§2); this lowering
//! uses nothing else:
//!
//! * every MiniM3 procedure `f(p...)` becomes a C-- procedure
//!   `f(p..., retk, exnk)` taking heap-allocated *return* and *handler*
//!   closures;
//! * `return e` is `jump bits32[retk](retk, e)`;
//! * `raise E(v)` is `jump bits32[exnk](exnk, tag, v)`;
//! * a call splits the enclosing procedure: the rest becomes a fresh
//!   continuation procedure whose closure (code pointer + captured
//!   variables + retk + exnk) is allocated from a bump allocator in the
//!   global register `hp`;
//! * `try` allocates a handler closure and threads it as `exnk` through
//!   the protected body.
//!
//! Control flow that crosses a split (the code after an `if`, a loop, or
//! a `try`) is routed through *state procedures* that receive the live
//! variables directly; the [`Finish`] value threaded through the
//! lowering says where a statement sequence goes when it falls off the
//! end.
//!
//! Handler environments are captured at `try` entry (value semantics, as
//! in a functional language); raising an exception and entering the
//! scope of a handler are both constant-time, and the per-call closure
//! allocation is the technique's standing cost — exactly the trade-off
//! profile SML/NJ accepts.

use super::{lower_expr, tag_block, LowerError, ENTRY};
use crate::ast::{M3Handler, M3Program, M3Stmt};
use cmm_ir::{
    Annotations, BodyItem, DataBlock, DataItem, Expr, GlobalReg, Module, Name, Proc, Stmt, Ty,
};

/// The bump-allocator register for continuation closures.
pub const HP: &str = "hp";
/// The closure heap data block.
pub const HEAP: &str = "cps$heap";

/// Lowers a program in CPS.
pub fn lower(prog: &M3Program, module: &mut Module) -> Result<(), LowerError> {
    module.push_register(GlobalReg {
        name: Name::from(HP),
        ty: Ty::B32,
        init: None,
    });
    module.push_data(DataBlock::new(HEAP, vec![DataItem::Space(1 << 22)]));
    let mut cps = Cps {
        out: Vec::new(),
        counter: 0,
    };
    for p in &prog.procs {
        cps.lower_proc(p);
    }
    for p in cps.out.drain(..) {
        module.push_proc(p);
    }
    entry_wrapper(prog, module);
    Ok(())
}

fn entry_wrapper(prog: &M3Program, module: &mut Module) {
    let main = prog.proc("main").expect("validated");
    let mut p = Proc::new(ENTRY);
    p.exported = true;
    for param in &main.params {
        p.formals.push((Name::from(param.as_str()), Ty::B32));
    }
    for l in ["$r", "$s", "$rk", "$xk"] {
        p.locals.push((Name::from(l), Ty::B32));
    }
    let mut b: Vec<BodyItem> = vec![
        Stmt::assign(HP, Expr::var(HEAP)).into(),
        Stmt::assign("$rk", Expr::var(HP)).into(),
        Stmt::assign(HP, Expr::add(Expr::var(HP), Expr::b32(8))).into(),
        Stmt::store(Ty::B32, Expr::var("$rk"), Expr::var("m3$done")).into(),
        Stmt::assign("$xk", Expr::var(HP)).into(),
        Stmt::assign(HP, Expr::add(Expr::var(HP), Expr::b32(8))).into(),
        Stmt::store(Ty::B32, Expr::var("$xk"), Expr::var("m3$uncaught")).into(),
    ];
    let mut args: Vec<Expr> = main.params.iter().map(|n| Expr::var(n.as_str())).collect();
    args.push(Expr::var("$rk"));
    args.push(Expr::var("$xk"));
    b.push(
        Stmt::Call {
            results: vec![Name::from("$s"), Name::from("$r")],
            callee: Expr::var("main"),
            args,
            anns: Annotations::none(),
        }
        .into(),
    );
    b.push(Stmt::return_([Expr::var("$s"), Expr::var("$r")]).into());
    p.body = b;
    module.push_proc(p);

    // The root closures: a normal result and an uncaught exception both
    // plain-return two values to m3$entry's call site.
    let mut done = Proc::new("m3$done");
    done.formals = vec![(Name::from("$env"), Ty::B32), (Name::from("$v"), Ty::B32)];
    done.body = vec![Stmt::return_([Expr::b32(0), Expr::var("$v")]).into()];
    module.push_proc(done);
    let mut unc = Proc::new("m3$uncaught");
    unc.formals = vec![
        (Name::from("$env"), Ty::B32),
        (Name::from("$tag"), Ty::B32),
        (Name::from("$val"), Ty::B32),
    ];
    unc.body = vec![Stmt::return_([Expr::b32(1), Expr::var("$tag")]).into()];
    module.push_proc(unc);
}

/// Lowering context for one source procedure (shared by all the C--
/// procedures it splits into).
#[derive(Clone)]
struct Ctx {
    /// The source procedure's variables, in closure-layout order.
    vars: Vec<Name>,
    /// The variable currently holding the handler closure.
    cur_exnk: Name,
}

impl Ctx {
    fn closure_words(&self) -> u32 {
        1 + self.vars.len() as u32 + 2
    }

    fn var_slot(&self, i: usize) -> u32 {
        4 * (1 + i as u32)
    }

    fn retk_slot(&self) -> u32 {
        4 * (1 + self.vars.len() as u32)
    }

    fn exnk_slot(&self) -> u32 {
        4 * (2 + self.vars.len() as u32)
    }
}

/// Where a statement sequence goes when it falls off the end.
#[derive(Clone)]
enum Finish {
    /// End of the source procedure: return 0 through `retk`.
    Return0,
    /// Jump to a state procedure with the current handler.
    Join(String),
    /// End of a `try` body: recover the *outer* handler from the current
    /// handler closure and jump to the join.
    JoinOuter(String),
}

/// A C-- procedure being emitted.
struct Em {
    proc: Proc,
    items: Vec<BodyItem>,
}

impl Em {
    fn new(name: &str, formals: &[Name]) -> Em {
        let mut proc = Proc::new(name);
        for f in formals {
            proc.formals.push((f.clone(), Ty::B32));
        }
        Em {
            proc,
            items: Vec::new(),
        }
    }

    fn local(&mut self, n: &Name) {
        if self.proc.var_ty(n).is_none() {
            self.proc.locals.push((n.clone(), Ty::B32));
        }
    }

    fn push(&mut self, s: Stmt) {
        self.items.push(s.into());
    }

    fn finish(mut self) -> Proc {
        self.proc.body = self.items;
        self.proc
    }
}

struct Cps {
    out: Vec<Proc>,
    counter: usize,
}

impl Cps {
    fn fresh(&mut self, base: &str, hint: &str) -> String {
        self.counter += 1;
        format!("{base}${hint}{}", self.counter)
    }

    fn lower_proc(&mut self, p: &crate::ast::M3Proc) {
        let mut vars: Vec<Name> = p.params.iter().map(|s| Name::from(s.as_str())).collect();
        for l in &p.locals {
            let n = Name::from(l.as_str());
            if !vars.contains(&n) {
                vars.push(n);
            }
        }
        let mut ctx = Ctx {
            vars: vars.clone(),
            cur_exnk: Name::from("exnk"),
        };
        let mut formals: Vec<Name> = p.params.iter().map(|s| Name::from(s.as_str())).collect();
        formals.push(Name::from("retk"));
        formals.push(Name::from("exnk"));
        let mut em = Em::new(&p.name, &formals);
        for v in &vars {
            em.local(v);
        }
        // Locals are zero until assigned: closures capture the whole
        // variable set, so every variable must be defined.
        for l in &p.locals {
            let n = Name::from(l.as_str());
            if !p.params.iter().any(|q| q == l) {
                em.push(Stmt::assign(n, Expr::b32(0)));
            }
        }
        self.seq_close(&mut em, &mut ctx, &p.name, &p.body, &Finish::Return0);
        self.out.push(em.finish());
    }

    fn emit_return(&mut self, em: &mut Em, e: Expr) {
        em.push(Stmt::Jump {
            callee: Expr::mem32(Expr::var("retk")),
            args: vec![Expr::var("retk"), e],
        });
    }

    fn emit_raise(&mut self, em: &mut Em, ctx: &Ctx, tag: Expr, val: Expr) {
        em.push(Stmt::Jump {
            callee: Expr::mem32(Expr::Name(ctx.cur_exnk.clone())),
            args: vec![Expr::Name(ctx.cur_exnk.clone()), tag, val],
        });
    }

    fn apply_finish(&mut self, em: &mut Em, ctx: &Ctx, finish: &Finish) {
        match finish {
            Finish::Return0 => self.emit_return(em, Expr::b32(0)),
            Finish::Join(j) => {
                self.jump_state(em, ctx, j, Expr::Name(ctx.cur_exnk.clone()));
            }
            Finish::JoinOuter(j) => {
                let outer = Name::from("$outer");
                em.local(&outer);
                em.push(Stmt::assign(
                    outer.clone(),
                    Expr::mem32(Expr::add(
                        Expr::Name(ctx.cur_exnk.clone()),
                        Expr::b32(ctx.exnk_slot()),
                    )),
                ));
                self.jump_state(em, ctx, j, Expr::Name(outer));
            }
        }
    }

    /// Lowers a sequence and guarantees the control flow is closed: if
    /// the statements fall through, `finish` is applied.
    fn seq_close(
        &mut self,
        em: &mut Em,
        ctx: &mut Ctx,
        base: &str,
        stmts: &[M3Stmt],
        finish: &Finish,
    ) {
        if !self.seq(em, ctx, base, stmts, finish) {
            self.apply_finish(em, ctx, finish);
        }
    }

    /// Allocates a closure `[code][vars][retk][exnk_cur]` into `dst`.
    fn emit_closure(&mut self, em: &mut Em, ctx: &Ctx, code: &str, dst: &Name) {
        em.local(dst);
        em.push(Stmt::assign(dst.clone(), Expr::var(HP)));
        em.push(Stmt::assign(
            HP,
            Expr::add(Expr::var(HP), Expr::b32(4 * ctx.closure_words())),
        ));
        em.push(Stmt::store(
            Ty::B32,
            Expr::Name(dst.clone()),
            Expr::var(code),
        ));
        for (i, v) in ctx.vars.iter().enumerate() {
            em.push(Stmt::store(
                Ty::B32,
                Expr::add(Expr::Name(dst.clone()), Expr::b32(ctx.var_slot(i))),
                Expr::Name(v.clone()),
            ));
        }
        em.push(Stmt::store(
            Ty::B32,
            Expr::add(Expr::Name(dst.clone()), Expr::b32(ctx.retk_slot())),
            Expr::var("retk"),
        ));
        em.push(Stmt::store(
            Ty::B32,
            Expr::add(Expr::Name(dst.clone()), Expr::b32(ctx.exnk_slot())),
            Expr::Name(ctx.cur_exnk.clone()),
        ));
    }

    /// Starts a closure-entry procedure (`extra` are its parameters
    /// after `$env`) that reloads the captured state.
    fn closure_entry(&mut self, name: &str, ctx: &Ctx, extra: &[Name]) -> Em {
        let mut formals = vec![Name::from("$env")];
        formals.extend(extra.iter().cloned());
        let mut em = Em::new(name, &formals);
        for (i, v) in ctx.vars.iter().enumerate() {
            em.local(v);
            em.push(Stmt::assign(
                v.clone(),
                Expr::mem32(Expr::add(Expr::var("$env"), Expr::b32(ctx.var_slot(i)))),
            ));
        }
        for (slot, n) in [(ctx.retk_slot(), "retk"), (ctx.exnk_slot(), "exnk")] {
            em.local(&Name::from(n));
            em.push(Stmt::assign(
                n,
                Expr::mem32(Expr::add(Expr::var("$env"), Expr::b32(slot))),
            ));
        }
        em
    }

    /// Starts a join/loop procedure taking the live state directly.
    fn state_proc(&mut self, name: &str, ctx: &Ctx) -> Em {
        let mut formals = ctx.vars.clone();
        formals.push(Name::from("retk"));
        formals.push(Name::from("exnk"));
        Em::new(name, &formals)
    }

    /// `jump` to a state procedure with the current variables and the
    /// given handler closure.
    fn jump_state(&mut self, em: &mut Em, ctx: &Ctx, target: &str, exnk: Expr) {
        let mut args: Vec<Expr> = ctx.vars.iter().map(|v| Expr::Name(v.clone())).collect();
        args.push(Expr::var("retk"));
        args.push(exnk);
        em.push(Stmt::Jump {
            callee: Expr::var(target),
            args,
        });
    }

    /// Lowers a statement sequence; returns true if control cannot fall
    /// through. Whenever the lowering splits into a new procedure, the
    /// rest of the sequence is closed with `finish` there.
    fn seq(
        &mut self,
        em: &mut Em,
        ctx: &mut Ctx,
        base: &str,
        stmts: &[M3Stmt],
        finish: &Finish,
    ) -> bool {
        let mut i = 0;
        while i < stmts.len() {
            match &stmts[i] {
                M3Stmt::Assign(x, e) => {
                    em.local(&Name::from(x.as_str()));
                    em.push(Stmt::assign(x.as_str(), lower_expr(e)));
                }
                M3Stmt::Return(e) => {
                    let v = lower_expr(e);
                    self.emit_return(em, v);
                    return true;
                }
                M3Stmt::Raise(exc, v) => {
                    let tag = Expr::var(tag_block(exc));
                    let val = v.as_ref().map(lower_expr).unwrap_or(Expr::b32(0));
                    self.emit_raise(em, ctx, tag, val);
                    return true;
                }
                M3Stmt::Call { dst, callee, args } => {
                    let kname = self.fresh(base, "k");
                    let c = Name::from("$c");
                    self.emit_closure(em, ctx, &kname, &c);
                    let mut cargs: Vec<Expr> = args.iter().map(lower_expr).collect();
                    cargs.push(Expr::Name(c));
                    cargs.push(Expr::Name(ctx.cur_exnk.clone()));
                    em.push(Stmt::Jump {
                        callee: Expr::var(callee.as_str()),
                        args: cargs,
                    });
                    // The rest of the sequence becomes the continuation.
                    let mut em2 = self.closure_entry(&kname, ctx, &[Name::from("$res")]);
                    if let Some(d) = dst {
                        em2.local(&Name::from(d.as_str()));
                        em2.push(Stmt::assign(d.as_str(), Expr::var("$res")));
                    }
                    let mut ctx2 = ctx.clone();
                    ctx2.cur_exnk = Name::from("exnk");
                    self.seq_close(&mut em2, &mut ctx2, base, &stmts[i + 1..], finish);
                    self.out.push(em2.finish());
                    return true;
                }
                M3Stmt::If(c, a, b) => {
                    if !needs_split(a) && !needs_split(b) {
                        let mut saved = Vec::new();
                        std::mem::swap(&mut em.items, &mut saved);
                        let term_a = self.seq(em, ctx, base, a, finish);
                        let ta = std::mem::take(&mut em.items);
                        let term_b = self.seq(em, ctx, base, b, finish);
                        let tb = std::mem::take(&mut em.items);
                        em.items = saved;
                        em.items.push(
                            Stmt::If {
                                cond: lower_expr(c),
                                then_: ta,
                                else_: tb,
                            }
                            .into(),
                        );
                        if term_a && term_b {
                            return true;
                        }
                    } else {
                        // Split: both arms jump to a join procedure that
                        // carries the live state, and the join continues
                        // the sequence.
                        let jname = self.fresh(base, "j");
                        let join = Finish::Join(jname.clone());
                        let mut saved = Vec::new();
                        std::mem::swap(&mut em.items, &mut saved);
                        let mut actx = ctx.clone();
                        self.seq_close(em, &mut actx, base, a, &join);
                        let ta = std::mem::take(&mut em.items);
                        let mut bctx = ctx.clone();
                        self.seq_close(em, &mut bctx, base, b, &join);
                        let tb = std::mem::take(&mut em.items);
                        em.items = saved;
                        em.items.push(
                            Stmt::If {
                                cond: lower_expr(c),
                                then_: ta,
                                else_: tb,
                            }
                            .into(),
                        );
                        let mut jem = self.state_proc(&jname, ctx);
                        let mut jctx = ctx.clone();
                        jctx.cur_exnk = Name::from("exnk");
                        self.seq_close(&mut jem, &mut jctx, base, &stmts[i + 1..], finish);
                        self.out.push(jem.finish());
                        return true;
                    }
                }
                M3Stmt::While(c, body) => {
                    if !needs_split(body) {
                        let head = Name::from(self.fresh(base, "l"));
                        let done = Name::from(self.fresh(base, "ld"));
                        em.items.push(BodyItem::Label(head.clone()));
                        let mut saved = Vec::new();
                        std::mem::swap(&mut em.items, &mut saved);
                        let term = self.seq(em, ctx, base, body, finish);
                        if !term {
                            em.push(Stmt::Goto {
                                target: head.clone(),
                            });
                        }
                        let b = std::mem::take(&mut em.items);
                        em.items = saved;
                        em.items.push(
                            Stmt::If {
                                cond: lower_expr(c),
                                then_: b,
                                else_: vec![Stmt::Goto {
                                    target: done.clone(),
                                }
                                .into()],
                            }
                            .into(),
                        );
                        em.items.push(BodyItem::Label(done));
                    } else {
                        // Loop procedure + after procedure.
                        let lname = self.fresh(base, "loop");
                        let aname = self.fresh(base, "after");
                        self.jump_state(em, ctx, &lname, Expr::Name(ctx.cur_exnk.clone()));
                        // loop(vars, retk, exnk):
                        //   if c { body ... jump loop } else { jump after }
                        let mut lem = self.state_proc(&lname, ctx);
                        let mut lctx = ctx.clone();
                        lctx.cur_exnk = Name::from("exnk");
                        let mut bctx = lctx.clone();
                        self.seq_close(
                            &mut lem,
                            &mut bctx,
                            base,
                            body,
                            &Finish::Join(lname.clone()),
                        );
                        let tb = std::mem::take(&mut lem.items);
                        let mut ectx = lctx.clone();
                        self.apply_finish(&mut lem, &ectx, &Finish::Join(aname.clone()));
                        let eb = std::mem::take(&mut lem.items);
                        let _ = &mut ectx;
                        lem.items.push(
                            Stmt::If {
                                cond: lower_expr(c),
                                then_: tb,
                                else_: eb,
                            }
                            .into(),
                        );
                        self.out.push(lem.finish());
                        // after(vars, retk, exnk): the rest.
                        let mut aem = self.state_proc(&aname, ctx);
                        let mut actx = ctx.clone();
                        actx.cur_exnk = Name::from("exnk");
                        self.seq_close(&mut aem, &mut actx, base, &stmts[i + 1..], finish);
                        self.out.push(aem.finish());
                        return true;
                    }
                }
                M3Stmt::Try { body, handlers } => {
                    self.lower_try(em, ctx, base, body, handlers, &stmts[i + 1..], finish);
                    return true;
                }
            }
            i += 1;
        }
        false
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_try(
        &mut self,
        em: &mut Em,
        ctx: &mut Ctx,
        base: &str,
        body: &[M3Stmt],
        handlers: &[M3Handler],
        rest: &[M3Stmt],
        finish: &Finish,
    ) {
        let hname = self.fresh(base, "h");
        let jname = self.fresh(base, "j");
        // Allocate the handler closure (captures the current state and
        // the *outer* handler).
        let hc = Name::from("$hc");
        self.emit_closure(em, ctx, &hname, &hc);
        let inner = Name::from(format!("$exnk{}", self.counter));
        em.local(&inner);
        em.push(Stmt::assign(inner.clone(), Expr::Name(hc)));
        // Protected body with exnk = the handler closure; normal
        // completion recovers the outer handler and joins.
        let mut bctx = ctx.clone();
        bctx.cur_exnk = inner;
        self.seq_close(em, &mut bctx, base, body, &Finish::JoinOuter(jname.clone()));
        // The handler procedure: dispatch by tag. It reloads the outer
        // handler as `exnk`, so handler bodies raise to the outer scope.
        let mut hem = self.closure_entry(&hname, ctx, &[Name::from("$tag"), Name::from("$val")]);
        let mut hctx = ctx.clone();
        hctx.cur_exnk = Name::from("exnk");
        let mut else_items: Vec<BodyItem> = {
            let mut tmp = Em::new("$scratch", &[]);
            self.emit_raise(&mut tmp, &hctx, Expr::var("$tag"), Expr::var("$val"));
            tmp.items
        };
        for h in handlers.iter().rev() {
            let mut arm_em = Em::new("$scratch", &[]);
            if let Some(x) = &h.binds {
                hem.local(&Name::from(x.as_str()));
                arm_em.push(Stmt::assign(x.as_str(), Expr::var("$val")));
            }
            let mut actx = hctx.clone();
            self.seq_close(
                &mut arm_em,
                &mut actx,
                base,
                &h.body,
                &Finish::Join(jname.clone()),
            );
            // Locals created while lowering the arm belong to the
            // handler procedure.
            for (n, ty) in arm_em.proc.locals.clone() {
                if hem.proc.var_ty(&n).is_none() {
                    hem.proc.locals.push((n, ty));
                }
            }
            let cond = Expr::eq(Expr::var("$tag"), Expr::var(tag_block(&h.exception)));
            else_items = vec![Stmt::If {
                cond,
                then_: arm_em.items,
                else_: else_items,
            }
            .into()];
        }
        hem.items.append(&mut else_items);
        self.out.push(hem.finish());
        // The join: the code after the try.
        let mut jem = self.state_proc(&jname, ctx);
        let mut jctx = ctx.clone();
        jctx.cur_exnk = Name::from("exnk");
        self.seq_close(&mut jem, &mut jctx, base, rest, finish);
        self.out.push(jem.finish());
    }
}

fn needs_split(stmts: &[M3Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        M3Stmt::Call { .. } | M3Stmt::Try { .. } => true,
        M3Stmt::If(_, a, b) => needs_split(a) || needs_split(b),
        M3Stmt::While(_, b) => needs_split(b),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{compile_minim3, Strategy};

    const SRC: &str = r#"
        exception E;
        proc g(x) { if x > 3 { raise E(x); } return x; }
        proc main(x) {
            var r;
            try { r = g(x); } except { E(v) => { r = v + 1; } }
            return r;
        }
    "#;

    #[test]
    fn every_source_proc_gains_retk_and_exnk() {
        let m = compile_minim3(SRC, Strategy::Cps).unwrap();
        for name in ["g", "main"] {
            let p = m.proc(name).unwrap();
            let formals: Vec<&str> = p.formals.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(&formals[formals.len() - 2..], &["retk", "exnk"], "{name}");
        }
    }

    #[test]
    fn splits_generate_continuation_procs() {
        let m = compile_minim3(SRC, Strategy::Cps).unwrap();
        // main contains a call inside a try: expect a return-continuation
        // proc (main$k...), a handler proc (main$h...), and a join
        // (main$j...).
        for prefix in ["main$k", "main$h", "main$j"] {
            assert!(
                m.procs().any(|p| p.name.as_str().starts_with(prefix)),
                "missing {prefix}* in {:?}",
                m.procs().map(|p| p.name.clone()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn returns_and_raises_are_jumps() {
        let m = compile_minim3(SRC, Strategy::Cps).unwrap();
        let g = m.proc("g").unwrap();
        let text = cmm_ir::pretty::proc_to_string(g);
        assert!(text.contains("jump (bits32[retk])(retk,"), "{text}");
        assert!(text.contains("jump (bits32[exnk])(exnk,"), "{text}");
        // No plain returns, no cut to, no yield in CPS-generated code.
        assert!(!text.contains("cut to"), "{text}");
        assert!(!text.contains("yield"), "{text}");
    }

    #[test]
    fn vm_argument_registers_suffice_for_the_workloads() {
        // The simulated target passes at most 8 values in registers; the
        // CPS state procedures take |vars| + retk + exnk.
        for src in [
            SRC,
            crate::workloads::GAME,
            crate::workloads::RAISE_FREQUENCY,
            crate::workloads::NO_RAISE,
            crate::workloads::NESTED,
            crate::workloads::HANDLER_USES_LOCALS,
        ] {
            let m = compile_minim3(src, Strategy::Cps).unwrap();
            for p in m.procs() {
                assert!(
                    p.formals.len() <= 8,
                    "{} takes {} parameters; the VM convention allows 8",
                    p.name,
                    p.formals.len()
                );
            }
        }
    }

    #[test]
    fn heap_register_and_block_emitted() {
        let m = compile_minim3(SRC, Strategy::Cps).unwrap();
        assert!(m.registers().any(|r| r.name == HP));
        assert!(m.data_block(HEAP).is_some());
        assert!(m.proc("m3$done").is_some());
        assert!(m.proc("m3$uncaught").is_some());
    }
}
