//! MiniM3 parser (hand-written, recursive descent).

use crate::ast::{M3Expr, M3Handler, M3Op, M3Proc, M3Program, M3Stmt};
use std::fmt;

/// A MiniM3 syntax error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct M3ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the source.
    pub at: usize,
}

impl fmt::Display for M3ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "minim3 syntax error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for M3ParseError {}

/// Parses a MiniM3 program.
///
/// # Errors
///
/// Returns the first syntax error.
pub fn parse_minim3(src: &str) -> Result<M3Program, M3ParseError> {
    let mut p = P {
        toks: tokenize(src),
        at: 0,
    };
    let mut prog = M3Program::default();
    while !p.done() {
        if p.eat_kw("exception") {
            prog.exceptions.push(p.ident()?);
            while p.eat(",") {
                prog.exceptions.push(p.ident()?);
            }
            p.expect(";")?;
        } else if p.eat_kw("proc") {
            prog.procs.push(p.proc()?);
        } else {
            return Err(p.error("expected `exception` or `proc`"));
        }
    }
    Ok(prog)
}

#[derive(Clone, Debug)]
struct Tok {
    text: String,
    at: usize,
}

fn tokenize(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
        } else if c.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
        } else if (matches!(c, '=' | '!' | '<' | '>') && bytes.get(i + 1) == Some(&b'='))
            || (c == '=' && bytes.get(i + 1) == Some(&b'>'))
        {
            i += 2;
        } else {
            // Advance over the whole (possibly multi-byte) character so
            // the slice below stays on a char boundary: unknown input
            // becomes an unrecognized token the parser rejects with a
            // normal error, never a panic.
            i += src[i..].chars().next().map_or(1, char::len_utf8);
        }
        toks.push(Tok {
            text: src[start..i].to_string(),
            at: start,
        });
    }
    toks
}

struct P {
    toks: Vec<Tok>,
    at: usize,
}

impl P {
    fn done(&self) -> bool {
        self.at >= self.toks.len()
    }

    fn peek(&self) -> &str {
        self.toks
            .get(self.at)
            .map(|t| t.text.as_str())
            .unwrap_or("")
    }

    fn bump(&mut self) -> String {
        let t = self.peek().to_string();
        self.at += 1;
        t
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.peek() == s {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, s: &str) -> bool {
        self.eat(s)
    }

    fn expect(&mut self, s: &str) -> Result<(), M3ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{s}`, found `{}`", self.peek())))
        }
    }

    fn error(&self, msg: impl Into<String>) -> M3ParseError {
        M3ParseError {
            message: msg.into(),
            at: self.toks.get(self.at).map(|t| t.at).unwrap_or(usize::MAX),
        }
    }

    fn ident(&mut self) -> Result<String, M3ParseError> {
        let t = self.peek();
        if t.chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected an identifier, found `{t}`")))
        }
    }

    fn proc(&mut self) -> Result<M3Proc, M3ParseError> {
        let name = self.ident()?;
        self.expect("(")?;
        let mut params = Vec::new();
        if !self.eat(")") {
            loop {
                params.push(self.ident()?);
                if !self.eat(",") {
                    break;
                }
            }
            self.expect(")")?;
        }
        self.expect("{")?;
        let mut locals = Vec::new();
        let body = self.block_items(&mut locals)?;
        Ok(M3Proc {
            name,
            params,
            locals,
            body,
        })
    }

    /// Parses statements up to and including `}`.
    fn block_items(&mut self, locals: &mut Vec<String>) -> Result<Vec<M3Stmt>, M3ParseError> {
        let mut out = Vec::new();
        while !self.eat("}") {
            if self.done() {
                return Err(self.error("unexpected end of input in a block"));
            }
            if self.eat_kw("var") {
                locals.push(self.ident()?);
                while self.eat(",") {
                    locals.push(self.ident()?);
                }
                self.expect(";")?;
                continue;
            }
            out.push(self.stmt(locals)?);
        }
        Ok(out)
    }

    fn block(&mut self, locals: &mut Vec<String>) -> Result<Vec<M3Stmt>, M3ParseError> {
        self.expect("{")?;
        self.block_items(locals)
    }

    fn stmt(&mut self, locals: &mut Vec<String>) -> Result<M3Stmt, M3ParseError> {
        if self.eat_kw("if") {
            let cond = self.expr()?;
            let then_ = self.block(locals)?;
            let else_ = if self.eat_kw("else") {
                if self.peek() == "if" {
                    vec![self.stmt(locals)?]
                } else {
                    self.block(locals)?
                }
            } else {
                Vec::new()
            };
            return Ok(M3Stmt::If(cond, then_, else_));
        }
        if self.eat_kw("while") {
            let cond = self.expr()?;
            let body = self.block(locals)?;
            return Ok(M3Stmt::While(cond, body));
        }
        if self.eat_kw("return") {
            let e = self.expr()?;
            self.expect(";")?;
            return Ok(M3Stmt::Return(e));
        }
        if self.eat_kw("raise") {
            let exc = self.ident()?;
            let value = if self.eat("(") {
                let e = self.expr()?;
                self.expect(")")?;
                Some(e)
            } else {
                None
            };
            self.expect(";")?;
            return Ok(M3Stmt::Raise(exc, value));
        }
        if self.eat_kw("try") {
            let body = self.block(locals)?;
            self.expect("except")?;
            self.expect("{")?;
            let mut handlers = Vec::new();
            while !self.eat("}") {
                let exception = self.ident()?;
                let binds = if self.eat("(") {
                    let b = self.ident()?;
                    self.expect(")")?;
                    if !locals.contains(&b) {
                        locals.push(b.clone());
                    }
                    Some(b)
                } else {
                    None
                };
                self.expect("=>")?;
                let hbody = self.block(locals)?;
                handlers.push(M3Handler {
                    exception,
                    binds,
                    body: hbody,
                });
            }
            return Ok(M3Stmt::Try { body, handlers });
        }
        // Assignment or call.
        let name = self.ident()?;
        if self.eat("=") {
            // `x = f(...)` is a call statement; anything else is an
            // assignment.
            if self.peek_is_call() {
                let callee = self.ident()?;
                let args = self.args()?;
                self.expect(";")?;
                return Ok(M3Stmt::Call {
                    dst: Some(name),
                    callee,
                    args,
                });
            }
            let e = self.expr()?;
            self.expect(";")?;
            return Ok(M3Stmt::Assign(name, e));
        }
        if self.peek() == "(" {
            let args = self.args()?;
            self.expect(";")?;
            return Ok(M3Stmt::Call {
                dst: None,
                callee: name,
                args,
            });
        }
        Err(self.error(format!("expected a statement after `{name}`")))
    }

    fn peek_is_call(&self) -> bool {
        let ident = self
            .toks
            .get(self.at)
            .map(|t| {
                t.text
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_alphabetic() || c == '_')
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        ident
            && self
                .toks
                .get(self.at + 1)
                .map(|t| t.text == "(")
                .unwrap_or(false)
    }

    fn args(&mut self) -> Result<Vec<M3Expr>, M3ParseError> {
        self.expect("(")?;
        let mut args = Vec::new();
        if !self.eat(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat(",") {
                    break;
                }
            }
            self.expect(")")?;
        }
        Ok(args)
    }

    fn expr(&mut self) -> Result<M3Expr, M3ParseError> {
        let lhs = self.arith()?;
        let op = match self.peek() {
            "==" => M3Op::Eq,
            "!=" => M3Op::Ne,
            "<" => M3Op::Lt,
            "<=" => M3Op::Le,
            ">" => M3Op::Gt,
            ">=" => M3Op::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.arith()?;
        Ok(M3Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn arith(&mut self) -> Result<M3Expr, M3ParseError> {
        let mut e = self.term()?;
        loop {
            let op = match self.peek() {
                "+" => M3Op::Add,
                "-" => M3Op::Sub,
                _ => return Ok(e),
            };
            self.bump();
            e = M3Expr::Bin(op, Box::new(e), Box::new(self.term()?));
        }
    }

    fn term(&mut self) -> Result<M3Expr, M3ParseError> {
        let mut e = self.atom()?;
        loop {
            let op = match self.peek() {
                "*" => M3Op::Mul,
                "/" => M3Op::Div,
                "%" => M3Op::Mod,
                _ => return Ok(e),
            };
            self.bump();
            e = M3Expr::Bin(op, Box::new(e), Box::new(self.atom()?));
        }
    }

    fn atom(&mut self) -> Result<M3Expr, M3ParseError> {
        if self.eat("(") {
            let e = self.expr()?;
            self.expect(")")?;
            return Ok(e);
        }
        let t = self.peek().to_string();
        if t.chars()
            .next()
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
        {
            self.bump();
            let v: u32 = t
                .parse()
                .map_err(|_| self.error("integer literal overflows 32 bits"))?;
            return Ok(M3Expr::Num(v));
        }
        Ok(M3Expr::Var(self.ident()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_game_example() {
        let p = parse_minim3(
            r#"
            exception BadMove, NoMoreTiles;
            proc tryAMove(player, seed) {
                var t, moves;
                moves = 0;
                try {
                    t = getMove(player, seed);
                    makeMove(t);
                } except {
                    BadMove(why) => { moves = why; }
                    NoMoreTiles => { moves = 0 - 1; }
                }
                moves = moves + 1;
                return moves;
            }
            proc getMove(p, s) { if s > 10 { raise BadMove(s); } return s; }
            proc makeMove(t) { return t; }
            proc main(s) { var r; r = tryAMove(1, s); return r; }
            "#,
        )
        .unwrap();
        assert_eq!(p.exceptions, vec!["BadMove", "NoMoreTiles"]);
        assert_eq!(p.procs.len(), 4);
        let t = p.proc("tryAMove").unwrap();
        assert!(t.locals.contains(&"why".to_string()));
        match &t.body[1] {
            M3Stmt::Try { handlers, .. } => {
                assert_eq!(handlers.len(), 2);
                assert_eq!(handlers[0].binds.as_deref(), Some("why"));
                assert_eq!(handlers[1].binds, None);
            }
            other => panic!("expected try, got {other:?}"),
        }
    }

    #[test]
    fn distinguishes_calls_from_assignments() {
        let p = parse_minim3(
            "proc f(x) { var a; a = x + 1; a = g(a); g(a); return a; } proc g(y) { return y; }",
        )
        .unwrap();
        let f = p.proc("f").unwrap();
        assert!(matches!(f.body[0], M3Stmt::Assign(..)));
        assert!(matches!(f.body[1], M3Stmt::Call { dst: Some(_), .. }));
        assert!(matches!(f.body[2], M3Stmt::Call { dst: None, .. }));
    }

    #[test]
    fn while_and_precedence() {
        let p = parse_minim3(
            "proc f(n) { var s; s = 0; while n > 0 { s = s + n * 2; n = n - 1; } return s; }",
        )
        .unwrap();
        let f = p.proc("f").unwrap();
        match &f.body[1] {
            M3Stmt::While(cond, body) => {
                assert!(matches!(cond, M3Expr::Bin(M3Op::Gt, ..)));
                assert_eq!(body.len(), 2);
                // s + n * 2 parses as s + (n * 2)
                match &body[0] {
                    M3Stmt::Assign(_, M3Expr::Bin(M3Op::Add, _, rhs)) => {
                        assert!(matches!(**rhs, M3Expr::Bin(M3Op::Mul, ..)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn errors_have_positions() {
        let e = parse_minim3("proc f( { }").unwrap_err();
        assert!(e.message.contains("expected"));
    }

    #[test]
    fn multibyte_input_is_an_error_not_a_panic() {
        let e = parse_minim3("proc f(x) { return x λ 1; }").unwrap_err();
        assert!(e.message.contains("expected"));
        assert!(parse_minim3("λλλ").is_err());
    }
}
