//! MiniM3 abstract syntax.
//!
//! A deliberately small Modula-3 flavour: integer-valued procedures,
//! mutable local variables, structured control flow, and — the point of
//! the exercise — declared exceptions with `try`/`except` and `raise`.

/// A MiniM3 program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct M3Program {
    /// Declared exceptions, e.g. `exception BadMove;`.
    pub exceptions: Vec<String>,
    /// Procedures; execution starts at `main`.
    pub procs: Vec<M3Proc>,
}

impl M3Program {
    /// Finds a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&M3Proc> {
        self.procs.iter().find(|p| p.name == name)
    }
}

/// A procedure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct M3Proc {
    /// Its name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Local variables (`var x, y;`), collected from the body.
    pub locals: Vec<String>,
    /// The body.
    pub body: Vec<M3Stmt>,
}

/// A statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum M3Stmt {
    /// `x = e;`
    Assign(String, M3Expr),
    /// `x = f(args);` or bare `f(args);` (`dst` empty).
    Call {
        /// Variable receiving the result, if any.
        dst: Option<String>,
        /// Callee procedure name.
        callee: String,
        /// Arguments.
        args: Vec<M3Expr>,
    },
    /// `if e { ... } else { ... }`
    If(M3Expr, Vec<M3Stmt>, Vec<M3Stmt>),
    /// `while e { ... }`
    While(M3Expr, Vec<M3Stmt>),
    /// `return e;`
    Return(M3Expr),
    /// `raise E(e);` (the value defaults to 0).
    Raise(String, Option<M3Expr>),
    /// `try { ... } except { E1(x) => { ... } E2 => { ... } }`
    Try {
        /// The protected body.
        body: Vec<M3Stmt>,
        /// The handlers, tried in order.
        handlers: Vec<M3Handler>,
    },
}

/// One `except` arm.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct M3Handler {
    /// The exception caught.
    pub exception: String,
    /// The variable bound to the exception's value, if any.
    pub binds: Option<String>,
    /// The handler body.
    pub body: Vec<M3Stmt>,
}

/// An expression (pure; calls are statements).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum M3Expr {
    /// An integer literal.
    Num(u32),
    /// A variable reference.
    Var(String),
    /// A binary operation.
    Bin(M3Op, Box<M3Expr>, Box<M3Expr>),
}

/// Binary operators (unsigned 32-bit semantics, like the C-- they
/// compile to).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum M3Op {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (fails on zero divisors, like `%divu`)
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl M3Expr {
    /// Integer literal helper.
    pub fn num(v: u32) -> M3Expr {
        M3Expr::Num(v)
    }

    /// Variable helper.
    pub fn var(n: &str) -> M3Expr {
        M3Expr::Var(n.to_string())
    }
}
