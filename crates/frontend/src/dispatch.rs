//! The MiniM3 exception dispatcher — the paper's Figure 9, ported from C
//! to Rust, over the Table 1 run-time interface.
//!
//! ```text
//! void dispatcher() {
//!     activation a;
//!     pop_exn_info(&exn_tag, &arg);
//!     FirstActivation(tb, &a);
//!     for (;;) {
//!         struct exn_descriptor *d = ...a...;
//!         if (d) {
//!             for (i = 0; i < d->handler_count; i++)
//!                 if (d->handlers[i].exn_tag == exn_tag) {
//!                     SetActivation(tb, &a);
//!                     SetUnwindCont(tb, d->handlers[i].cont_num);
//!                     if (d->handlers[i].takes_arg) {
//!                         void **result = FindContParam(tb, 0);
//!                         *result = arg;
//!                     }
//!                     return;
//!                 }
//!         }
//!         if (!NextActivation(&a)) abort();  /* unhandled */
//!     }
//! }
//! ```
//!
//! The descriptor layout interpreted here is the one `cmm-frontend`
//! deposits: `[handler_count][(exn_tag, cont_num, takes_arg) * count]`,
//! all 32-bit words, with `exn_tag` a pointer to the exception's tag
//! block.
//!
//! Two implementations are provided — one over the abstract-machine
//! interface (`cmm-rt`), one over the simulated-target interface
//! (`cmm-vm`) — with identical logic, demonstrating that "different
//! front ends may interoperate with the same C-- run-time system" and
//! vice versa.

use cmm_obs::TraceSink;
use cmm_rt::Thread;
use cmm_sem::{SemEngine, Value};
use cmm_vm::VmThread;

/// The outcome of one dispatch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Dispatch {
    /// A handler was selected and the thread resumed.
    Handled,
    /// No activation handles the exception; `tag` identifies it.
    Unhandled {
        /// The exception's tag (the address of its tag block).
        tag: u64,
    },
}

/// Dispatches the pending `yield(M3_EXCEPTION, tag, value)` on the
/// abstract machine (either engine — the dispatcher uses only the
/// Table 1 interface, which is engine-independent).
///
/// # Errors
///
/// Returns a message if the thread is not suspended with an exception
/// request or a Table 1 operation is rejected.
pub fn dispatch_sem<'p, M: SemEngine<'p>>(t: &mut Thread<'p, M>) -> Result<Dispatch, String> {
    let args = t.yield_args();
    if args.len() < 3 {
        return Err("exception yield needs (code, tag, value)".into());
    }
    let tag = args[1].bits().ok_or("tag must be a bits value")?;
    let value = args[2].clone();

    let Some(mut a) = t.first_activation() else {
        return Err("thread has no activations".into());
    };
    loop {
        if let Some(d) = t.get_descriptor(&a, 0) {
            let count = t.read_u32(d) as u64;
            for i in 0..count {
                let entry = d + 4 + i * 12;
                let exn_tag = u64::from(t.read_u32(entry));
                let cont_num = t.read_u32(entry + 4) as usize;
                let takes_arg = t.read_u32(entry + 8) != 0;
                if exn_tag == tag {
                    t.set_activation(&a).map_err(|e| e.to_string())?;
                    t.set_unwind_cont(cont_num).map_err(|e| e.to_string())?;
                    if takes_arg {
                        *t.find_cont_param(0).ok_or("missing parameter slot")? = value;
                    }
                    t.resume().map_err(|e| e.to_string())?;
                    return Ok(Dispatch::Handled);
                }
            }
        }
        if !t.next_activation(&mut a) {
            return Ok(Dispatch::Unhandled { tag });
        }
    }
}

/// Dispatches the pending exception on the simulated target. Identical
/// logic to [`dispatch_sem`], over the VM's deposited tables.
///
/// # Errors
///
/// Returns a message if the thread is not suspended with an exception
/// request or an interface operation is rejected.
pub fn dispatch_vm<S: TraceSink>(t: &mut VmThread<'_, S>) -> Result<Dispatch, String> {
    let args = t.machine.yield_args(3);
    let tag = args[1];
    let value = args[2];

    let Some(mut a) = t.first_activation() else {
        return Err("thread has no activations".into());
    };
    loop {
        if let Some(d) = t.get_descriptor(&a, 0) {
            let count = t.machine.mem.read32(d);
            for i in 0..count {
                let entry = d + 4 + i * 12;
                let exn_tag = u64::from(t.machine.mem.read32(entry));
                let cont_num = t.machine.mem.read32(entry + 4) as usize;
                let takes_arg = t.machine.mem.read32(entry + 8) != 0;
                if exn_tag == tag {
                    t.set_activation(&a)?;
                    t.set_unwind_cont(cont_num)?;
                    if takes_arg {
                        *t.find_cont_param(0).ok_or("missing parameter slot")? = value;
                    }
                    t.resume()?;
                    return Ok(Dispatch::Handled);
                }
            }
        }
        if !t.next_activation(&mut a) {
            return Ok(Dispatch::Unhandled { tag });
        }
    }
}

/// Helper used by drivers: a `Value` for dispatch results.
pub fn value_of(v: u64) -> Value {
    Value::b32(v as u32)
}
