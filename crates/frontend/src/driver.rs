//! Drivers: compile, link, and run MiniM3 programs on either execution
//! substrate, with the front-end run-time system in the loop.
//!
//! Each substrate has two interchangeable engines — the reference step
//! loop and the pre-decoded/pre-resolved fast path — selected by the
//! `run_*` entry point. The engines are observationally equal (enforced
//! by the difftest equivalence suite), so which one a driver picks is
//! purely a speed decision.

use crate::dispatch::{dispatch_sem, dispatch_vm, Dispatch};
use crate::lower::{Strategy, ENTRY};
use crate::M3_EXCEPTION;
use cmm_cfg::build_program;
use cmm_ir::Module;
use cmm_obs::{RecordingSink, TimedEvent, TraceSink};
use cmm_opt::{optimize_program, OptOptions};
use cmm_rt::Thread;
use cmm_sem::{Machine, ResolvedProgram, SemEngine, Status, Value};
use cmm_vm::{compile, Cost, VmStatus, VmThread};
use std::fmt;

/// An error from compiling or running a MiniM3 program.
#[derive(Clone, PartialEq, Debug)]
pub enum M3Error {
    /// Front-end error (syntax or semantic).
    Lower(String),
    /// The generated C-- failed to translate (a front-end bug).
    Build(String),
    /// Code generation for the VM failed.
    Codegen(String),
    /// An exception propagated out of `main`.
    Uncaught {
        /// The exception's name, recovered from its tag block.
        exception: String,
    },
    /// The abstract machine went wrong or the VM faulted.
    Fault(String),
    /// The program ran too long.
    OutOfFuel,
}

impl fmt::Display for M3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            M3Error::Lower(m) => write!(f, "front-end error: {m}"),
            M3Error::Build(m) => write!(f, "C-- translation error: {m}"),
            M3Error::Codegen(m) => write!(f, "code generation error: {m}"),
            M3Error::Uncaught { exception } => write!(f, "uncaught exception {exception}"),
            M3Error::Fault(m) => write!(f, "run-time fault: {m}"),
            M3Error::OutOfFuel => write!(f, "program ran out of fuel"),
        }
    }
}

impl std::error::Error for M3Error {}

const FUEL: u64 = 500_000_000;

/// Which VM execution tier a driver run uses. The tiers are
/// observationally equal (enforced by the difftest equivalence suite),
/// so which one a caller picks is purely a speed decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum VmEngine {
    /// The reference step loop.
    #[default]
    Stepped,
    /// The pre-decoded flat dispatch loop ([`cmm_vm::DecodedCode`]).
    Decoded,
    /// The fused superinstruction loop ([`cmm_vm::FusedCode`]).
    Fused,
}

impl VmEngine {
    /// The engine's display label (matches the difftest oracle names).
    pub fn label(self) -> &'static str {
        match self {
            VmEngine::Stepped => "vm",
            VmEngine::Decoded => "vm-decoded",
            VmEngine::Fused => "vm-fused",
        }
    }
}

/// Recovers an exception's source name from its tag (the address of its
/// `exn$NAME` block).
fn exception_name(image: &cmm_cfg::DataImage, tag: u64) -> String {
    image
        .symbols
        .iter()
        .find(|(n, &a)| a == tag && n.as_str().starts_with("exn$"))
        .map(|(n, _)| n.as_str()["exn$".len()..].to_string())
        .unwrap_or_else(|| format!("<tag {tag:#x}>"))
}

/// Runs a compiled MiniM3 module on the abstract machine (`cmm-sem`),
/// with the Figure 9 dispatcher as the front-end run-time system.
/// Returns `main`'s value.
///
/// # Errors
///
/// Returns [`M3Error::Uncaught`] if an exception escapes `main`, and
/// [`M3Error::Fault`] if the program goes wrong.
pub fn run_sem(module: &Module, strategy: Strategy, args: &[u32]) -> Result<u32, M3Error> {
    let prog = build_program(module).map_err(|e| M3Error::Build(e.to_string()))?;
    run_sem_thread(&mut Thread::new(&prog), strategy, args)
}

/// [`run_sem`] over the pre-resolved engine
/// ([`cmm_sem::ResolvedMachine`]) instead of the reference step loop.
///
/// # Errors
///
/// As [`run_sem`].
pub fn run_sem_resolved(module: &Module, strategy: Strategy, args: &[u32]) -> Result<u32, M3Error> {
    let prog = build_program(module).map_err(|e| M3Error::Build(e.to_string()))?;
    let rp = ResolvedProgram::new(&prog);
    run_sem_thread(&mut Thread::new_resolved(&rp), strategy, args)
}

/// A traced driver run: compilation errors in the outer `Result`, the
/// run's outcome paired with its recorded event stream in the inner.
pub type Traced<T> = Result<(Result<T, M3Error>, Vec<TimedEvent>), M3Error>;

/// [`run_sem`] with a recording sink in the loop: alongside the run's
/// outcome it returns the full exception-flow event stream, including
/// the Table 1 operations the Figure 9 dispatcher issued. The stream is
/// returned even when the run fails — a failing run's trace is usually
/// the interesting one.
///
/// # Errors
///
/// Only compilation failures abort the trace; run-time failures are in
/// the inner `Result`.
pub fn run_sem_traced(module: &Module, strategy: Strategy, args: &[u32]) -> Traced<u32> {
    let prog = build_program(module).map_err(|e| M3Error::Build(e.to_string()))?;
    let mut t = Thread::over(Machine::with_sink(&prog, RecordingSink::default()));
    let r = run_sem_thread(&mut t, strategy, args);
    Ok((r, t.into_machine().into_sink().events))
}

/// The run/dispatch loop, engine-independent: drives an already
/// constructed [`Thread`] (over any machine, any sink) with the
/// Figure 9 dispatcher in the loop. Public so callers holding cached
/// artifacts — e.g. `cmm-pool`'s batch executor, whose compilation
/// cache memoizes the built [`cmm_cfg::Program`] — can run them
/// without recompiling.
///
/// # Errors
///
/// As [`run_sem`].
pub fn run_sem_thread<'p, M: SemEngine<'p>>(
    t: &mut Thread<'p, M>,
    strategy: Strategy,
    args: &[u32],
) -> Result<u32, M3Error> {
    let image = &t.machine().program().image;
    t.start(ENTRY, args.iter().map(|&a| Value::b32(a)).collect())
        .map_err(|e| M3Error::Fault(e.to_string()))?;
    loop {
        match t.run(FUEL) {
            Status::Terminated(vals) => {
                let status = vals.first().and_then(Value::bits).unwrap_or(0);
                let value = vals.get(1).and_then(Value::bits).unwrap_or(0) as u32;
                if status == 0 {
                    return Ok(value);
                }
                return Err(M3Error::Uncaught {
                    exception: exception_name(image, u64::from(value)),
                });
            }
            Status::Suspended => {
                let code = t.yield_code().unwrap_or(0);
                if code == M3_EXCEPTION && matches!(strategy, Strategy::RuntimeUnwind) {
                    match dispatch_sem(t).map_err(M3Error::Fault)? {
                        Dispatch::Handled => continue,
                        Dispatch::Unhandled { tag } => {
                            return Err(M3Error::Uncaught {
                                exception: exception_name(image, tag),
                            });
                        }
                    }
                }
                return Err(M3Error::Fault(format!("unexpected yield (code {code})")));
            }
            Status::Wrong(w) => return Err(M3Error::Fault(w.to_string())),
            Status::OutOfFuel => return Err(M3Error::OutOfFuel),
            other => return Err(M3Error::Fault(format!("unexpected status {other:?}"))),
        }
    }
}

/// Runs a compiled MiniM3 module on the simulated target (`cmm-vm`)
/// after optimization, returning `main`'s value and the exact cost.
///
/// # Errors
///
/// As [`run_sem`], plus code-generation errors.
pub fn run_vm(module: &Module, strategy: Strategy, args: &[u32]) -> Result<(u32, Cost), M3Error> {
    run_vm_impl(
        module,
        strategy,
        args,
        &OptOptions::default(),
        VmEngine::Stepped,
    )
}

/// [`run_vm`] with explicit optimization options (used by the benches to
/// compare optimization levels).
///
/// # Errors
///
/// As [`run_vm`].
pub fn run_vm_with(
    module: &Module,
    strategy: Strategy,
    args: &[u32],
    opts: &OptOptions,
) -> Result<(u32, Cost), M3Error> {
    run_vm_impl(module, strategy, args, opts, VmEngine::Stepped)
}

/// [`run_vm`] over the pre-decoded engine ([`cmm_vm::DecodedCode`])
/// instead of the reference step loop.
///
/// # Errors
///
/// As [`run_vm`].
pub fn run_vm_decoded(
    module: &Module,
    strategy: Strategy,
    args: &[u32],
) -> Result<(u32, Cost), M3Error> {
    run_vm_impl(
        module,
        strategy,
        args,
        &OptOptions::default(),
        VmEngine::Decoded,
    )
}

/// [`run_vm_with`] over the pre-decoded engine.
///
/// # Errors
///
/// As [`run_vm`].
pub fn run_vm_decoded_with(
    module: &Module,
    strategy: Strategy,
    args: &[u32],
    opts: &OptOptions,
) -> Result<(u32, Cost), M3Error> {
    run_vm_impl(module, strategy, args, opts, VmEngine::Decoded)
}

/// [`run_vm`] over the fused superinstruction engine
/// ([`cmm_vm::FusedCode`]).
///
/// # Errors
///
/// As [`run_vm`].
pub fn run_vm_fused(
    module: &Module,
    strategy: Strategy,
    args: &[u32],
) -> Result<(u32, Cost), M3Error> {
    run_vm_impl(
        module,
        strategy,
        args,
        &OptOptions::default(),
        VmEngine::Fused,
    )
}

/// [`run_vm_with`] over the fused engine.
///
/// # Errors
///
/// As [`run_vm`].
pub fn run_vm_fused_with(
    module: &Module,
    strategy: Strategy,
    args: &[u32],
    opts: &OptOptions,
) -> Result<(u32, Cost), M3Error> {
    run_vm_impl(module, strategy, args, opts, VmEngine::Fused)
}

fn run_vm_impl(
    module: &Module,
    strategy: Strategy,
    args: &[u32],
    opts: &OptOptions,
    engine: VmEngine,
) -> Result<(u32, Cost), M3Error> {
    let mut prog = build_program(module).map_err(|e| M3Error::Build(e.to_string()))?;
    optimize_program(&mut prog, opts);
    let vp = compile(&prog).map_err(|e| M3Error::Codegen(e.to_string()))?;
    let mut t = match engine {
        VmEngine::Stepped => VmThread::new(&vp),
        VmEngine::Decoded => VmThread::new_decoded(&vp),
        VmEngine::Fused => VmThread::new_fused(&vp),
    };
    run_vm_thread(&mut t, &vp.image, strategy, args)
}

/// [`run_vm`] with a recording sink in the loop; the counterpart of
/// [`run_sem_traced`] on the simulated target. Timestamps are cost-model
/// totals rather than transition counts.
///
/// # Errors
///
/// As [`run_sem_traced`].
pub fn run_vm_traced(
    module: &Module,
    strategy: Strategy,
    args: &[u32],
    opts: &OptOptions,
    engine: VmEngine,
) -> Traced<(u32, Cost)> {
    let mut prog = build_program(module).map_err(|e| M3Error::Build(e.to_string()))?;
    optimize_program(&mut prog, opts);
    let vp = compile(&prog).map_err(|e| M3Error::Codegen(e.to_string()))?;
    let mut t = match engine {
        VmEngine::Stepped => VmThread::with_sink(&vp, RecordingSink::default()),
        VmEngine::Decoded => VmThread::with_sink_decoded(&vp, RecordingSink::default()),
        VmEngine::Fused => VmThread::with_sink_fused(&vp, RecordingSink::default()),
    };
    let r = run_vm_thread(&mut t, &vp.image, strategy, args);
    Ok((r, t.machine.into_sink().events))
}

/// The run/dispatch loop on the simulated target, sink-independent:
/// the [`run_sem_thread`] counterpart for callers holding a cached
/// [`cmm_vm::VmProgram`] (and possibly a shared pre-decoded stream).
///
/// # Errors
///
/// As [`run_vm`].
pub fn run_vm_thread<S: TraceSink>(
    t: &mut VmThread<'_, S>,
    image: &cmm_cfg::DataImage,
    strategy: Strategy,
    args: &[u32],
) -> Result<(u32, Cost), M3Error> {
    let vargs: Vec<u64> = args.iter().map(|&a| u64::from(a)).collect();
    t.start(ENTRY, &vargs, 2);
    loop {
        match t.run(FUEL) {
            VmStatus::Halted(vals) => {
                let status = vals.first().copied().unwrap_or(0);
                let value = vals.get(1).copied().unwrap_or(0) as u32;
                if status == 0 {
                    return Ok((value, t.machine.cost));
                }
                return Err(M3Error::Uncaught {
                    exception: exception_name(image, u64::from(value)),
                });
            }
            VmStatus::Suspended => {
                let code = t.machine.yield_args(1)[0];
                if code == M3_EXCEPTION && matches!(strategy, Strategy::RuntimeUnwind) {
                    match dispatch_vm(t).map_err(M3Error::Fault)? {
                        Dispatch::Handled => continue,
                        Dispatch::Unhandled { tag } => {
                            return Err(M3Error::Uncaught {
                                exception: exception_name(image, tag),
                            });
                        }
                    }
                }
                return Err(M3Error::Fault(format!("unexpected yield (code {code})")));
            }
            VmStatus::Error(e) => return Err(M3Error::Fault(e)),
            VmStatus::OutOfFuel => return Err(M3Error::OutOfFuel),
            other => return Err(M3Error::Fault(format!("unexpected status {other:?}"))),
        }
    }
}
