//! The C-- lexer.
//!
//! Comments are C-style (`/* ... */`, non-nesting) and line comments
//! (`// ...`). Identifiers may contain letters, digits, `_`, `$`, and `.`
//! (after the first character), and may begin with `%` or `%%` for
//! primitive names. Integer literals are decimal or hexadecimal
//! (`0x...`), optionally suffixed `::bitsN`; float literals have a decimal
//! point and an optional `::floatN` suffix (default `float64`).

use crate::error::ParseError;
use crate::token::{Pos, Tok, Token};

/// Lexes a complete source text into tokens (ending with [`Tok::Eof`]).
///
/// # Errors
///
/// Returns a [`ParseError`] for unterminated comments or strings, bad
/// escapes, malformed numbers, or characters outside the language.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer {
        chars: src.chars().collect(),
        at: 0,
        pos: Pos::start(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    at: usize,
    pos: Pos,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.at).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.at + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.at += 1;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, msg)
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos;
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = match c {
                '(' => self.single(Tok::LParen),
                ')' => self.single(Tok::RParen),
                '{' => self.single(Tok::LBrace),
                '}' => self.single(Tok::RBrace),
                '[' => self.single(Tok::LBracket),
                ']' => self.single(Tok::RBracket),
                ',' => self.single(Tok::Comma),
                ';' => self.single(Tok::Semi),
                ':' => self.single(Tok::Colon),
                '+' => self.single(Tok::Plus),
                '-' => self.single(Tok::Minus),
                '*' => self.single(Tok::Star),
                '/' => self.single(Tok::Slash),
                '&' => self.single(Tok::Amp),
                '|' => self.single(Tok::Pipe),
                '^' => self.single(Tok::Caret),
                '~' => self.single(Tok::Tilde),
                '=' => self.one_or_two('=', Tok::Assign, Tok::EqEq),
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::NotEq
                    } else {
                        return Err(self.error("expected `!=`"));
                    }
                }
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            Tok::Le
                        }
                        Some('<') => {
                            self.bump();
                            Tok::Shl
                        }
                        _ => Tok::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            Tok::Ge
                        }
                        Some('>') => {
                            self.bump();
                            Tok::Shr
                        }
                        _ => Tok::Gt,
                    }
                }
                '"' => self.string()?,
                '%' => self.percent(),
                c if c.is_ascii_digit() => self.number()?,
                c if is_ident_start(c) => self.ident(),
                other => return Err(self.error(format!("unexpected character {other:?}"))),
            };
            out.push(Token { tok, pos });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some('*') if self.peek2() == Some('/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => return Err(ParseError::new(start, "unterminated comment")),
                        }
                    }
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn single(&mut self, tok: Tok) -> Tok {
        self.bump();
        tok
    }

    fn one_or_two(&mut self, second: char, one: Tok, two: Tok) -> Tok {
        self.bump();
        if self.peek() == Some(second) {
            self.bump();
            two
        } else {
            one
        }
    }

    fn string(&mut self) -> Result<Tok, ParseError> {
        let start = self.pos;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Tok::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('0') => s.push('\0'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    other => {
                        return Err(self.error(format!("bad string escape {other:?}")));
                    }
                },
                Some(c) => s.push(c),
                None => return Err(ParseError::new(start, "unterminated string literal")),
            }
        }
    }

    /// `%` begins either the modulus operator or a primitive name like
    /// `%divu` / `%%divu`.
    fn percent(&mut self) -> Tok {
        self.bump();
        let mut name = String::from("%");
        if self.peek() == Some('%') {
            self.bump();
            name.push('%');
        }
        if self.peek().map(is_ident_start).unwrap_or(false) {
            while let Some(c) = self.peek() {
                if is_ident_continue(c) {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            Tok::Ident(name)
        } else if name == "%" {
            Tok::Percent
        } else {
            // `%%` not followed by a name: treat as two moduli; the parser
            // will reject it with a sensible message.
            Tok::Percent
        }
    }

    fn number(&mut self) -> Result<Tok, ParseError> {
        let mut text = String::new();
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() || c == '_' {
                    if c != '_' {
                        text.push(c);
                    }
                    self.bump();
                } else {
                    break;
                }
            }
            let v = u64::from_str_radix(&text, 16)
                .map_err(|_| self.error("malformed hexadecimal literal"))?;
            let suffix = self.suffix()?;
            return Ok(match suffix {
                Some(("bits", w)) => Tok::Int(v, Some(w)),
                Some(("float", _)) => return Err(self.error("hex literal with float suffix")),
                _ => Tok::Int(v, None),
            });
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        let is_float =
            self.peek() == Some('.') && self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false);
        if is_float {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            if matches!(self.peek(), Some('e') | Some('E')) {
                text.push('e');
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    text.push(self.bump().unwrap());
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            let v: f64 = text
                .parse()
                .map_err(|_| self.error("malformed float literal"))?;
            let width = match self.suffix()? {
                Some(("float", w)) => w,
                Some(_) => return Err(self.error("float literal with bits suffix")),
                None => 64,
            };
            return Ok(Tok::Float(v, width));
        }
        let v: u64 = text
            .parse()
            .map_err(|_| self.error("malformed integer literal"))?;
        Ok(match self.suffix()? {
            Some(("bits", w)) => Tok::Int(v, Some(w)),
            Some(("float", w)) => Tok::Float(v as f64, w),
            _ => Tok::Int(v, None),
        })
    }

    /// Parses an optional `::bitsN` / `::floatN` suffix.
    fn suffix(&mut self) -> Result<Option<(&'static str, u32)>, ParseError> {
        if self.peek() != Some(':') || self.peek2() != Some(':') {
            return Ok(None);
        }
        self.bump();
        self.bump();
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if let Some(rest) = name.strip_prefix("bits") {
            let w: u32 = rest.parse().map_err(|_| self.error("bad bits suffix"))?;
            if ![8, 16, 32, 64].contains(&w) {
                return Err(self.error(format!("unsupported width bits{w}")));
            }
            Ok(Some(("bits", w)))
        } else if let Some(rest) = name.strip_prefix("float") {
            let w: u32 = rest.parse().map_err(|_| self.error("bad float suffix"))?;
            if ![32, 64].contains(&w) {
                return Err(self.error(format!("unsupported width float{w}")));
            }
            Ok(Some(("float", w)))
        } else {
            Err(self.error(format!("unknown literal suffix ::{name}")))
        }
    }

    fn ident(&mut self) -> Tok {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Tok::Ident(s)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '$'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_punctuation_and_operators() {
        assert_eq!(
            toks("( ) { } [ ] , ; : = == != < <= > >= << >> + - * / % & | ^ ~"),
            vec![
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::LBracket,
                Tok::RBracket,
                Tok::Comma,
                Tok::Semi,
                Tok::Colon,
                Tok::Assign,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::Amp,
                Tok::Pipe,
                Tok::Caret,
                Tok::Tilde,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42, None), Tok::Eof]);
        assert_eq!(toks("0xff"), vec![Tok::Int(255, None), Tok::Eof]);
        assert_eq!(toks("7::bits8"), vec![Tok::Int(7, Some(8)), Tok::Eof]);
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5, 64), Tok::Eof]);
        assert_eq!(toks("1.5::float32"), vec![Tok::Float(1.5, 32), Tok::Eof]);
        assert_eq!(toks("2.5e2"), vec![Tok::Float(250.0, 64), Tok::Eof]);
    }

    #[test]
    fn lexes_primitive_names() {
        assert_eq!(toks("%divu"), vec![Tok::Ident("%divu".into()), Tok::Eof]);
        assert_eq!(toks("%%divu"), vec![Tok::Ident("%%divu".into()), Tok::Eof]);
        assert_eq!(
            toks("a % b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Percent,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks(r#""off board""#),
            vec![Tok::Str("off board".into()), Tok::Eof]
        );
        assert_eq!(
            toks(r#""a\nb\"c""#),
            vec![Tok::Str("a\nb\"c".into()), Tok::Eof]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("a /* comment \n more */ b // line\nc"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn ident_chars() {
        assert_eq!(
            toks("sp2_help"),
            vec![Tok::Ident("sp2_help".into()), Tok::Eof]
        );
        assert_eq!(toks("str$0"), vec![Tok::Ident("str$0".into()), Tok::Eof]);
    }
}
