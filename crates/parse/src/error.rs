//! Parse errors.

use crate::token::Pos;
use std::fmt;

/// An error produced by the lexer or parser.
///
/// Carries the source position and a human-readable message, e.g.
/// `3:17: expected `;` after statement, found `}``.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Where the error occurred.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates an error at a position.
    pub fn new(pos: Pos, message: impl Into<String>) -> ParseError {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(Pos { line: 3, col: 17 }, "unexpected `}`");
        assert_eq!(e.to_string(), "3:17: unexpected `}`");
    }
}
