//! The recursive-descent parser.

use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Pos, Tok, Token};
use cmm_ir::{
    Annotations, BinOp, BodyItem, DataBlock, DataItem, Decl, Expr, GlobalReg, Lit, Lvalue, Module,
    Name, Proc, Stmt, Ty, UnOp, Width,
};

/// Parses a complete C-- module.
///
/// String literals appearing in expression position are hoisted into
/// anonymous `data` blocks named `str$0`, `str$1`, ... which are appended
/// to the module.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its position.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut p = Parser::new(src)?;
    let mut m = Module::new();
    while !p.at(&Tok::Eof) {
        let d = p.decl()?;
        m.decls.push(d);
    }
    for b in p.hoisted.drain(..) {
        m.decls.push(Decl::Data(b));
    }
    Ok(m)
}

/// Parses a single procedure definition.
///
/// # Errors
///
/// Fails on syntax errors, if the source does not contain exactly a
/// procedure, or if the procedure uses string literals (which require
/// module-level hoisting; use [`parse_module`]).
pub fn parse_proc(src: &str) -> Result<Proc, ParseError> {
    let mut p = Parser::new(src)?;
    let d = p.decl()?;
    if !p.at(&Tok::Eof) {
        return Err(p.err("expected end of input after procedure"));
    }
    if !p.hoisted.is_empty() {
        return Err(p.err("string literals require parse_module"));
    }
    match d {
        Decl::Proc(proc) => Ok(proc),
        _ => Err(ParseError::new(
            Pos::start(),
            "expected a procedure definition",
        )),
    }
}

/// Parses a single expression.
///
/// # Errors
///
/// Fails on syntax errors or string literals.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    if !p.at(&Tok::Eof) {
        return Err(p.err("expected end of input after expression"));
    }
    if !p.hoisted.is_empty() {
        return Err(p.err("string literals require parse_module"));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    at: usize,
    hoisted: Vec<DataBlock>,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            at: 0,
            hoisted: Vec::new(),
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.at + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t} {what}, found {}", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos(), msg)
    }

    /// True if the current token is the given contextual keyword.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<Name, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(Name::from(s))
            }
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    fn name_list(&mut self) -> Result<Vec<Name>, ParseError> {
        let mut out = vec![self.ident("a name")?];
        while self.eat(&Tok::Comma) {
            out.push(self.ident("a name")?);
        }
        Ok(out)
    }

    /// The current token as a type name, without consuming it.
    fn peek_ty(&self) -> Option<Ty> {
        match self.peek() {
            Tok::Ident(s) => Ty::parse_name(s),
            _ => None,
        }
    }

    fn ty(&mut self) -> Result<Ty, ParseError> {
        match self.peek_ty() {
            Some(ty) => {
                self.bump();
                Ok(ty)
            }
            None => Err(self.err(format!("expected a type, found {}", self.peek()))),
        }
    }

    // ----- declarations -----

    fn decl(&mut self) -> Result<Decl, ParseError> {
        if self.eat_kw("import") {
            let ns = self.name_list()?;
            self.expect(&Tok::Semi, "after import")?;
            return Ok(Decl::Import(ns));
        }
        if self.at_kw("export") {
            // `export` may introduce an export list, an exported data
            // block, or an exported procedure.
            if let Tok::Ident(next) = self.peek2() {
                if next == "data" {
                    self.bump();
                    self.bump();
                    let mut b = self.data_block()?;
                    b.exported = true;
                    return Ok(Decl::Data(b));
                }
            }
            // Lookahead: export NAME ( → exported procedure.
            let is_proc = matches!(self.peek2(), Tok::Ident(_))
                && self
                    .toks
                    .get(self.at + 2)
                    .map(|t| t.tok == Tok::LParen)
                    .unwrap_or(false);
            self.bump();
            if is_proc {
                let mut p = self.proc()?;
                p.exported = true;
                return Ok(Decl::Proc(p));
            }
            let ns = self.name_list()?;
            self.expect(&Tok::Semi, "after export")?;
            return Ok(Decl::Export(ns));
        }
        if self.eat_kw("register") {
            let ty = self.ty()?;
            let name = self.ident("a register name")?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.lit(ty)?)
            } else {
                None
            };
            self.expect(&Tok::Semi, "after register declaration")?;
            return Ok(Decl::Register(GlobalReg { name, ty, init }));
        }
        if self.eat_kw("data") {
            return Ok(Decl::Data(self.data_block()?));
        }
        if matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::LParen {
            return Ok(Decl::Proc(self.proc()?));
        }
        Err(self.err(format!("expected a declaration, found {}", self.peek())))
    }

    fn lit(&mut self, ty: Ty) -> Result<Lit, ParseError> {
        match self.bump() {
            Tok::Int(v, None) => match ty {
                Ty::Bits(w) => Ok(Lit::bits(w, v)),
                Ty::Float(_) => Err(self.err("integer literal for float type")),
            },
            Tok::Int(v, Some(w)) => {
                let w = Width::from_bits(w).ok_or_else(|| self.err("bad width"))?;
                Ok(Lit::bits(w, v))
            }
            Tok::Float(v, 32) => Ok(Lit::f32(v as f32)),
            Tok::Float(v, _) => Ok(Lit::f64(v)),
            Tok::Minus => {
                let l = self.lit(ty)?;
                match l.ty {
                    Ty::Bits(w) => Ok(Lit::bits(w, l.bits.wrapping_neg())),
                    Ty::Float(_) => Ok(Lit::f64(-l.as_f64())),
                }
            }
            other => Err(self.err(format!("expected a literal, found {other}"))),
        }
    }

    fn data_block(&mut self) -> Result<DataBlock, ParseError> {
        let name = self.ident("a data block name")?;
        self.expect(&Tok::LBrace, "to open data block")?;
        let mut items = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.eat_kw("sym") {
                items.push(DataItem::SymRef(self.ident("a symbol name")?));
                self.expect(&Tok::Semi, "after data item")?;
            } else if self.eat_kw("space") {
                match self.bump() {
                    Tok::Int(n, _) => items.push(DataItem::Space(n)),
                    other => return Err(self.err(format!("expected a size, found {other}"))),
                }
                self.expect(&Tok::Semi, "after data item")?;
            } else if self.eat_kw("string") {
                match self.bump() {
                    Tok::Str(s) => items.push(DataItem::Str(s)),
                    other => return Err(self.err(format!("expected a string, found {other}"))),
                }
                self.expect(&Tok::Semi, "after data item")?;
            } else if self.peek_ty().is_some() {
                let ty = self.ty()?;
                let mut lits = vec![self.lit(ty)?];
                while self.eat(&Tok::Comma) {
                    lits.push(self.lit(ty)?);
                }
                self.expect(&Tok::Semi, "after data item")?;
                items.push(DataItem::Words(ty, lits));
            } else {
                return Err(self.err(format!("expected a data item, found {}", self.peek())));
            }
        }
        Ok(DataBlock::new(name, items))
    }

    fn proc(&mut self) -> Result<Proc, ParseError> {
        let name = self.ident("a procedure name")?;
        self.expect(&Tok::LParen, "to open formals")?;
        let mut proc = Proc::new(name);
        if !self.at(&Tok::RParen) {
            loop {
                let ty = self.ty()?;
                let n = self.ident("a parameter name")?;
                proc.formals.push((n, ty));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "to close formals")?;
        self.expect(&Tok::LBrace, "to open procedure body")?;
        let (body, locals) = self.body()?;
        proc.body = body;
        proc.locals = locals;
        Ok(proc)
    }

    // ----- statements -----

    /// Parses body items up to and including the closing `}`.
    ///
    /// Local declarations (`bits32 s, p;`) may appear anywhere in the
    /// sequence; they are collected and returned separately.
    #[allow(clippy::type_complexity)]
    fn body(&mut self) -> Result<(Vec<BodyItem>, Vec<(Name, Ty)>), ParseError> {
        let mut items = Vec::new();
        let mut locals = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return Err(self.err("unexpected end of input inside a body"));
            }
            self.body_item(&mut items, &mut locals)?;
        }
        Ok((items, locals))
    }

    fn body_item(
        &mut self,
        items: &mut Vec<BodyItem>,
        locals: &mut Vec<(Name, Ty)>,
    ) -> Result<(), ParseError> {
        // Local declaration: TYPE NAME (not TYPE `[`).
        if self.peek_ty().is_some() && matches!(self.peek2(), Tok::Ident(_)) {
            let ty = self.ty()?;
            for n in self.name_list()? {
                locals.push((n, ty));
            }
            self.expect(&Tok::Semi, "after local declaration")?;
            return Ok(());
        }
        if self.eat_kw("if") {
            let cond = self.expr()?;
            self.expect(&Tok::LBrace, "to open the then-branch")?;
            let (then_, mut ls) = self.body()?;
            locals.append(&mut ls);
            let else_ = if self.eat_kw("else") {
                if self.at_kw("if") {
                    // `else if` chains.
                    let mut chain = Vec::new();
                    self.body_item(&mut chain, locals)?;
                    chain
                } else {
                    self.expect(&Tok::LBrace, "to open the else-branch")?;
                    let (e, mut ls) = self.body()?;
                    locals.append(&mut ls);
                    e
                }
            } else {
                Vec::new()
            };
            items.push(BodyItem::Stmt(Stmt::If { cond, then_, else_ }));
            return Ok(());
        }
        if self.eat_kw("goto") {
            let target = self.ident("a label")?;
            self.expect(&Tok::Semi, "after goto")?;
            items.push(BodyItem::Stmt(Stmt::Goto { target }));
            return Ok(());
        }
        if self.eat_kw("jump") {
            let callee = self.callee()?;
            let args = self.paren_exprs()?;
            self.expect(&Tok::Semi, "after jump")?;
            items.push(BodyItem::Stmt(Stmt::Jump { callee, args }));
            return Ok(());
        }
        if self.eat_kw("return") {
            let alt = if self.eat(&Tok::Lt) {
                let index = self.small_int()?;
                self.expect(&Tok::Slash, "in return <i/n>")?;
                let count = self.small_int()?;
                self.expect(&Tok::Gt, "in return <i/n>")?;
                Some(cmm_ir::AltReturn { index, count })
            } else {
                None
            };
            let args = if self.at(&Tok::LParen) {
                self.paren_exprs()?
            } else {
                Vec::new()
            };
            self.expect(&Tok::Semi, "after return")?;
            items.push(BodyItem::Stmt(Stmt::Return { alt, args }));
            return Ok(());
        }
        if self.at_kw("cut") {
            self.bump();
            self.expect_kw("to")?;
            let cont = self.callee()?;
            let args = self.paren_exprs()?;
            let anns = self.annotations()?;
            self.expect(&Tok::Semi, "after cut to")?;
            items.push(BodyItem::Stmt(Stmt::CutTo { cont, args, anns }));
            return Ok(());
        }
        if self.at_kw("yield") && self.peek2() == &Tok::LParen {
            self.bump();
            let args = self.paren_exprs()?;
            let anns = self.annotations()?;
            self.expect(&Tok::Semi, "after yield")?;
            items.push(BodyItem::Stmt(Stmt::Yield { args, anns }));
            return Ok(());
        }
        if self.eat_kw("continuation") {
            let name = self.ident("a continuation name")?;
            self.expect(&Tok::LParen, "to open continuation parameters")?;
            let params = if self.at(&Tok::RParen) {
                Vec::new()
            } else {
                self.name_list()?
            };
            self.expect(&Tok::RParen, "to close continuation parameters")?;
            self.expect(&Tok::Colon, "after continuation header")?;
            items.push(BodyItem::Continuation { name, params });
            return Ok(());
        }
        // Label: NAME `:`
        if matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::Colon {
            let l = self.ident("a label")?;
            self.bump(); // colon
            items.push(BodyItem::Label(l));
            return Ok(());
        }
        // Call without results: NAME `(` or computed callee.
        if matches!(self.peek(), Tok::Ident(s) if Ty::parse_name(s).is_none())
            && self.peek2() == &Tok::LParen
        {
            let callee = self.callee()?;
            let args = self.paren_exprs()?;
            let anns = self.annotations()?;
            self.expect(&Tok::Semi, "after call")?;
            items.push(BodyItem::Stmt(Stmt::Call {
                results: Vec::new(),
                callee,
                args,
                anns,
            }));
            return Ok(());
        }
        // Assignment or call-with-results. The first target may turn out
        // to be a computed callee (`bits32[t](u);`).
        let first_lv = self.lvalue()?;
        if let Lvalue::Mem(ty, addr) = &first_lv {
            if self.at(&Tok::LParen) {
                let callee = Expr::Mem(*ty, Box::new(addr.clone()));
                let args = self.paren_exprs()?;
                let anns = self.annotations()?;
                self.expect(&Tok::Semi, "after call")?;
                items.push(BodyItem::Stmt(Stmt::Call {
                    results: Vec::new(),
                    callee,
                    args,
                    anns,
                }));
                return Ok(());
            }
        }
        let mut lhs = vec![first_lv];
        while self.eat(&Tok::Comma) {
            lhs.push(self.lvalue()?);
        }
        self.expect(&Tok::Assign, "in assignment")?;
        // A checked primitive (`%%divu`) takes the form of a call.
        if matches!(self.peek(), Tok::Ident(s) if s.starts_with("%%"))
            && self.peek2() == &Tok::LParen
        {
            let callee = Expr::Name(self.ident("a primitive")?);
            let mut results = Vec::with_capacity(lhs.len());
            for l in lhs {
                match l {
                    Lvalue::Var(n) => results.push(n),
                    Lvalue::Mem(..) => {
                        return Err(self.err("call results must be assigned to variables"));
                    }
                }
            }
            let args = self.paren_exprs()?;
            let anns = self.annotations()?;
            self.expect(&Tok::Semi, "after call")?;
            items.push(BodyItem::Stmt(Stmt::Call {
                results,
                callee,
                args,
                anns,
            }));
            return Ok(());
        }
        let first = self.expr()?;
        if self.at(&Tok::LParen) {
            // Call with results: all targets must be plain variables.
            let mut results = Vec::with_capacity(lhs.len());
            for l in lhs {
                match l {
                    Lvalue::Var(n) => results.push(n),
                    Lvalue::Mem(..) => {
                        return Err(self.err("call results must be assigned to variables"));
                    }
                }
            }
            let args = self.paren_exprs()?;
            let anns = self.annotations()?;
            self.expect(&Tok::Semi, "after call")?;
            items.push(BodyItem::Stmt(Stmt::Call {
                results,
                callee: first,
                args,
                anns,
            }));
            return Ok(());
        }
        let mut rhs = vec![first];
        while self.eat(&Tok::Comma) {
            rhs.push(self.expr()?);
        }
        if lhs.len() != rhs.len() {
            return Err(self.err(format!(
                "parallel assignment arity mismatch: {} targets, {} values",
                lhs.len(),
                rhs.len()
            )));
        }
        self.expect(&Tok::Semi, "after assignment")?;
        items.push(BodyItem::Stmt(Stmt::Assign { lhs, rhs }));
        Ok(())
    }

    fn small_int(&mut self) -> Result<u32, ParseError> {
        match self.bump() {
            Tok::Int(v, _) if v <= u64::from(u32::MAX) => Ok(v as u32),
            other => Err(self.err(format!("expected a small integer, found {other}"))),
        }
    }

    fn lvalue(&mut self) -> Result<Lvalue, ParseError> {
        if let Some(ty) = self.peek_ty() {
            if self.peek2() == &Tok::LBracket {
                self.bump();
                self.bump();
                let addr = self.expr()?;
                self.expect(&Tok::RBracket, "to close memory reference")?;
                return Ok(Lvalue::Mem(ty, addr));
            }
        }
        Ok(Lvalue::Var(self.ident("an assignment target")?))
    }

    /// A callee: a plain name, or a parenthesized computed expression, or
    /// a memory load `ty[e]`.
    fn callee(&mut self) -> Result<Expr, ParseError> {
        if let Some(ty) = self.peek_ty() {
            if self.peek2() == &Tok::LBracket {
                self.bump();
                self.bump();
                let addr = self.expr()?;
                self.expect(&Tok::RBracket, "to close memory reference")?;
                return Ok(Expr::Mem(ty, Box::new(addr)));
            }
        }
        if self.at(&Tok::LParen) {
            self.bump();
            let e = self.expr()?;
            self.expect(&Tok::RParen, "to close computed callee")?;
            return Ok(e);
        }
        Ok(Expr::Name(self.ident("a callee")?))
    }

    fn paren_exprs(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Tok::LParen, "to open arguments")?;
        let mut out = Vec::new();
        if !self.at(&Tok::RParen) {
            out.push(self.expr()?);
            while self.eat(&Tok::Comma) {
                out.push(self.expr()?);
            }
        }
        self.expect(&Tok::RParen, "to close arguments")?;
        Ok(out)
    }

    fn annotations(&mut self) -> Result<Annotations, ParseError> {
        let mut a = Annotations::none();
        while self.eat_kw("also") {
            if self.eat_kw("cuts") {
                self.expect_kw("to")?;
                a.cuts_to.extend(self.name_list()?);
            } else if self.eat_kw("unwinds") {
                self.expect_kw("to")?;
                a.unwinds_to.extend(self.name_list()?);
            } else if self.eat_kw("returns") {
                self.expect_kw("to")?;
                a.returns_to.extend(self.name_list()?);
            } else if self.eat_kw("aborts") {
                a.aborts = true;
            } else if self.eat_kw("descriptor") {
                a.descriptors.extend(self.name_list()?);
            } else {
                return Err(self.err(format!(
                    "expected `cuts`, `unwinds`, `returns`, `aborts`, or `descriptor` after `also`, found {}",
                    self.peek()
                )));
            }
        }
        Ok(a)
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bin_or()
    }

    fn bin_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bin_xor()?;
        while self.eat(&Tok::Pipe) {
            e = Expr::binary(BinOp::Or, e, self.bin_xor()?);
        }
        Ok(e)
    }

    fn bin_xor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bin_and()?;
        while self.eat(&Tok::Caret) {
            e = Expr::binary(BinOp::Xor, e, self.bin_and()?);
        }
        Ok(e)
    }

    fn bin_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.eat(&Tok::Amp) {
            e = Expr::binary(BinOp::And, e, self.equality()?);
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            if self.eat(&Tok::EqEq) {
                e = Expr::binary(BinOp::Eq, e, self.relational()?);
            } else if self.eat(&Tok::NotEq) {
                e = Expr::binary(BinOp::Ne, e, self.relational()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        loop {
            if self.eat(&Tok::Lt) {
                e = Expr::binary(BinOp::LtU, e, self.shift()?);
            } else if self.eat(&Tok::Le) {
                e = Expr::binary(BinOp::LeU, e, self.shift()?);
            } else if self.eat(&Tok::Gt) {
                e = Expr::binary(BinOp::GtU, e, self.shift()?);
            } else if self.eat(&Tok::Ge) {
                e = Expr::binary(BinOp::GeU, e, self.shift()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            if self.eat(&Tok::Shl) {
                e = Expr::binary(BinOp::Shl, e, self.additive()?);
            } else if self.eat(&Tok::Shr) {
                e = Expr::binary(BinOp::ShrU, e, self.additive()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            if self.eat(&Tok::Plus) {
                e = Expr::binary(BinOp::Add, e, self.multiplicative()?);
            } else if self.eat(&Tok::Minus) {
                e = Expr::binary(BinOp::Sub, e, self.multiplicative()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            if self.eat(&Tok::Star) {
                e = Expr::binary(BinOp::Mul, e, self.unary()?);
            } else if self.eat(&Tok::Slash) {
                e = Expr::binary(BinOp::DivU, e, self.unary()?);
            } else if self.eat(&Tok::Percent) {
                e = Expr::binary(BinOp::ModU, e, self.unary()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            return Ok(Expr::unary(UnOp::Neg, self.unary()?));
        }
        if self.eat(&Tok::Tilde) {
            return Ok(Expr::unary(UnOp::Com, self.unary()?));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v, None) => {
                self.bump();
                Ok(Expr::Lit(Lit::bits(Width::W32, v)))
            }
            Tok::Int(v, Some(w)) => {
                self.bump();
                let w = Width::from_bits(w).expect("lexer validated width");
                Ok(Expr::Lit(Lit::bits(w, v)))
            }
            Tok::Float(v, 32) => {
                self.bump();
                Ok(Expr::Lit(Lit::f32(v as f32)))
            }
            Tok::Float(v, _) => {
                self.bump();
                Ok(Expr::Lit(Lit::f64(v)))
            }
            Tok::Str(s) => {
                self.bump();
                let name = Name::from(format!("str${}", self.hoisted.len()));
                self.hoisted
                    .push(DataBlock::new(name.clone(), vec![DataItem::Str(s)]));
                Ok(Expr::Name(name))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "to close parenthesized expression")?;
                Ok(e)
            }
            Tok::Ident(s) => {
                // Typed memory access: TYPE `[` expr `]`.
                if let Some(ty) = Ty::parse_name(&s) {
                    self.bump();
                    self.expect(&Tok::LBracket, "after type in memory access")?;
                    let addr = self.expr()?;
                    self.expect(&Tok::RBracket, "to close memory access")?;
                    return Ok(Expr::Mem(ty, Box::new(addr)));
                }
                // Primitive application: `%op(args)`.
                if s.starts_with("%%") {
                    return Err(self.err(format!(
                        "checked primitive `{s}` takes the form of a call statement, not an expression"
                    )));
                }
                if s.starts_with('%') {
                    self.bump();
                    let args = self.paren_exprs()?;
                    return self.primitive(&s, args);
                }
                self.bump();
                Ok(Expr::Name(Name::from(s)))
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }

    fn primitive(&mut self, name: &str, args: Vec<Expr>) -> Result<Expr, ParseError> {
        let unary = |args: Vec<Expr>, op: UnOp, this: &Self| -> Result<Expr, ParseError> {
            let [a]: [Expr; 1] = args
                .try_into()
                .map_err(|_| this.err(format!("`{name}` takes 1 argument")))?;
            Ok(Expr::unary(op, a))
        };
        let binary = |args: Vec<Expr>, op: BinOp, this: &Self| -> Result<Expr, ParseError> {
            let [a, b]: [Expr; 2] = args
                .try_into()
                .map_err(|_| this.err(format!("`{name}` takes 2 arguments")))?;
            Ok(Expr::binary(op, a, b))
        };
        if let Some(rest) = name.strip_prefix("%zx") {
            let w = rest.parse().ok().and_then(Width::from_bits);
            if let Some(w) = w {
                return unary(args, UnOp::Zx(w), self);
            }
        }
        if let Some(rest) = name.strip_prefix("%sx") {
            let w = rest.parse().ok().and_then(Width::from_bits);
            if let Some(w) = w {
                return unary(args, UnOp::Sx(w), self);
            }
        }
        if let Some(rest) = name.strip_prefix("%lo") {
            let w = rest.parse().ok().and_then(Width::from_bits);
            if let Some(w) = w {
                return unary(args, UnOp::Lo(w), self);
            }
        }
        match name {
            "%neg" => unary(args, UnOp::Neg, self),
            "%com" => unary(args, UnOp::Com, self),
            "%fneg" => unary(args, UnOp::FNeg, self),
            "%add" => binary(args, BinOp::Add, self),
            "%sub" => binary(args, BinOp::Sub, self),
            "%mul" => binary(args, BinOp::Mul, self),
            "%divu" => binary(args, BinOp::DivU, self),
            "%modu" => binary(args, BinOp::ModU, self),
            "%divs" => binary(args, BinOp::DivS, self),
            "%mods" => binary(args, BinOp::ModS, self),
            "%and" => binary(args, BinOp::And, self),
            "%or" => binary(args, BinOp::Or, self),
            "%xor" => binary(args, BinOp::Xor, self),
            "%shl" => binary(args, BinOp::Shl, self),
            "%shru" => binary(args, BinOp::ShrU, self),
            "%shrs" => binary(args, BinOp::ShrS, self),
            "%lts" => binary(args, BinOp::LtS, self),
            "%les" => binary(args, BinOp::LeS, self),
            "%gts" => binary(args, BinOp::GtS, self),
            "%ges" => binary(args, BinOp::GeS, self),
            "%fadd" => binary(args, BinOp::FAdd, self),
            "%fsub" => binary(args, BinOp::FSub, self),
            "%fmul" => binary(args, BinOp::FMul, self),
            "%fdiv" => binary(args, BinOp::FDiv, self),
            "%feq" => binary(args, BinOp::FEq, self),
            "%flt" => binary(args, BinOp::FLt, self),
            "%fle" => binary(args, BinOp::FLe, self),
            other => Err(self.err(format!("unknown primitive `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_sp1() {
        let m = parse_module(
            r#"
            /* Ordinary recursion */
            export sp1;
            sp1(bits32 n) {
                bits32 s, p;
                if n == 1 {
                    return (1, 1);
                } else {
                    s, p = sp1(n - 1);
                    return (s + n, p * n);
                }
            }
            "#,
        )
        .unwrap();
        let p = m.proc("sp1").unwrap();
        assert_eq!(p.formals, vec![(Name::from("n"), Ty::B32)]);
        assert_eq!(p.locals.len(), 2);
        match &p.body[0] {
            BodyItem::Stmt(Stmt::If { then_, else_, .. }) => {
                assert_eq!(then_.len(), 1);
                assert_eq!(else_.len(), 2);
                match &else_[0] {
                    BodyItem::Stmt(Stmt::Call { results, .. }) => assert_eq!(results.len(), 2),
                    other => panic!("expected call, got {other:?}"),
                }
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure1_sp2_tail_calls() {
        let m = parse_module(
            r#"
            export sp2;
            sp2(bits32 n) { jump sp2_help(n, 1, 1); }
            sp2_help(bits32 n, bits32 s, bits32 p) {
                if n == 1 { return (s, p); }
                else { jump sp2_help(n - 1, s + n, p * n); }
            }
            "#,
        )
        .unwrap();
        assert_eq!(m.procs().count(), 2);
        match &m.proc("sp2").unwrap().body[0] {
            BodyItem::Stmt(Stmt::Jump { args, .. }) => assert_eq!(args.len(), 3),
            other => panic!("expected jump, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure1_sp3_loop() {
        let m = parse_module(
            r#"
            export sp3;
            sp3(bits32 n) {
                bits32 s, p;
                s = 1; p = 1;
              loop:
                if n == 1 { return (s, p); }
                else { s = s + n; p = p * n; n = n - 1; goto loop; }
            }
            "#,
        )
        .unwrap();
        let p = m.proc("sp3").unwrap();
        assert_eq!(p.labels(), vec![Name::from("loop")]);
    }

    #[test]
    fn parses_continuations_and_annotations() {
        let p = parse_proc(
            r#"
            f(bits32 x) {
                bits32 y; float64 w;
                r = g(x, k) also cuts to k also aborts;
                return;
                continuation k(x):
                return (x);
            }
            "#,
        );
        // `r` is undeclared but parsing is name-resolution-free.
        let p = p.unwrap();
        assert_eq!(p.continuations().len(), 1);
        match &p.body[0] {
            BodyItem::Stmt(Stmt::Call { anns, .. }) => {
                assert_eq!(anns.cuts_to, vec![Name::from("k")]);
                assert!(anns.aborts);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn parses_full_annotation_set() {
        let p = parse_proc(
            "f() { r = g(x) also cuts to k1 also unwinds to k2, k3 also returns to k4 also aborts also descriptor d0; return; }",
        )
        .unwrap();
        match &p.body[0] {
            BodyItem::Stmt(Stmt::Call { anns, .. }) => {
                assert_eq!(anns.cuts_to.len(), 1);
                assert_eq!(anns.unwinds_to.len(), 2);
                assert_eq!(anns.returns_to.len(), 1);
                assert!(anns.aborts);
                assert_eq!(anns.descriptors, vec![Name::from("d0")]);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn parses_abnormal_returns() {
        let p = parse_proc("f() { return <0/2> (p, q); }").unwrap();
        match &p.body[0] {
            BodyItem::Stmt(Stmt::Return { alt: Some(a), args }) => {
                assert_eq!((a.index, a.count), (0, 2));
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parses_cut_to_and_yield() {
        let p = parse_proc(
            "f() { bits32 k1; cut to k1(tag, arg) also cuts to k; yield(5) also unwinds to k also aborts; }",
        )
        .unwrap();
        match &p.body[0] {
            BodyItem::Stmt(Stmt::CutTo { args, anns, .. }) => {
                assert_eq!(args.len(), 2);
                assert_eq!(anns.cuts_to.len(), 1);
            }
            other => panic!("expected cut to, got {other:?}"),
        }
        match &p.body[1] {
            BodyItem::Stmt(Stmt::Yield { args, anns }) => {
                assert_eq!(args.len(), 1);
                assert_eq!(anns.unwinds_to.len(), 1);
                assert!(anns.aborts);
            }
            other => panic!("expected yield, got {other:?}"),
        }
    }

    #[test]
    fn parses_memory_access_and_stores() {
        let p = parse_proc("f() { bits32 x, y; bits32[x] = bits32[y] + 1; }").unwrap();
        match &p.body[0] {
            BodyItem::Stmt(Stmt::Assign { lhs, rhs }) => {
                assert!(matches!(lhs[0], Lvalue::Mem(Ty::B32, _)));
                assert!(rhs[0].reads_memory());
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_computed_callee() {
        let p = parse_proc("f() { bits32 t; t(s); bits32[t](u); }").unwrap();
        match &p.body[0] {
            BodyItem::Stmt(Stmt::Call { callee, .. }) => assert_eq!(callee, &Expr::var("t")),
            other => panic!("expected call, got {other:?}"),
        }
        match &p.body[1] {
            BodyItem::Stmt(Stmt::Call { callee, .. }) => assert!(callee.reads_memory()),
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn hoists_string_literals() {
        let m = parse_module(r#"f() { t("off board"); return; }"#).unwrap();
        let block = m.data_block("str$0").unwrap();
        assert_eq!(block.items, vec![DataItem::Str("off board".into())]);
    }

    #[test]
    fn parses_registers_and_data() {
        let m = parse_module(
            r#"
            register bits32 exn_top;
            register bits32 limit = 100;
            data exn_desc {
                bits32 1, 2, 3;
                sym handler;
                space 8;
                string "BadMove";
            }
            "#,
        )
        .unwrap();
        assert_eq!(m.registers().count(), 2);
        let d = m.data_block("exn_desc").unwrap();
        assert_eq!(d.items.len(), 4);
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("a + b * c == d").unwrap();
        assert_eq!(
            e,
            Expr::eq(
                Expr::add(Expr::var("a"), Expr::mul(Expr::var("b"), Expr::var("c"))),
                Expr::var("d")
            )
        );
        let e = parse_expr("(next + 1) % t").unwrap();
        assert_eq!(
            e,
            Expr::binary(
                BinOp::ModU,
                Expr::add(Expr::var("next"), Expr::b32(1)),
                Expr::var("t")
            )
        );
    }

    #[test]
    fn parses_prefix_primitives() {
        assert_eq!(
            parse_expr("%divs(a, b)").unwrap(),
            Expr::binary(BinOp::DivS, Expr::var("a"), Expr::var("b"))
        );
        assert_eq!(
            parse_expr("%neg(x)").unwrap(),
            Expr::unary(UnOp::Neg, Expr::var("x"))
        );
        assert_eq!(
            parse_expr("%zx32(bits8[p])").unwrap(),
            Expr::unary(UnOp::Zx(Width::W32), Expr::mem(Ty::B8, Expr::var("p")))
        );
    }

    #[test]
    fn rejects_checked_primitive_in_expression() {
        assert!(parse_expr("%%divu(a, b)").is_err());
    }

    #[test]
    fn checked_primitive_call_statement() {
        let p = parse_proc("f() { bits32 r; r = %%divu(a, b) also unwinds to k; }").unwrap();
        match &p.body[0] {
            BodyItem::Stmt(Stmt::Call { callee, .. }) => {
                assert_eq!(callee, &Expr::var("%%divu"));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_module("f() { return }").unwrap_err();
        assert_eq!(e.pos.line, 1);
        assert!(e.message.contains("return"), "{}", e.message);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        assert!(parse_proc("f() { bits32 x, y; x, y = 1; }").is_err());
    }

    #[test]
    fn else_if_chains() {
        let p = parse_proc(
            "f(bits32 x) { if x == 1 { return (1); } else if x == 2 { return (2); } else { return (3); } }",
        )
        .unwrap();
        match &p.body[0] {
            BodyItem::Stmt(Stmt::If { else_, .. }) => {
                assert!(matches!(&else_[0], BodyItem::Stmt(Stmt::If { .. })));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }
}
