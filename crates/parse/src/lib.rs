//! # cmm-parse — concrete syntax for C--
//!
//! A hand-written lexer and recursive-descent parser for the concrete C--
//! syntax used in the paper's figures (Figures 1, 8, and 10), producing
//! [`cmm_ir`] abstract syntax.
//!
//! The grammar covers:
//!
//! * module-level declarations: procedures, `import`/`export`,
//!   `register bits32 exn_top;` global registers, and `data` blocks;
//! * local variable declarations, parallel assignment, memory stores,
//!   `if`/`else`, labels and `goto`;
//! * calls with the full annotation set (`also cuts to`,
//!   `also unwinds to`, `also returns to`, `also aborts`,
//!   `also descriptor`), `jump` tail calls, plain and abnormal returns
//!   (`return <i/n> (..)`), `cut to`, `yield`, and
//!   `continuation k(x):` definitions;
//! * expressions with C-like precedence, typed memory access
//!   `bits32[e]`, prefix primitives (`%divs(a,b)`, `%neg(x)`, ...), and
//!   string literals (hoisted into anonymous data blocks).
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     export sp1;
//!     sp1(bits32 n) {
//!         bits32 s, p;
//!         if n == 1 { return (1, 1); }
//!         else { s, p = sp1(n - 1); return (s + n, p * n); }
//!     }
//! "#;
//! let module = cmm_parse::parse_module(src)?;
//! assert!(module.proc("sp1").is_some());
//! # Ok::<(), cmm_parse::ParseError>(())
//! ```

pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use error::ParseError;
pub use parser::{parse_expr, parse_module, parse_proc};
