//! Tokens and source positions.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// The start of the text.
    pub fn start() -> Pos {
        Pos { line: 1, col: 1 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// An identifier or keyword (keywords are distinguished by the
    /// parser, since most C-- keywords are contextual). Includes
    /// primitive names beginning with `%` or `%%`.
    Ident(String),
    /// An integer literal (value, and whether it carried a `::bitsN`
    /// suffix).
    Int(u64, Option<u32>),
    /// A float literal with its `::floatN` width (suffix required to
    /// distinguish from two integers separated by `.`... in practice the
    /// lexer accepts `1.5` and defaults to `float64`).
    Float(f64, u32),
    /// A string literal (already unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%` (the modulus operator; primitive names like `%divu` lex as
    /// `Ident`).
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v, None) => write!(f, "{v}"),
            Tok::Int(v, Some(w)) => write!(f, "{v}::bits{w}"),
            Tok::Float(v, w) => write!(f, "{v}::float{w}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Shl => write!(f, "`<<`"),
            Tok::Shr => write!(f, "`>>`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Tilde => write!(f, "`~`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}
