//! The wire layer: little-endian primitives over a byte buffer, and the
//! structured errors a hostile buffer can produce.
//!
//! Everything here upholds two properties the snapshot format promises:
//!
//! * **Determinism.** Encoding is a pure function of the value — no
//!   maps are walked in hash order (the state types are canonically
//!   sorted before they reach this layer), no padding, no timestamps.
//!   Encoding the same value twice yields identical bytes.
//! * **Totality of decoding.** The decoder never panics and never
//!   allocates more than the buffer could possibly justify: every read
//!   is bounds-checked, and every length prefix is validated against
//!   the bytes actually remaining (with a per-element lower bound)
//!   before any allocation. Corrupted, truncated, or adversarial input
//!   produces a [`SnapError`], nothing else.

use std::fmt;

/// Decoding (and envelope-validation) failures. Every way a snapshot
/// blob can be rejected, as data — never a panic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapError {
    /// The buffer ended before a read of `need` more bytes (`have`
    /// remained). Also produced for length prefixes that could not fit
    /// in the remaining bytes.
    Truncated { need: usize, have: usize },
    /// The leading magic bytes are not a snapshot's.
    BadMagic,
    /// The format version is not one this build reads.
    UnsupportedVersion(u32),
    /// An enum/option tag byte was out of range for `what`.
    BadTag { what: &'static str, tag: u8 },
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A length prefix for `what` exceeded the format's cap.
    TooLong { what: &'static str, len: u64 },
    /// The envelope parsed but `n` bytes followed it.
    TrailingBytes(usize),
    /// The trailing checksum does not match the bytes before it.
    ChecksumMismatch,
    /// The snapshot's program digest does not match the program it is
    /// being restored against.
    DigestMismatch,
    /// The engine byte and the state payload belong to different
    /// families.
    FamilyMismatch,
    /// The state decoded but the engine rejected it at restore time.
    Restore(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { need, have } => {
                write!(
                    f,
                    "truncated snapshot: needed {need} more bytes, had {have}"
                )
            }
            SnapError::BadMagic => write!(f, "not a cmm snapshot (bad magic)"),
            SnapError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads version 1)"
                )
            }
            SnapError::BadTag { what, tag } => write!(f, "bad {what} tag byte {tag}"),
            SnapError::BadUtf8 => write!(f, "snapshot string is not valid UTF-8"),
            SnapError::TooLong { what, len } => {
                write!(f, "{what} length {len} exceeds the format cap")
            }
            SnapError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the snapshot"),
            SnapError::ChecksumMismatch => write!(f, "snapshot checksum mismatch (corrupted blob)"),
            SnapError::DigestMismatch => {
                write!(
                    f,
                    "snapshot was taken over a different program (digest mismatch)"
                )
            }
            SnapError::FamilyMismatch => {
                write!(
                    f,
                    "engine byte and state payload belong to different families"
                )
            }
            SnapError::Restore(e) => write!(f, "state rejected at restore: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Longest string the format will carry (names, procedure names).
pub(crate) const MAX_STR: u64 = 1 << 16;

/// The append-only encoder.
#[derive(Default)]
pub(crate) struct Enc {
    pub buf: Vec<u8>,
}

impl Enc {
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    /// A length prefix (counts, not byte sizes).
    pub fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }

    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// The bounds-checked reader.
pub(crate) struct Dec<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Dec<'b> {
    pub fn new(buf: &'b [u8]) -> Dec<'b> {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn bool(&mut self, what: &'static str) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapError::BadTag { what, tag }),
        }
    }

    pub fn opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, SnapError> {
        if self.bool(what)? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// A length prefix, validated so that `n` elements of at least
    /// `min_elem_bytes` each could still fit in the remaining buffer —
    /// the guard that keeps a hostile prefix from forcing a huge
    /// allocation.
    pub fn len(&mut self, what: &'static str, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.u32()? as usize;
        let need = n.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(SnapError::Truncated {
                need,
                have: self.remaining(),
            });
        }
        let _ = what;
        Ok(n)
    }

    pub fn str(&mut self, what: &'static str) -> Result<String, SnapError> {
        let n = self.len(what, 1)?;
        if n as u64 > MAX_STR {
            return Err(SnapError::TooLong {
                what,
                len: n as u64,
            });
        }
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map(|s| s.to_owned())
            .map_err(|_| SnapError::BadUtf8)
    }

    /// Fails unless the whole buffer was consumed.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// FNV-1a over `bytes`, 64-bit — the trailing integrity checksum.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Two independent 64-bit FNV-1a lanes (different offset bases) — the
/// program-identity digest. Not cryptographic; collision resistance
/// adequate for "is this the same source text and build options".
pub(crate) fn fnv128(bytes: &[u8]) -> [u64; 2] {
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x6c62_272e_07bb_0142;
    for &x in bytes {
        a ^= x as u64;
        a = a.wrapping_mul(0x0000_0100_0000_01b3);
        b = b.wrapping_mul(0x0000_0100_0000_01b3);
        b ^= x as u64;
    }
    [a, b]
}
