//! # cmm-snap — serializable suspended machine state
//!
//! The paper's machine state is a clean seven-component value (§5.2),
//! which makes suspension points — `Yield` nodes, fuel-slice
//! exhaustion — natural snapshot boundaries. This crate defines the
//! **snapshot**: a versioned, deterministic byte encoding of a
//! suspended machine, for every engine family the workspace implements:
//!
//! * the **sem family** ([`cmm_sem::SemState`]) — the reference machine
//!   and the pre-resolved machine capture equal, name-space states, so
//!   a snapshot taken on either restores on either;
//! * the **VM family** ([`cmm_vm::VmState`]) — the stepped, pre-decoded,
//!   and fused tiers execute over the same machine state, so a snapshot
//!   taken under one tier resumes under any other.
//!
//! A [`Snapshot`] is the state plus the envelope a *resume in another
//! process* needs: which engine produced it, a digest of the program it
//! was taken over, the drive-loop position (entry procedure, arguments,
//! remaining fuel, yields completed), and the reproducibility baggage —
//! the resource-governor configuration and the chaos fault-plan state,
//! so an interrupted chaos run resumes mid-schedule and injects exactly
//! the faults the uninterrupted run would.
//!
//! ## Format
//!
//! Byte layout (all integers little-endian):
//!
//! ```text
//! "cmmsnap\0"  magic, 8 bytes
//! version      u32 (currently 1)
//! engine       u8 (0 sem, 1 sem-resolved, 2 vm, 3 vm-decoded, 4 vm-fused)
//! digest       2 × u64   FNV-1a/128 of the program source + build options
//! meta         entry str · args vec<u64> · fuel_remaining u64 ·
//!              yields_done u64 · opt bool
//! governor     option of 4 optional limits
//! chaos        option of fault-plan state (seed, schedule, counters, log)
//! state        tagged payload: 0 = sem state, 1 = vm state
//! checksum     u64   FNV-1a/64 of every preceding byte
//! ```
//!
//! Encoding is deterministic: the state types are canonically sorted
//! (environments and globals by name, memory by address) before they
//! reach the wire, so equal states produce byte-identical blobs —
//! `encode ∘ decode ∘ encode = encode`, which the round-trip suite
//! asserts byte for byte.
//!
//! Decoding is **total**: corrupted, truncated, version-skewed, or
//! adversarial input yields a structured [`SnapError`], never a panic
//! and never an outsized allocation (length prefixes are validated
//! against the bytes actually remaining). The decoder checks the
//! trailing checksum before anything else, so random mutation is
//! overwhelmingly caught as [`SnapError::ChecksumMismatch`]; whatever
//! slips past must still parse field by field.
//!
//! What a snapshot does *not* contain: the program (the digest pins its
//! identity; a restore validates the state against the program the new
//! machine was built over), the trace sink (a resumed machine starts a
//! fresh sink; its clock continues from the restored step/cost
//! counters), and the execution tier's derived code (re-derived by the
//! resuming machine — this is what makes cross-tier resume work).

use cmm_chaos::{FaultPlanState, InjectedFault, ResourceGovernor, CHAOS_OPS};
use cmm_ir::{Name, Width};
use cmm_sem::{FrameState, NodeRef, SemState, SnapStatus};
use cmm_vm::isa::regs::NUM_REGS;
use cmm_vm::{Cost, VmSnapStatus, VmState};

mod wire;

pub use wire::SnapError;
use wire::{fnv128, fnv64, Dec, Enc};

/// The leading magic bytes.
pub const MAGIC: [u8; 8] = *b"cmmsnap\0";

/// The format version this build writes and reads.
pub const VERSION: u32 = 1;

/// Which engine produced a snapshot. The names are the workspace's
/// canonical engine names (as used by `cmm batch` manifests and the
/// difftest oracles).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineId {
    /// The reference abstract machine.
    Sem,
    /// The pre-resolved abstract machine.
    SemResolved,
    /// The simulated target, stepped over `Inst`.
    Vm,
    /// The simulated target over the pre-decoded stream.
    VmDecoded,
    /// The simulated target over the fused superinstruction stream.
    VmFused,
}

/// An engine family: snapshots are portable *within* a family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// The abstract machines (reference and pre-resolved).
    Sem,
    /// The simulated target (all three tiers).
    Vm,
}

impl EngineId {
    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            EngineId::Sem => "sem",
            EngineId::SemResolved => "sem-resolved",
            EngineId::Vm => "vm",
            EngineId::VmDecoded => "vm-decoded",
            EngineId::VmFused => "vm-fused",
        }
    }

    /// Parses a canonical name.
    ///
    /// # Errors
    ///
    /// Fails with a message listing the valid names.
    pub fn parse(s: &str) -> Result<EngineId, String> {
        Ok(match s {
            "sem" => EngineId::Sem,
            "sem-resolved" => EngineId::SemResolved,
            "vm" => EngineId::Vm,
            "vm-decoded" => EngineId::VmDecoded,
            "vm-fused" => EngineId::VmFused,
            other => {
                return Err(format!(
                "unknown engine `{other}` (expected sem, sem-resolved, vm, vm-decoded, vm-fused)"
            ))
            }
        })
    }

    /// The family the engine belongs to.
    pub fn family(self) -> Family {
        match self {
            EngineId::Sem | EngineId::SemResolved => Family::Sem,
            EngineId::Vm | EngineId::VmDecoded | EngineId::VmFused => Family::Vm,
        }
    }

    fn tag(self) -> u8 {
        match self {
            EngineId::Sem => 0,
            EngineId::SemResolved => 1,
            EngineId::Vm => 2,
            EngineId::VmDecoded => 3,
            EngineId::VmFused => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<EngineId, SnapError> {
        Ok(match tag {
            0 => EngineId::Sem,
            1 => EngineId::SemResolved,
            2 => EngineId::Vm,
            3 => EngineId::VmDecoded,
            4 => EngineId::VmFused,
            tag => {
                return Err(SnapError::BadTag {
                    what: "engine",
                    tag,
                })
            }
        })
    }

    /// All five engines, in tag order.
    pub const ALL: [EngineId; 5] = [
        EngineId::Sem,
        EngineId::SemResolved,
        EngineId::Vm,
        EngineId::VmDecoded,
        EngineId::VmFused,
    ];
}

/// Where the drive loop stood when the snapshot was taken — everything
/// a resume in another process needs besides the machine state itself.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapMeta {
    /// The entry procedure the run was started with.
    pub entry: String,
    /// Its arguments (as passed on the command line).
    pub args: Vec<u64>,
    /// Fuel left of the run's total budget.
    pub fuel_remaining: u64,
    /// Yields already serviced by the drive loop.
    pub yields_done: u64,
    /// Whether the program was built with optimization.
    pub opt: bool,
}

/// The engine-family state payload.
///
/// The variants' sizes differ, but a `Snapshot` is a rare, long-lived
/// value (one per checkpoint boundary), so boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, PartialEq, Debug)]
pub enum MachineState {
    /// An abstract-machine state (either sem engine).
    Sem(SemState),
    /// A VM state (any tier).
    Vm(VmState),
}

/// A complete snapshot: machine state plus resume envelope. See the
/// crate documentation for the byte format.
#[derive(Clone, PartialEq, Debug)]
pub struct Snapshot {
    /// The engine that produced the snapshot (a resume may choose any
    /// engine of the same family).
    pub engine: EngineId,
    /// FNV-1a/128 digest of the program source and build options —
    /// see [`source_digest`].
    pub digest: [u64; 2],
    /// Drive-loop position.
    pub meta: SnapMeta,
    /// Resource-governor configuration to reinstall on resume.
    pub governor: Option<ResourceGovernor>,
    /// Chaos fault-plan state: restoring it resumes the fault schedule
    /// mid-flight.
    pub chaos: Option<FaultPlanState>,
    /// The machine state.
    pub state: MachineState,
}

/// Digest of a program's identity: source text plus build options.
/// Snapshots embed it; [`Snapshot::check_digest`] compares it before a
/// restore is attempted against a freshly built program.
pub fn source_digest(source: &str, opt: bool) -> [u64; 2] {
    let mut bytes = Vec::with_capacity(source.len() + 2);
    bytes.extend_from_slice(source.as_bytes());
    bytes.push(0xff);
    bytes.push(opt as u8);
    fnv128(&bytes)
}

/// The starting value for [`fold_digest`] — the FNV-1a 64-bit offset
/// basis.
pub const FOLD_INIT: u64 = 0xcbf2_9ce4_8422_2325;

/// Streaming FNV-1a fold: extends the running digest `h` with `bytes`.
/// Consumers use this to digest a *sequence* of snapshot blobs (e.g. a
/// batch run's checkpoints) into one deterministic fingerprint —
/// `fold_digest(fold_digest(FOLD_INIT, a), b)` is a pure function of
/// the concatenation `a ++ b`.
pub fn fold_digest(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Snapshot {
    /// Serializes the snapshot. Deterministic: equal snapshots produce
    /// byte-identical blobs.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.buf.extend_from_slice(&MAGIC);
        e.u32(VERSION);
        e.u8(self.engine.tag());
        e.u64(self.digest[0]);
        e.u64(self.digest[1]);
        e.str(&self.meta.entry);
        e.len(self.meta.args.len());
        for &a in &self.meta.args {
            e.u64(a);
        }
        e.u64(self.meta.fuel_remaining);
        e.u64(self.meta.yields_done);
        e.bool(self.meta.opt);
        match &self.governor {
            None => e.u8(0),
            Some(g) => {
                e.u8(1);
                e.opt_u64(g.max_depth.map(|v| v as u64));
                e.opt_u64(g.max_memory_bytes.map(|v| v as u64));
                e.opt_u64(g.stack_floor);
                e.opt_u64(g.fuel_slice);
            }
        }
        match &self.chaos {
            None => e.u8(0),
            Some(c) => {
                e.u8(1);
                e.u64(c.seed);
                for i in 0..CHAOS_OPS.len() {
                    e.opt_u64(c.fail_at[i]);
                }
                for i in 0..CHAOS_OPS.len() {
                    e.u64(c.seen[i]);
                }
                e.len(c.log.len());
                for f in &c.log {
                    e.u8(CHAOS_OPS.iter().position(|&o| o == f.op).unwrap() as u8);
                    e.u64(f.invocation);
                }
            }
        }
        match &self.state {
            MachineState::Sem(st) => {
                e.u8(0);
                enc_sem_state(&mut e, st);
            }
            MachineState::Vm(st) => {
                e.u8(1);
                enc_vm_state(&mut e, st);
            }
        }
        let sum = fnv64(&e.buf);
        e.u64(sum);
        e.buf
    }

    /// Deserializes a snapshot.
    ///
    /// # Errors
    ///
    /// Every malformation is a [`SnapError`]: bad magic, unsupported
    /// version, checksum mismatch (checked first — random corruption
    /// lands here), truncation, bad tags, trailing bytes. Never panics.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapError::Truncated {
                need: MAGIC.len() + 4 + 8,
                have: bytes.len(),
            });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let sum = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv64(body) != sum {
            return Err(SnapError::ChecksumMismatch);
        }
        let mut d = Dec::new(&body[12..]);
        let engine = EngineId::from_tag(d.u8()?)?;
        let digest = [d.u64()?, d.u64()?];
        let entry = d.str("entry")?;
        let nargs = d.len("args", 8)?;
        let mut args = Vec::with_capacity(nargs);
        for _ in 0..nargs {
            args.push(d.u64()?);
        }
        let fuel_remaining = d.u64()?;
        let yields_done = d.u64()?;
        let opt = d.bool("opt")?;
        let governor = if d.bool("governor")? {
            let max_depth = opt_usize(d.opt_u64("max-depth")?, "max-depth")?;
            let max_memory_bytes = opt_usize(d.opt_u64("max-memory")?, "max-memory")?;
            let stack_floor = d.opt_u64("stack-floor")?;
            let fuel_slice = d.opt_u64("fuel-slice")?;
            Some(ResourceGovernor {
                max_depth,
                max_memory_bytes,
                stack_floor,
                fuel_slice,
            })
        } else {
            None
        };
        let chaos = if d.bool("chaos")? {
            let seed = d.u64()?;
            let mut fail_at = [None; CHAOS_OPS.len()];
            for slot in &mut fail_at {
                *slot = d.opt_u64("fail-at")?;
            }
            let mut seen = [0u64; CHAOS_OPS.len()];
            for slot in &mut seen {
                *slot = d.u64()?;
            }
            let nlog = d.len("fault-log", 9)?;
            let mut log = Vec::with_capacity(nlog);
            for _ in 0..nlog {
                let tag = d.u8()?;
                let op = *CHAOS_OPS.get(tag as usize).ok_or(SnapError::BadTag {
                    what: "chaos-op",
                    tag,
                })?;
                let invocation = d.u64()?;
                log.push(InjectedFault { op, invocation });
            }
            Some(FaultPlanState {
                seed,
                fail_at,
                seen,
                log,
            })
        } else {
            None
        };
        let state = match d.u8()? {
            0 => MachineState::Sem(dec_sem_state(&mut d)?),
            1 => MachineState::Vm(dec_vm_state(&mut d)?),
            tag => return Err(SnapError::BadTag { what: "state", tag }),
        };
        d.finish()?;
        let family_ok = matches!(
            (&state, engine.family()),
            (MachineState::Sem(_), Family::Sem) | (MachineState::Vm(_), Family::Vm)
        );
        if !family_ok {
            return Err(SnapError::FamilyMismatch);
        }
        Ok(Snapshot {
            engine,
            digest,
            meta: SnapMeta {
                entry,
                args,
                fuel_remaining,
                yields_done,
                opt,
            },
            governor,
            chaos,
            state,
        })
    }

    /// Compares the embedded program digest against `digest` (computed
    /// with [`source_digest`] over the program about to be restored
    /// into).
    ///
    /// # Errors
    ///
    /// [`SnapError::DigestMismatch`] if they differ.
    pub fn check_digest(&self, digest: [u64; 2]) -> Result<(), SnapError> {
        if self.digest != digest {
            return Err(SnapError::DigestMismatch);
        }
        Ok(())
    }

    /// Checks that `requested` can resume this snapshot: any engine of
    /// the snapshot's family may, any other engine may not.
    ///
    /// # Errors
    ///
    /// On a family mismatch, a structured message naming both engines,
    /// both families, and the blob's program digest — everything an
    /// operator needs to find the blob and pick a legal tier. Every
    /// resume surface (`cmm resume`, the execution service) reports
    /// this one message, so tooling can match on it.
    pub fn check_engine(&self, requested: EngineId) -> Result<(), String> {
        if requested.family() == self.engine.family() {
            return Ok(());
        }
        Err(format!(
            "cannot resume a {} snapshot (family {}, digest {}) on `{}` (family {}): \
             engine families differ",
            self.engine.name(),
            self.engine.family().name(),
            digest_hex(self.digest),
            requested.name(),
            requested.family().name(),
        ))
    }
}

impl Family {
    /// The family's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Sem => "sem",
            Family::Vm => "vm",
        }
    }
}

/// Renders a program digest as the canonical 32-hex-digit string used
/// in resume diagnostics.
pub fn digest_hex(d: [u64; 2]) -> String {
    format!("{:016x}{:016x}", d[0], d[1])
}

fn opt_usize(v: Option<u64>, what: &'static str) -> Result<Option<usize>, SnapError> {
    match v {
        None => Ok(None),
        Some(x) => usize::try_from(x)
            .map(Some)
            .map_err(|_| SnapError::TooLong { what, len: x }),
    }
}

// ----- sem-family payload -----

fn enc_value(e: &mut Enc, v: &cmm_sem::Value) {
    match v {
        cmm_sem::Value::Bits(w, bits) => {
            e.u8(0);
            e.u8(w.bits() as u8);
            e.u64(*bits);
        }
        cmm_sem::Value::Code(name) => {
            e.u8(1);
            e.str(name.as_str());
        }
        cmm_sem::Value::Cont(r, uid) => {
            e.u8(2);
            e.str(r.proc.as_str());
            e.u32(r.node.0);
            e.u64(*uid);
        }
    }
}

fn dec_value(d: &mut Dec) -> Result<cmm_sem::Value, SnapError> {
    Ok(match d.u8()? {
        0 => {
            let wb = d.u8()?;
            let w = Width::from_bits(wb as u32).ok_or(SnapError::BadTag {
                what: "width",
                tag: wb,
            })?;
            cmm_sem::Value::Bits(w, d.u64()?)
        }
        1 => cmm_sem::Value::Code(Name::from(d.str("code-name")?.as_str())),
        2 => {
            let proc = d.str("cont-proc")?;
            let node = d.u32()?;
            let uid = d.u64()?;
            cmm_sem::Value::Cont(NodeRef::new(proc.as_str(), cmm_cfg::NodeId(node)), uid)
        }
        tag => return Err(SnapError::BadTag { what: "value", tag }),
    })
}

fn enc_bindings(e: &mut Enc, bs: &[(Name, cmm_sem::Value)]) {
    e.len(bs.len());
    for (n, v) in bs {
        e.str(n.as_str());
        enc_value(e, v);
    }
}

fn dec_bindings(d: &mut Dec) -> Result<Vec<(Name, cmm_sem::Value)>, SnapError> {
    let n = d.len("bindings", 6)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        let name = Name::from(d.str("binding-name")?.as_str());
        v.push((name, dec_value(d)?));
    }
    Ok(v)
}

fn enc_names(e: &mut Enc, ns: &[Name]) {
    e.len(ns.len());
    for n in ns {
        e.str(n.as_str());
    }
}

fn dec_names(d: &mut Dec) -> Result<Vec<Name>, SnapError> {
    let n = d.len("names", 4)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(Name::from(d.str("name")?.as_str()));
    }
    Ok(v)
}

fn enc_sem_state(e: &mut Enc, st: &SemState) {
    e.str(st.proc.as_str());
    e.u32(st.node.0);
    enc_bindings(e, &st.rho);
    enc_names(e, &st.saves);
    e.u64(st.uid);
    e.len(st.mem.len());
    for &(a, b) in &st.mem {
        e.u64(a);
        e.u8(b);
    }
    e.len(st.area.len());
    for v in &st.area {
        enc_value(e, v);
    }
    e.len(st.stack.len());
    for f in &st.stack {
        e.str(f.proc.as_str());
        e.u32(f.call_site.0);
        enc_bindings(e, &f.rho);
        enc_names(e, &f.saves);
        e.u64(f.uid);
    }
    enc_bindings(e, &st.globals);
    e.u64(st.next_uid);
    e.len(st.cont_encodings.len());
    for (r, uid) in &st.cont_encodings {
        e.str(r.proc.as_str());
        e.u32(r.node.0);
        e.u64(*uid);
    }
    e.u8(match st.status {
        SnapStatus::Suspended => 0,
        SnapStatus::OutOfFuel => 1,
    });
    e.u64(st.steps);
}

fn dec_sem_state(d: &mut Dec) -> Result<SemState, SnapError> {
    let proc = Name::from(d.str("proc")?.as_str());
    let node = cmm_cfg::NodeId(d.u32()?);
    let rho = dec_bindings(d)?;
    let saves = dec_names(d)?;
    let uid = d.u64()?;
    let nmem = d.len("memory", 9)?;
    let mut mem = Vec::with_capacity(nmem);
    for _ in 0..nmem {
        let a = d.u64()?;
        let b = d.u8()?;
        mem.push((a, b));
    }
    let narea = d.len("area", 2)?;
    let mut area = Vec::with_capacity(narea);
    for _ in 0..narea {
        area.push(dec_value(d)?);
    }
    let nstack = d.len("stack", 21)?;
    let mut stack = Vec::with_capacity(nstack);
    for _ in 0..nstack {
        let proc = Name::from(d.str("frame-proc")?.as_str());
        let call_site = cmm_cfg::NodeId(d.u32()?);
        let rho = dec_bindings(d)?;
        let saves = dec_names(d)?;
        let uid = d.u64()?;
        stack.push(FrameState {
            proc,
            call_site,
            rho,
            saves,
            uid,
        });
    }
    let globals = dec_bindings(d)?;
    let next_uid = d.u64()?;
    let ncont = d.len("cont-encodings", 16)?;
    let mut cont_encodings = Vec::with_capacity(ncont);
    for _ in 0..ncont {
        let proc = d.str("cont-proc")?;
        let node = cmm_cfg::NodeId(d.u32()?);
        let uid = d.u64()?;
        cont_encodings.push((NodeRef::new(proc.as_str(), node), uid));
    }
    let status = match d.u8()? {
        0 => SnapStatus::Suspended,
        1 => SnapStatus::OutOfFuel,
        tag => {
            return Err(SnapError::BadTag {
                what: "sem-status",
                tag,
            })
        }
    };
    let steps = d.u64()?;
    Ok(SemState {
        proc,
        node,
        rho,
        saves,
        uid,
        mem,
        area,
        stack,
        globals,
        next_uid,
        cont_encodings,
        status,
        steps,
    })
}

// ----- VM-family payload -----

fn enc_vm_state(e: &mut Enc, st: &VmState) {
    for &r in &st.regs {
        e.u64(r);
    }
    e.u32(st.pc);
    e.u64(st.cost.instructions);
    e.u64(st.cost.loads);
    e.u64(st.cost.stores);
    e.u64(st.cost.branches);
    e.u64(st.cost.calls);
    e.u64(st.cost.runtime_instructions);
    e.u64(st.expected_results);
    e.len(st.mem.len());
    for &(a, b) in &st.mem {
        e.u32(a);
        e.u8(b);
    }
    e.u8(match st.status {
        VmSnapStatus::Suspended => 0,
        VmSnapStatus::OutOfFuel => 1,
    });
}

fn dec_vm_state(d: &mut Dec) -> Result<VmState, SnapError> {
    let mut regs = [0u64; NUM_REGS];
    for r in &mut regs {
        *r = d.u64()?;
    }
    let pc = d.u32()?;
    let cost = Cost {
        instructions: d.u64()?,
        loads: d.u64()?,
        stores: d.u64()?,
        branches: d.u64()?,
        calls: d.u64()?,
        runtime_instructions: d.u64()?,
    };
    let expected_results = d.u64()?;
    let nmem = d.len("vm-memory", 5)?;
    let mut mem = Vec::with_capacity(nmem);
    for _ in 0..nmem {
        let a = d.u32()?;
        let b = d.u8()?;
        mem.push((a, b));
    }
    let status = match d.u8()? {
        0 => VmSnapStatus::Suspended,
        1 => VmSnapStatus::OutOfFuel,
        tag => {
            return Err(SnapError::BadTag {
                what: "vm-status",
                tag,
            })
        }
    };
    Ok(VmState {
        regs,
        pc,
        cost,
        expected_results,
        mem,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::NodeId;
    use cmm_sem::Value;

    fn sem_snapshot() -> Snapshot {
        let state = SemState {
            proc: Name::from("main"),
            node: NodeId(7),
            rho: vec![
                (
                    Name::from("k"),
                    Value::Cont(NodeRef::new("main", NodeId(3)), 2),
                ),
                (Name::from("p"), Value::Code(Name::from("helper"))),
                (Name::from("x"), Value::Bits(Width::W32, 41)),
            ],
            saves: vec![Name::from("x")],
            uid: 2,
            mem: vec![(0x1000, 1), (0x1001, 0xfe), (0x9000_0000, 7)],
            area: vec![Value::Bits(Width::W64, 9), Value::Bits(Width::W8, 1)],
            stack: vec![FrameState {
                proc: Name::from("caller"),
                call_site: NodeId(4),
                rho: vec![(Name::from("y"), Value::Bits(Width::W16, 3))],
                saves: vec![],
                uid: 1,
            }],
            globals: vec![(Name::from("g"), Value::Bits(Width::W32, 5))],
            next_uid: 3,
            cont_encodings: vec![(NodeRef::new("main", NodeId(3)), 2)],
            status: SnapStatus::Suspended,
            steps: 1234,
        };
        Snapshot {
            engine: EngineId::SemResolved,
            digest: source_digest("proc main() {}", false),
            meta: SnapMeta {
                entry: "main".into(),
                args: vec![1, 2, u64::MAX],
                fuel_remaining: 500,
                yields_done: 3,
                opt: false,
            },
            governor: Some(ResourceGovernor {
                max_depth: Some(64),
                max_memory_bytes: None,
                stack_floor: Some(0x8000),
                fuel_slice: Some(128),
            }),
            chaos: Some(FaultPlanState {
                seed: 42,
                fail_at: {
                    let mut f = [None; CHAOS_OPS.len()];
                    f[0] = Some(3);
                    f[7] = Some(1);
                    f
                },
                seen: [1, 0, 2, 0, 0, 0, 0, 1],
                log: vec![InjectedFault {
                    op: CHAOS_OPS[7],
                    invocation: 1,
                }],
            }),
            state: MachineState::Sem(state),
        }
    }

    fn vm_snapshot() -> Snapshot {
        let mut regs = [0u64; NUM_REGS];
        regs[1] = 0xdead_beef;
        regs[63] = u64::MAX;
        Snapshot {
            engine: EngineId::VmFused,
            digest: source_digest("module M;", true),
            meta: SnapMeta {
                entry: "M_main".into(),
                args: vec![],
                fuel_remaining: 1,
                yields_done: 0,
                opt: true,
            },
            governor: None,
            chaos: None,
            state: MachineState::Vm(VmState {
                regs,
                pc: 17,
                cost: Cost {
                    instructions: 100,
                    loads: 10,
                    stores: 5,
                    branches: 20,
                    calls: 2,
                    runtime_instructions: 30,
                },
                expected_results: 1,
                mem: vec![(0x10, 0xff), (0x4000_0000, 1)],
                status: VmSnapStatus::OutOfFuel,
            }),
        }
    }

    /// serialize → deserialize → serialize is byte-identical, and the
    /// decoded value equals the original, for both families.
    #[test]
    fn round_trip_is_byte_identical() {
        for snap in [sem_snapshot(), vm_snapshot()] {
            let bytes = snap.encode();
            let decoded = Snapshot::decode(&bytes).unwrap();
            assert_eq!(decoded, snap);
            assert_eq!(decoded.encode(), bytes, "re-encoding diverged");
        }
    }

    /// Every truncation of a valid blob fails with a structured error.
    #[test]
    fn truncation_always_structured() {
        let bytes = sem_snapshot().encode();
        for n in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..n]).unwrap_err();
            match err {
                SnapError::Truncated { .. } | SnapError::ChecksumMismatch => {}
                other => panic!("truncation at {n} produced {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = sem_snapshot().encode();
        bytes[0] ^= 0x20;
        assert_eq!(Snapshot::decode(&bytes).unwrap_err(), SnapError::BadMagic);

        let mut bytes = sem_snapshot().encode();
        bytes[8] = 99; // version field
        assert_eq!(
            Snapshot::decode(&bytes).unwrap_err(),
            SnapError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn flipped_byte_is_caught_by_checksum() {
        let mut bytes = sem_snapshot().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(
            Snapshot::decode(&bytes).unwrap_err(),
            SnapError::ChecksumMismatch
        );
    }

    /// A blob whose engine byte and state payload disagree is rejected
    /// even though its checksum is valid.
    #[test]
    fn family_mismatch_is_rejected() {
        let mut snap = sem_snapshot();
        snap.engine = EngineId::Vm;
        let bytes = snap.encode();
        assert_eq!(
            Snapshot::decode(&bytes).unwrap_err(),
            SnapError::FamilyMismatch
        );
    }

    #[test]
    fn digest_check() {
        let snap = sem_snapshot();
        assert!(snap
            .check_digest(source_digest("proc main() {}", false))
            .is_ok());
        assert_eq!(
            snap.check_digest(source_digest("proc main() {}", true)),
            Err(SnapError::DigestMismatch)
        );
        assert_eq!(
            snap.check_digest(source_digest("proc other() {}", false)),
            Err(SnapError::DigestMismatch)
        );
    }

    /// A hostile length prefix cannot force an outsized allocation: a
    /// blob claiming 2^32−1 arguments (with a recomputed checksum, so
    /// only the parser can reject it) fails as truncated.
    #[test]
    fn huge_length_prefix_is_truncation() {
        let bytes = sem_snapshot().encode();
        let mut body = bytes[..bytes.len() - 8].to_vec();
        // The args length prefix sits after magic(8) + version(4) +
        // engine(1) + digest(16) + entry("main": 4+4).
        let off = 8 + 4 + 1 + 16 + 4 + 4;
        body[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let sum = wire::fnv64(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        match Snapshot::decode(&body).unwrap_err() {
            SnapError::Truncated { .. } => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Decoder fuzz: thousands of random single/multi-byte mutations of
    /// valid snapshots decode to a structured error or a valid snapshot
    /// (when the mutation is semantically neutral it must re-encode
    /// cleanly) — never a panic, never an abort.
    #[test]
    fn mutation_fuzz_never_panics() {
        let mut rng = 0xc0ff_ee00_dead_beefu64;
        for base in [sem_snapshot().encode(), vm_snapshot().encode()] {
            for _ in 0..4000 {
                let mut bytes = base.clone();
                let nmut = 1 + (splitmix(&mut rng) % 4) as usize;
                for _ in 0..nmut {
                    let i = (splitmix(&mut rng) % bytes.len() as u64) as usize;
                    bytes[i] = splitmix(&mut rng) as u8;
                }
                // Half the time, also truncate.
                if splitmix(&mut rng).is_multiple_of(2) {
                    let n = (splitmix(&mut rng) % (bytes.len() as u64 + 1)) as usize;
                    bytes.truncate(n);
                }
                if let Ok(snap) = Snapshot::decode(&bytes) {
                    // Accepted blobs must round-trip to themselves.
                    assert_eq!(snap.encode(), bytes);
                }
            }
        }
    }
}
