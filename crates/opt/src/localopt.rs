//! Local copy propagation and value-numbering CSE.
//!
//! Both passes operate within *chains*: maximal straight-line node
//! sequences (each node has one successor which has one predecessor).
//! Within a chain the pass maintains
//!
//! * a copy environment `v ↦ w` built from `Assign v := w` nodes, and
//! * a table of available expressions `e ↦ v` built from `Assign v := e`,
//!
//! invalidating entries when an operand is redefined, and invalidating
//! all memory-dependent and non-local-dependent entries at `Call` nodes
//! (a callee may write memory and global registers).

use crate::ssa::ssa_names;
use cmm_cfg::{Graph, Node, NodeId};
use cmm_ir::{Expr, Lvalue, Name};
use std::collections::{BTreeSet, HashMap};

/// Runs both local passes; returns the number of rewrites.
pub fn localopt(g: &mut Graph) -> usize {
    let locals = ssa_names(g);
    let chains = chains(g);
    let mut changed = 0;
    for chain in chains {
        changed += run_chain(g, &chain, &locals);
    }
    changed
}

/// Maximal straight-line chains over the reachable graph.
fn chains(g: &Graph) -> Vec<Vec<NodeId>> {
    let preds = g.preds();
    let rpo = g.reverse_postorder();
    let reachable: BTreeSet<NodeId> = rpo.iter().copied().collect();
    let single_pred = |n: NodeId| {
        preds[n.index()]
            .iter()
            .filter(|p| reachable.contains(p))
            .count()
            == 1
    };
    let mut in_chain: BTreeSet<NodeId> = BTreeSet::new();
    let mut out = Vec::new();
    for &start in &rpo {
        if in_chain.contains(&start) {
            continue;
        }
        // A chain head: entry, a join, or a successor of a fork.
        let mut chain = vec![start];
        in_chain.insert(start);
        let mut cur = start;
        loop {
            let succs = g.succs(cur);
            if succs.len() != 1 {
                break;
            }
            let next = succs[0];
            if !single_pred(next) || in_chain.contains(&next) {
                break;
            }
            chain.push(next);
            in_chain.insert(next);
            cur = next;
        }
        out.push(chain);
    }
    out
}

struct LocalState {
    /// Copy environment: `v` currently holds the same value as `w`.
    copies: HashMap<Name, Name>,
    /// Available expressions: canonical rhs already held in a variable.
    avail: HashMap<Expr, Name>,
}

impl LocalState {
    fn invalidate_var(&mut self, v: &Name) {
        self.copies.remove(v);
        self.copies.retain(|_, w| w != v);
        self.avail
            .retain(|e, holder| holder != v && !e.names().contains(v));
    }

    fn invalidate_memory(&mut self) {
        self.avail.retain(|e, _| !e.reads_memory());
    }

    /// At a call, memory and every non-local name may change.
    fn invalidate_for_call(&mut self, locals: &BTreeSet<Name>) {
        self.invalidate_memory();
        self.avail.retain(|e, holder| {
            locals.contains(holder) && e.names().iter().all(|n| locals.contains(n))
        });
        self.copies
            .retain(|v, w| locals.contains(v) && locals.contains(w));
    }
}

fn run_chain(g: &mut Graph, chain: &[NodeId], locals: &BTreeSet<Name>) -> usize {
    let mut st = LocalState {
        copies: HashMap::new(),
        avail: HashMap::new(),
    };
    let mut changed = 0;
    for &id in chain {
        let rewrite = |e: &Expr, st: &LocalState| -> Expr {
            let copied = e.substitute(&|n| st.copies.get(n).cloned().map(Expr::Name));
            match st.avail.get(&copied) {
                Some(v) if !matches!(copied, Expr::Name(_) | Expr::Lit(_)) => Expr::Name(v.clone()),
                _ => copied,
            }
        };
        match g.node_mut(id) {
            Node::Assign { lhs, rhs, .. } => {
                let new = rewrite(rhs, &st);
                if &new != rhs {
                    *rhs = new.clone();
                    changed += 1;
                }
                let rhs_now = new;
                match lhs {
                    Lvalue::Var(v) => {
                        let v = v.clone();
                        st.invalidate_var(&v);
                        if !locals.contains(&v) {
                            // Assigning a global register: a subsequent
                            // call could also write it, but within the
                            // chain segment up to the next call the copy
                            // is valid; keep tracking conservatively off.
                        } else {
                            match &rhs_now {
                                Expr::Name(w) if locals.contains(w) && *w != v => {
                                    st.copies.insert(v.clone(), w.clone());
                                }
                                e if !matches!(e, Expr::Lit(_) | Expr::Name(_))
                                    && !e.can_fail() =>
                                {
                                    st.avail.insert(e.clone(), v.clone());
                                }
                                _ => {}
                            }
                        }
                    }
                    Lvalue::Mem(_, a) => {
                        let new_a = rewrite(a, &st);
                        if &new_a != a {
                            *a = new_a;
                            changed += 1;
                        }
                        st.invalidate_memory();
                    }
                }
            }
            Node::CopyOut { exprs, .. } => {
                for e in exprs {
                    let new = rewrite(e, &st);
                    if &new != e {
                        *e = new;
                        changed += 1;
                    }
                }
            }
            Node::Branch { cond, .. } => {
                let new = rewrite(cond, &st);
                if &new != cond {
                    *cond = new;
                    changed += 1;
                }
            }
            Node::CutTo { cont, .. } => {
                let new = rewrite(cont, &st);
                if &new != cont {
                    *cont = new;
                    changed += 1;
                }
            }
            Node::Jump { callee } => {
                let new = rewrite(callee, &st);
                if &new != callee {
                    *callee = new;
                    changed += 1;
                }
            }
            Node::Call { callee, .. } => {
                let new = rewrite(callee, &st);
                if &new != callee {
                    *callee = new;
                    changed += 1;
                }
                st.invalidate_for_call(locals);
            }
            Node::CopyIn { vars, .. } => {
                for v in vars.clone() {
                    st.invalidate_var(&v);
                }
            }
            Node::Entry { .. } | Node::Exit { .. } | Node::CalleeSaves { .. } | Node::Yield => {}
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn graph(src: &str) -> Graph {
        build_program(&parse_module(src).unwrap())
            .unwrap()
            .proc("f")
            .unwrap()
            .clone()
    }

    fn rhs_list(g: &Graph) -> Vec<Expr> {
        g.reverse_postorder()
            .into_iter()
            .filter_map(|id| match g.node(id) {
                Node::Assign { rhs, .. } => Some(rhs.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn copy_propagation_within_a_chain() {
        let mut g = graph("f(bits32 a) { bits32 b, c; b = a; c = b + 1; return (c); }");
        localopt(&mut g);
        let rhs = rhs_list(&g);
        assert!(
            rhs.contains(&Expr::add(Expr::var("a"), Expr::b32(1))),
            "b should be replaced by a: {rhs:?}"
        );
    }

    #[test]
    fn cse_reuses_computed_expressions() {
        let mut g =
            graph("f(bits32 a, bits32 b) { bits32 x, y; x = a + b; y = a + b; return (x, y); }");
        localopt(&mut g);
        let rhs = rhs_list(&g);
        assert!(
            rhs.contains(&Expr::var("x")),
            "y = a + b should become y = x: {rhs:?}"
        );
    }

    #[test]
    fn copies_invalidated_by_redefinition() {
        let mut g = graph("f(bits32 a) { bits32 b, c; b = a; a = 0; c = b + 1; return (c); }");
        localopt(&mut g);
        let rhs = rhs_list(&g);
        assert!(
            rhs.contains(&Expr::add(Expr::var("b"), Expr::b32(1))),
            "b must not be replaced by the redefined a: {rhs:?}"
        );
    }

    #[test]
    fn memory_expressions_invalidated_by_stores() {
        let mut g = graph(
            "f(bits32 p) { bits32 x, y; x = bits32[p]; bits32[p] = 0; y = bits32[p]; return (x, y); }",
        );
        localopt(&mut g);
        let rhs = rhs_list(&g);
        // y must reload, not reuse x.
        assert!(
            rhs.iter().filter(|e| e.reads_memory()).count() >= 2,
            "store must kill the available load: {rhs:?}"
        );
    }

    #[test]
    fn calls_invalidate_memory_and_globals() {
        let p = build_program(
            &parse_module(
                r#"
                register bits32 gr;
                f(bits32 p) {
                    bits32 x, y, u, v;
                    x = bits32[p];
                    u = gr;
                    g();
                    y = bits32[p];
                    v = gr;
                    return (x, y, u, v);
                }
                g() { gr = 1; return; }
                "#,
            )
            .unwrap(),
        )
        .unwrap();
        let mut g = p.proc("f").unwrap().clone();
        localopt(&mut g);
        let rhs = rhs_list(&g);
        assert!(rhs.iter().filter(|e| e.reads_memory()).count() >= 2);
        assert!(
            rhs.iter().filter(|e| **e == Expr::var("gr")).count() >= 2,
            "global register must be reloaded after the call: {rhs:?}"
        );
    }

    #[test]
    fn failing_expressions_not_subject_to_cse() {
        let mut g =
            graph("f(bits32 a, bits32 b) { bits32 x, y; x = a / b; y = a / b; return (x, y); }");
        localopt(&mut g);
        let rhs = rhs_list(&g);
        assert_eq!(
            rhs.iter()
                .filter(|e| matches!(e, Expr::Binary(cmm_ir::BinOp::DivU, ..)))
                .count(),
            2,
            "possibly-failing division is recomputed, not reused: {rhs:?}"
        );
    }

    #[test]
    fn chains_split_at_joins() {
        // The join after the if has two predecessors; values computed in
        // one arm must not be reused after the join.
        let mut g = graph(
            r#"
            f(bits32 a, bits32 n) {
                bits32 x, y;
                if n == 0 { x = a + 1; } else { x = 2; }
                y = a + 1;
                return (x, y);
            }
            "#,
        );
        localopt(&mut g);
        let rhs = rhs_list(&g);
        assert_eq!(
            rhs.iter()
                .filter(|e| **e == Expr::add(Expr::var("a"), Expr::b32(1)))
                .count(),
            2,
            "a + 1 must be recomputed after the join: {rhs:?}"
        );
    }
}
