//! Backward variable liveness.
//!
//! The analysis is completely standard — which is the paper's point: the
//! `also` annotations became ordinary graph edges during translation, so
//! a variable used only in an exception handler (a continuation) is kept
//! live across the calls that can reach that handler, with **no special
//! cases for exceptions** in the analysis itself. (Compare Hennessy 1981
//! and the Drew–Gough–Ledermann register allocator, which had to treat
//! handlers specially or spill every shared variable to the stack.)

use crate::dataflow::{var_defs, var_uses};
use cmm_cfg::{Graph, NodeId};
use cmm_ir::Name;
use std::collections::BTreeSet;

/// Per-node live-in and live-out variable sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Live-in set of each node, indexed by node id.
    pub live_in: Vec<BTreeSet<Name>>,
    /// Live-out set of each node, indexed by node id.
    pub live_out: Vec<BTreeSet<Name>>,
}

impl Liveness {
    /// Computes liveness for the reachable part of a graph.
    pub fn compute(g: &Graph) -> Liveness {
        let n = g.nodes.len();
        let mut live_in = vec![BTreeSet::new(); n];
        let mut live_out = vec![BTreeSet::new(); n];
        let order: Vec<NodeId> = {
            let mut o = g.reverse_postorder();
            o.reverse(); // postorder converges fastest for backward problems
            o
        };
        let uses: Vec<BTreeSet<Name>> = (0..n)
            .map(|i| var_uses(g, NodeId(i as u32)).into_iter().collect())
            .collect();
        let defs: Vec<BTreeSet<Name>> = (0..n)
            .map(|i| var_defs(g, NodeId(i as u32)).into_iter().collect())
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &id in &order {
                let i = id.index();
                let mut out: BTreeSet<Name> = BTreeSet::new();
                for s in g.succs(id) {
                    out.extend(live_in[s.index()].iter().cloned());
                }
                let mut inn = uses[i].clone();
                for v in &out {
                    if !defs[i].contains(v) {
                        inn.insert(v.clone());
                    }
                }
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Variables live into a node.
    pub fn live_in(&self, id: NodeId) -> &BTreeSet<Name> {
        &self.live_in[id.index()]
    }

    /// Variables live out of a node.
    pub fn live_out(&self, id: NodeId) -> &BTreeSet<Name> {
        &self.live_out[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::{build_program, Node};
    use cmm_parse::parse_module;

    fn graph(src: &str) -> Graph {
        build_program(&parse_module(src).unwrap())
            .unwrap()
            .proc("f")
            .unwrap()
            .clone()
    }

    /// The key property from §4.4: a variable mentioned only in an
    /// exception handler is live across the call that can reach it.
    #[test]
    fn handler_variables_live_across_annotated_calls() {
        let g = graph(
            r#"
            f(bits32 x, bits32 y) {
                bits32 r;
                r = g(x) also cuts to k;
                return (r);
                continuation k(r):
                return (r + y);      /* y used only in the handler */
            }
            g(bits32 a) { return (a); }
            "#,
        );
        let live = Liveness::compute(&g);
        let call = g
            .ids()
            .find(|&i| matches!(g.node(i), Node::Call { .. }))
            .unwrap();
        assert!(
            live.live_in(call).contains(&Name::from("y")),
            "y must be live at the call because of the cuts-to edge"
        );
    }

    /// Without the annotation edge there is nothing keeping the handler
    /// variable alive — the pessimistic alternative the paper criticizes
    /// is unnecessary.
    #[test]
    fn unannotated_call_does_not_keep_handler_vars_alive() {
        let g = graph(
            r#"
            f(bits32 x, bits32 y) {
                bits32 r;
                r = g(x);
                return (r);
                continuation k(r):
                return (r + y);
            }
            g(bits32 a) { return (a); }
            "#,
        );
        let live = Liveness::compute(&g);
        let call = g
            .ids()
            .find(|&i| matches!(g.node(i), Node::Call { .. }))
            .unwrap();
        assert!(
            !live.live_in(call).contains(&Name::from("y")),
            "y is not live at the call when no edge reaches the handler"
        );
    }

    #[test]
    fn straight_line_liveness() {
        let g = graph("f(bits32 a) { bits32 b, c; b = a + 1; c = b * 2; return (c); }");
        let live = Liveness::compute(&g);
        let assigns: Vec<_> = g
            .ids()
            .filter(|&i| matches!(g.node(i), Node::Assign { .. }))
            .collect();
        // After c = b*2, only c is live.
        let last = *assigns.iter().min_by_key(|i| i.index()).unwrap();
        // (node ids are allocated back-to-front by the builder, so the
        // smallest assign id is the last in control order — verify by
        // checking its rhs mentions b)
        let Node::Assign { rhs, .. } = g.node(last) else {
            unreachable!()
        };
        assert!(rhs.names().contains(&Name::from("b")));
        assert_eq!(
            live.live_out(last).iter().collect::<Vec<_>>(),
            vec![&Name::from("c")]
        );
    }

    #[test]
    fn loop_carried_variables_stay_live() {
        let g = graph(
            r#"
            f(bits32 n) {
                bits32 s;
                s = 0;
              loop:
                if n == 0 { return (s); } else { s = s + n; n = n - 1; goto loop; }
            }
            "#,
        );
        let live = Liveness::compute(&g);
        let branch = g
            .ids()
            .find(|&i| matches!(g.node(i), Node::Branch { .. }))
            .unwrap();
        assert!(live.live_in(branch).contains(&Name::from("s")));
        assert!(live.live_in(branch).contains(&Name::from("n")));
    }
}
