//! Dead-code elimination.
//!
//! Removes `Assign v := e` nodes where `v` is a local variable that is
//! dead after the node and `e` cannot fail. (An expression that could
//! fail is kept: the paper leaves failing `%`-primitives *unspecified*,
//! but our semantics refines "unspecified" to an observable `Wrong`
//! state, and the optimizer preserves observations.) Memory stores and
//! assignments to global registers are never removed.
//!
//! Thanks to the annotation edges, a variable whose only use is inside an
//! exception handler is *live* at every call that can reach the handler,
//! so its definition is correctly retained — with no special-casing here.

use crate::liveness::Liveness;
use crate::ssa::ssa_names;
use cmm_cfg::{Graph, Node, NodeId};
use cmm_ir::Lvalue;

/// Runs dead-code elimination; returns the number of nodes removed.
pub fn dce(g: &mut Graph) -> usize {
    let locals = ssa_names(g);
    let mut removed_total = 0;
    loop {
        let live = Liveness::compute(g);
        let mut dead: Vec<(NodeId, NodeId)> = Vec::new(); // (node, its successor)
        for id in g.reverse_postorder() {
            if let Node::Assign {
                lhs: Lvalue::Var(v),
                rhs,
                next,
            } = g.node(id)
            {
                if locals.contains(v) && !live.live_out(id).contains(v) && !rhs.can_fail() {
                    dead.push((id, *next));
                }
            }
        }
        if dead.is_empty() {
            return removed_total;
        }
        removed_total += dead.len();
        // Bypass each dead node: redirect every edge into it to its
        // successor. Resolve chains of dead nodes transitively.
        let resolve = |mut n: NodeId| -> NodeId {
            let mut hops = 0;
            while let Some(&(_, next)) = dead.iter().find(|&&(d, _)| d == n) {
                n = next;
                hops += 1;
                debug_assert!(hops <= dead.len(), "dead chain cycle");
            }
            n
        };
        for id in g.ids() {
            let node = g.node_mut(id);
            node.map_succs(resolve);
        }
        let new_entry = resolve(g.entry);
        g.entry = new_entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn graph(src: &str) -> Graph {
        build_program(&parse_module(src).unwrap())
            .unwrap()
            .proc("f")
            .unwrap()
            .clone()
    }

    fn live_assign_count(g: &Graph) -> usize {
        g.reverse_postorder()
            .into_iter()
            .filter(|&id| matches!(g.node(id), Node::Assign { .. }))
            .count()
    }

    #[test]
    fn removes_unused_assignments() {
        let mut g = graph("f(bits32 a) { bits32 b, c; b = a + 1; c = 5; return (a); }");
        let removed = dce(&mut g);
        assert_eq!(removed, 2);
        assert_eq!(live_assign_count(&g), 0);
    }

    #[test]
    fn removes_transitively_dead_chains() {
        let mut g = graph("f(bits32 a) { bits32 b, c; b = a + 1; c = b * 2; return (a); }");
        dce(&mut g);
        assert_eq!(live_assign_count(&g), 0);
    }

    #[test]
    fn keeps_possibly_failing_expressions() {
        let mut g = graph("f(bits32 a, bits32 b) { bits32 c; c = a / b; return (a); }");
        let removed = dce(&mut g);
        assert_eq!(removed, 0);
        assert_eq!(live_assign_count(&g), 1);
    }

    #[test]
    fn keeps_memory_stores() {
        let mut g = graph("f(bits32 p) { bits32[p] = 1; return; }");
        assert_eq!(dce(&mut g), 0);
    }

    #[test]
    fn keeps_global_register_assignments() {
        let p =
            build_program(&parse_module("register bits32 gr; f() { gr = 1; return; }").unwrap())
                .unwrap();
        let mut g = p.proc("f").unwrap().clone();
        assert_eq!(dce(&mut g), 0);
    }

    /// The §4.4 scenario: a variable used only by a handler must survive
    /// DCE when (and only when) the call carries the annotation edge.
    #[test]
    fn handler_only_variables_survive_with_annotation() {
        let with_edge = r#"
            f(bits32 x) {
                bits32 y, r, d;
                y = x * 2;
                r = g() also cuts to k;
                return (r);
                continuation k(d):
                return (y + d);
            }
            g() { return (0); }
        "#;
        let mut g = graph(with_edge);
        assert_eq!(dce(&mut g), 0, "y is reachable through the cuts-to edge");

        let without_edge = with_edge.replace(" also cuts to k", "");
        let mut g = graph(&without_edge);
        assert_eq!(dce(&mut g), 1, "without the edge, y = x * 2 is dead");
    }
}
