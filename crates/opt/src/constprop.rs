//! Sparse constant propagation and folding over the SSA overlay.
//!
//! A definition is `Const` when its right-hand side folds to a literal
//! given the lattice values of its operands; φs join their arguments.
//! After the fixpoint, constant uses are rewritten to literals,
//! expressions are folded, and branches on constants are simplified.
//!
//! Folding never introduces or removes failure: an expression that could
//! fail (`%divu` with an unknown or zero divisor) is left in place, so a
//! program that would go wrong still goes wrong — the optimizer
//! preserves even the "unspecified" behaviours our semantics refines
//! into explicit `Wrong` states.

use crate::ssa::{DefId, Ssa};
use cmm_cfg::{Graph, Node, NodeId};
use cmm_ir::{Expr, Lit, Lvalue, Ty, Width};
use std::collections::HashMap;

/// The constant lattice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Lat {
    /// No information yet (optimistic).
    Top,
    /// Known constant.
    Const(Width, u64),
    /// Not a constant.
    Bottom,
}

fn join(a: Lat, b: Lat) -> Lat {
    match (a, b) {
        (Lat::Top, x) | (x, Lat::Top) => x,
        (Lat::Const(w1, v1), Lat::Const(w2, v2)) if w1 == w2 && v1 == v2 => a,
        _ => Lat::Bottom,
    }
}

/// Runs constant propagation and folding; returns the number of
/// expressions rewritten.
pub fn constprop(g: &mut Graph) -> usize {
    let ssa = Ssa::build(g);
    let values = solve(g, &ssa);

    // Rewrite: substitute constant uses, then fold.
    let mut changed = 0;
    let reachable: Vec<NodeId> = g.reverse_postorder();
    for id in reachable {
        let subst = |e: &Expr| -> Expr {
            e.substitute(&|n| match ssa.reaching(id, n).map(|d| values[&d]) {
                Some(Lat::Const(w, v)) => Some(Expr::Lit(Lit::bits(w, v))),
                _ => None,
            })
        };
        let node = g.node_mut(id);
        match node {
            Node::Assign { rhs, lhs, .. } => {
                let new = fold(&subst(rhs));
                if &new != rhs {
                    *rhs = new;
                    changed += 1;
                }
                if let Lvalue::Mem(_, a) = lhs {
                    let new = fold(&subst(a));
                    if &new != a {
                        *a = new;
                        changed += 1;
                    }
                }
            }
            Node::CopyOut { exprs, .. } => {
                for e in exprs {
                    let new = fold(&subst(e));
                    if &new != e {
                        *e = new;
                        changed += 1;
                    }
                }
            }
            Node::Branch { cond, t, f } => {
                let new = fold(&subst(cond));
                if let Expr::Lit(l) = &new {
                    // Branch on a constant: become a skip to the taken arm.
                    let taken = if l.bits != 0 { *t } else { *f };
                    *node = Node::CopyIn {
                        vars: vec![],
                        next: taken,
                    };
                    changed += 1;
                } else if &new != cond {
                    *cond = new;
                    changed += 1;
                }
            }
            _ => {}
        }
    }
    changed
}

/// Fixpoint over SSA definitions.
fn solve(g: &Graph, ssa: &Ssa) -> HashMap<DefId, Lat> {
    let mut values: HashMap<DefId, Lat> = (0..ssa.sites.len()).map(|d| (d, Lat::Top)).collect();
    // Simple round-robin iteration; the lattice has height 2 so this
    // converges quickly even without a worklist.
    let order: Vec<NodeId> = g.reverse_postorder();
    let mut changed = true;
    while changed {
        changed = false;
        for &id in &order {
            // φ defs at this node.
            if let Some(phis) = ssa.phis.get(&id) {
                for phi in phis {
                    let mut v = Lat::Top;
                    for &(_, d) in &phi.args {
                        v = join(v, values[&d]);
                    }
                    if phi.args.is_empty() {
                        v = Lat::Bottom;
                    }
                    if values[&phi.def] != v {
                        values.insert(phi.def, v);
                        changed = true;
                    }
                }
            }
            // Ordinary defs.
            for (key, &d) in ssa.node_defs.iter().filter(|((n, _), _)| *n == id) {
                let (_, var) = key;
                let v = match g.node(id) {
                    Node::Assign {
                        lhs: Lvalue::Var(lv),
                        rhs,
                        ..
                    } if lv == var => eval_lat(g, ssa, id, rhs, &values),
                    _ => Lat::Bottom, // CopyIn, Entry: unknown inputs
                };
                if values[&d] != v {
                    values.insert(d, v);
                    changed = true;
                }
            }
        }
    }
    values
}

#[allow(clippy::only_used_in_recursion)]
fn eval_lat(g: &Graph, ssa: &Ssa, at: NodeId, e: &Expr, values: &HashMap<DefId, Lat>) -> Lat {
    match e {
        Expr::Lit(l) => match l.ty {
            Ty::Bits(w) => Lat::Const(w, l.bits),
            Ty::Float(fw) => Lat::Const(
                if fw == cmm_ir::FWidth::F32 {
                    Width::W32
                } else {
                    Width::W64
                },
                l.bits,
            ),
        },
        Expr::Name(n) => match ssa.reaching(at, n) {
            Some(d) => values[&d],
            None => Lat::Bottom, // global, symbol, or untracked
        },
        Expr::Mem(..) => Lat::Bottom,
        Expr::Unary(op, a) => match eval_lat(g, ssa, at, a, values) {
            Lat::Top => Lat::Top,
            Lat::Const(w, v) => {
                let (r, rw) = op.eval(w, v);
                Lat::Const(rw, r)
            }
            Lat::Bottom => Lat::Bottom,
        },
        Expr::Binary(op, a, b) => {
            let (la, lb) = (
                eval_lat(g, ssa, at, a, values),
                eval_lat(g, ssa, at, b, values),
            );
            match (la, lb) {
                (Lat::Top, _) | (_, Lat::Top) => Lat::Top,
                (Lat::Const(wa, va), Lat::Const(wb, vb)) => {
                    let shiftish = matches!(
                        op,
                        cmm_ir::BinOp::Shl | cmm_ir::BinOp::ShrU | cmm_ir::BinOp::ShrS
                    );
                    if wa != wb && !shiftish {
                        return Lat::Bottom;
                    }
                    match op.eval(wa, va, vb) {
                        Ok((r, rw)) => Lat::Const(rw, r),
                        Err(_) => Lat::Bottom, // would fail: do not fold
                    }
                }
                _ => Lat::Bottom,
            }
        }
    }
}

/// Bottom-up constant folding of an expression. Never folds an
/// application that would fail.
pub fn fold(e: &Expr) -> Expr {
    match e {
        Expr::Lit(_) | Expr::Name(_) => e.clone(),
        Expr::Mem(ty, a) => Expr::Mem(*ty, Box::new(fold(a))),
        Expr::Unary(op, a) => {
            let fa = fold(a);
            if let Expr::Lit(l) = &fa {
                if let Ty::Bits(w) = l.ty {
                    let (r, rw) = op.eval(w, l.bits);
                    return Expr::Lit(Lit::bits(rw, r));
                }
            }
            Expr::Unary(*op, Box::new(fa))
        }
        Expr::Binary(op, a, b) => {
            let (fa, fb) = (fold(a), fold(b));
            if let (Expr::Lit(la), Expr::Lit(lb)) = (&fa, &fb) {
                if let (Ty::Bits(wa), Ty::Bits(wb)) = (la.ty, lb.ty) {
                    let shiftish = matches!(
                        op,
                        cmm_ir::BinOp::Shl | cmm_ir::BinOp::ShrU | cmm_ir::BinOp::ShrS
                    );
                    if wa == wb || shiftish {
                        if let Ok((r, rw)) = op.eval(wa, la.bits, lb.bits) {
                            return Expr::Lit(Lit::bits(rw, r));
                        }
                    }
                }
            }
            // Algebraic identities that cannot change failure behaviour.
            match (op, &fa, &fb) {
                (cmm_ir::BinOp::Add, x, Expr::Lit(l)) | (cmm_ir::BinOp::Add, Expr::Lit(l), x)
                    if l.bits == 0 && l.ty.is_bits() =>
                {
                    return x.clone();
                }
                (cmm_ir::BinOp::Sub, x, Expr::Lit(l)) if l.bits == 0 && l.ty.is_bits() => {
                    return x.clone();
                }
                (cmm_ir::BinOp::Mul, x, Expr::Lit(l)) | (cmm_ir::BinOp::Mul, Expr::Lit(l), x)
                    if l.bits == 1 && l.ty.is_bits() =>
                {
                    return x.clone();
                }
                _ => {}
            }
            Expr::Binary(*op, Box::new(fa), Box::new(fb))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn graph(src: &str) -> Graph {
        build_program(&parse_module(src).unwrap())
            .unwrap()
            .proc("f")
            .unwrap()
            .clone()
    }

    fn assigns_of(g: &Graph) -> Vec<Expr> {
        g.reverse_postorder()
            .into_iter()
            .filter_map(|id| match g.node(id) {
                Node::Assign { rhs, .. } => Some(rhs.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn propagates_through_straight_line_code() {
        let mut g = graph("f() { bits32 a, b, c; a = 2; b = a + 3; c = b * a; return (c); }");
        constprop(&mut g);
        let rhs = assigns_of(&g);
        assert!(rhs.contains(&Expr::b32(5)), "{rhs:?}");
        assert!(rhs.contains(&Expr::b32(10)), "{rhs:?}");
    }

    #[test]
    fn folds_branches_on_constants() {
        let mut g =
            graph("f() { bits32 a; a = 1; if a == 1 { return (10); } else { return (20); } }");
        constprop(&mut g);
        assert!(
            !g.reverse_postorder()
                .into_iter()
                .any(|id| matches!(g.node(id), Node::Branch { .. })),
            "branch should be folded away"
        );
    }

    #[test]
    fn joins_at_phi_points() {
        // s is 1 on both arms: propagates; t differs: does not.
        let mut g = graph(
            r#"
            f(bits32 n) {
                bits32 s, t, r;
                if n == 0 { s = 1; t = 1; } else { s = 1; t = 2; }
                r = s + t;
                return (r);
            }
            "#,
        );
        constprop(&mut g);
        let rhs = assigns_of(&g);
        // r = s + t becomes r = 1 + t (s known), not fully constant.
        assert!(
            rhs.iter().any(|e| matches!(
                e,
                Expr::Binary(cmm_ir::BinOp::Add, a, _) if matches!(**a, Expr::Lit(_))
            ) || matches!(e, Expr::Binary(cmm_ir::BinOp::Add, _, b) if matches!(**b, Expr::Lit(_)))),
            "{rhs:?}"
        );
    }

    #[test]
    fn never_folds_failing_division() {
        let mut g = graph("f() { bits32 a; a = 1 / 0; return (a); }");
        constprop(&mut g);
        let rhs = assigns_of(&g);
        assert!(
            rhs.iter()
                .any(|e| matches!(e, Expr::Binary(cmm_ir::BinOp::DivU, ..))),
            "division by zero must not be folded away: {rhs:?}"
        );
    }

    #[test]
    fn does_not_propagate_globals() {
        let p = build_program(
            &parse_module(
                r#"
                register bits32 gr = 5;
                f() { bits32 a; a = gr + 1; return (a); }
                "#,
            )
            .unwrap(),
        )
        .unwrap();
        let mut g = p.proc("f").unwrap().clone();
        constprop(&mut g);
        let rhs = assigns_of(&g);
        assert!(
            rhs.iter().any(|e| matches!(e, Expr::Binary(..))),
            "global register value must not be assumed: {rhs:?}"
        );
    }

    #[test]
    fn constant_reaches_exception_continuation() {
        // x is constant on both the normal and the exceptional path.
        let mut g = graph(
            r#"
            f() {
                bits32 x, r, d;
                x = 7;
                r = g() also cuts to k;
                return (x);
                continuation k(d):
                return (x + d);
            }
            g() { return (0); }
            "#,
        );
        constprop(&mut g);
        // The use of x in the continuation's return folds to 7 + d.
        let copyouts: Vec<Expr> = g
            .reverse_postorder()
            .into_iter()
            .filter_map(|id| match g.node(id) {
                Node::CopyOut { exprs, .. } => exprs.first().cloned(),
                _ => None,
            })
            .collect();
        assert!(
            copyouts.iter().any(|e| matches!(
                e,
                Expr::Binary(cmm_ir::BinOp::Add, a, _) if **a == Expr::b32(7)
            )),
            "{copyouts:?}"
        );
    }

    #[test]
    fn fold_identities() {
        let x = Expr::var("x");
        assert_eq!(fold(&Expr::add(x.clone(), Expr::b32(0))), x);
        assert_eq!(fold(&Expr::mul(Expr::b32(1), x.clone())), x);
        assert_eq!(fold(&Expr::add(Expr::b32(2), Expr::b32(3))), Expr::b32(5));
    }
}
