//! # cmm-opt — dataflow analysis and optimization of Abstract C--
//!
//! §6 of the paper: "Table 3 gives rules for adding dataflow information
//! to a C-- procedure, in terms of definitions, uses, copies, and kills.
//! This information is enough to enable standard optimizations like
//! common-subexpression elimination, partial-redundancy elimination,
//! constant propagation, copy propagation, dead-code elimination, code
//! motion, etc. The optimizer can perform all the usual rearrangements,
//! provided it respects the dataflow and it doesn't insert code after
//! `Exit`, `Jump`, `CutTo`, or the abort part of a continuation bundle."
//!
//! The crate provides:
//!
//! * [`dataflow`] — the Table 3 rules, verbatim, over *slots* (variables,
//!   the memory pseudo-variable `M`, and the elements of the
//!   argument-passing area `A`);
//! * [`liveness`] — classical backward liveness over the graph, which is
//!   correct in the presence of exceptions *because* the annotation edges
//!   are ordinary edges of the graph (this is the paper's central claim
//!   about optimization);
//! * [`dom`] — dominator trees and dominance frontiers;
//! * [`ssa`] — static single-assignment numbering as an overlay on the
//!   graph (the form of the paper's Figure 6);
//! * passes — sparse constant propagation and folding ([`constprop`]),
//!   local copy propagation and value-numbering CSE ([`localopt`]),
//!   dead-code elimination ([`dce`]), and callee-saves register
//!   promotion ([`callee_saves`]), which respects the rule that "the
//!   callee-saves registers must be considered killed by flow edges from
//!   the call to any cut-to continuations" (§4.2);
//! * [`pipeline`] — the standard pass ordering.
//!
//! All passes are *semantics-preserving*: the property tests in
//! `tests/optimizer_soundness.rs` run the `cmm-sem` abstract machine on
//! random programs before and after optimization and require identical
//! observable results.

pub mod callee_saves;
pub mod constprop;
pub mod dataflow;
pub mod dce;
pub mod dom;
pub mod liveness;
pub mod localopt;
pub mod pipeline;
pub mod ssa;

pub use dataflow::{flow, NodeFlow, Slot};
pub use dom::Dominators;
pub use liveness::Liveness;
pub use pipeline::{optimize_graph, optimize_program, OptOptions, OptStats};
pub use ssa::Ssa;
