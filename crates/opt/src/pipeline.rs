//! The optimization pipeline.
//!
//! "Therefore, a single optimizer should suffice for all C-- programs,
//! regardless of the original source language" (§1) — this is that
//! optimizer. Passes run in the classical order, iterated until nothing
//! changes (bounded), then callee-saves promotion runs **last**: until
//! then the callee-saves set `s` is empty everywhere (the direct
//! translation never populates it), so cut edges kill nothing and the
//! value-level passes need no kill handling.

use crate::callee_saves::{promote_callee_saves, CalleeSavesStats};
use crate::constprop::constprop;
use crate::dce::dce;
use crate::localopt::localopt;
use cmm_cfg::{Graph, Program, YIELD};

/// Options controlling the pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OptOptions {
    /// Run constant propagation and folding.
    pub constprop: bool,
    /// Run local copy propagation and CSE.
    pub localopt: bool,
    /// Run dead-code elimination.
    pub dce: bool,
    /// Callee-saves registers available for promotion (0 disables the
    /// pass).
    pub callee_save_regs: usize,
    /// Maximum pass-pipeline iterations.
    pub max_iters: usize,
}

impl Default for OptOptions {
    fn default() -> OptOptions {
        OptOptions {
            constprop: true,
            localopt: true,
            dce: true,
            callee_save_regs: 6,
            max_iters: 4,
        }
    }
}

impl OptOptions {
    /// Everything off: the identity pipeline.
    pub fn none() -> OptOptions {
        OptOptions {
            constprop: false,
            localopt: false,
            dce: false,
            callee_save_regs: 0,
            max_iters: 1,
        }
    }
}

/// What the pipeline did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OptStats {
    /// Expressions rewritten by constant propagation/folding.
    pub constprop_rewrites: usize,
    /// Rewrites by copy propagation and CSE.
    pub local_rewrites: usize,
    /// Nodes removed by DCE.
    pub dce_removed: usize,
    /// Callee-saves promotion results.
    pub callee_saves: CalleeSavesStats,
    /// Pipeline iterations executed.
    pub iterations: usize,
}

/// Optimizes a single graph in place.
pub fn optimize_graph(g: &mut Graph, opts: &OptOptions) -> OptStats {
    let mut stats = OptStats::default();
    for _ in 0..opts.max_iters {
        stats.iterations += 1;
        let mut changed = 0;
        if opts.constprop {
            let n = constprop(g);
            stats.constprop_rewrites += n;
            changed += n;
        }
        if opts.localopt {
            let n = localopt(g);
            stats.local_rewrites += n;
            changed += n;
        }
        if opts.dce {
            let n = dce(g);
            stats.dce_removed += n;
            changed += n;
        }
        if changed == 0 {
            break;
        }
    }
    if opts.callee_save_regs > 0 {
        stats.callee_saves = promote_callee_saves(g, opts.callee_save_regs);
    }
    stats
}

/// Optimizes every procedure of a program in place (the `yield`
/// procedure — a bare `Yield` node — is left alone: "Yield: not in any
/// optimized procedure", Table 3).
pub fn optimize_program(p: &mut Program, opts: &OptOptions) -> OptStats {
    let mut total = OptStats::default();
    let names: Vec<_> = p.procs.keys().cloned().collect();
    for name in names {
        if name == YIELD {
            continue;
        }
        let mut g = p.procs.remove(&name).expect("procedure present");
        let s = optimize_graph(&mut g, opts);
        total.constprop_rewrites += s.constprop_rewrites;
        total.local_rewrites += s.local_rewrites;
        total.dce_removed += s.dce_removed;
        total.callee_saves.nodes_inserted += s.callee_saves.nodes_inserted;
        total.callee_saves.vars_promoted += s.callee_saves.vars_promoted;
        total.callee_saves.vars_blocked_by_cuts += s.callee_saves.vars_blocked_by_cuts;
        total.iterations = total.iterations.max(s.iterations);
        p.procs.insert(name, g);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;
    use cmm_sem::{Machine, Status, Value};

    fn run(p: &Program, proc: &str, args: Vec<Value>) -> Status {
        let mut m = Machine::new(p);
        m.start(proc, args).unwrap();
        m.run(10_000_000)
    }

    #[test]
    fn full_pipeline_preserves_figure1() {
        let src = r#"
            sp1(bits32 n) {
                bits32 s, p;
                if n == 1 { return (1, 1); }
                else { s, p = sp1(n - 1); return (s + n, p * n); }
            }
        "#;
        let prog = build_program(&parse_module(src).unwrap()).unwrap();
        let mut opt = prog.clone();
        optimize_program(&mut opt, &OptOptions::default());
        assert_eq!(
            run(&prog, "sp1", vec![Value::b32(8)]),
            run(&opt, "sp1", vec![Value::b32(8)])
        );
    }

    #[test]
    fn pipeline_makes_progress_and_terminates() {
        let src = r#"
            f(bits32 n) {
                bits32 a, b, c, d;
                a = 2;
                b = a + a;
                c = b * b;
                d = n + 0;
                if c == 16 { return (d); } else { return (c); }
            }
        "#;
        let mut prog = build_program(&parse_module(src).unwrap()).unwrap();
        let stats = optimize_program(&mut prog, &OptOptions::default());
        assert!(stats.constprop_rewrites > 0);
        assert!(stats.dce_removed > 0);
        assert_eq!(
            run(&prog, "f", vec![Value::b32(9)]),
            Status::Terminated(vec![Value::b32(9)])
        );
    }

    #[test]
    fn exception_heavy_code_survives_pipeline() {
        let src = r#"
            f(bits32 x) {
                bits32 y, r, d;
                y = x * 2;
                r = g(k) also cuts to k;
                return (r + y);
                continuation k(d):
                return (d + y);
            }
            g(bits32 kk) { cut to kk(100); return (0); }
        "#;
        let prog = build_program(&parse_module(src).unwrap()).unwrap();
        let mut opt = prog.clone();
        let stats = optimize_program(&mut opt, &OptOptions::default());
        assert_eq!(
            run(&prog, "f", vec![Value::b32(4)]),
            run(&opt, "f", vec![Value::b32(4)])
        );
        // y is blocked from callee-saves promotion by the cut edge.
        assert!(stats.callee_saves.vars_blocked_by_cuts > 0);
    }

    #[test]
    fn identity_options_do_nothing() {
        let src = "f() { bits32 a; a = 1 + 1; return (a); }";
        let prog = build_program(&parse_module(src).unwrap()).unwrap();
        let mut opt = prog.clone();
        let stats = optimize_program(&mut opt, &OptOptions::none());
        assert_eq!(
            stats.constprop_rewrites + stats.local_rewrites + stats.dce_removed,
            0
        );
        assert_eq!(prog.proc("f").unwrap(), opt.proc("f").unwrap());
    }
}
