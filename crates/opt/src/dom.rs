//! Dominator trees and dominance frontiers (Cooper–Harvey–Kennedy).

use cmm_cfg::{Graph, NodeId};
use std::collections::BTreeMap;

/// Dominator information for the reachable part of a graph.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// Reverse postorder of reachable nodes.
    pub rpo: Vec<NodeId>,
    /// Position of each node in `rpo` (unreachable nodes absent).
    pub rpo_index: BTreeMap<NodeId, usize>,
    /// Immediate dominator of each node (the entry maps to itself).
    pub idom: BTreeMap<NodeId, NodeId>,
    /// Dominance frontier of each node.
    pub frontier: BTreeMap<NodeId, Vec<NodeId>>,
    /// Children in the dominator tree.
    pub children: BTreeMap<NodeId, Vec<NodeId>>,
}

impl Dominators {
    /// Computes dominators and dominance frontiers.
    pub fn compute(g: &Graph) -> Dominators {
        let rpo = g.reverse_postorder();
        let rpo_index: BTreeMap<NodeId, usize> =
            rpo.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let preds_all = g.preds();
        // Predecessors restricted to reachable nodes.
        let preds: BTreeMap<NodeId, Vec<NodeId>> = rpo
            .iter()
            .map(|&n| {
                let ps = preds_all[n.index()]
                    .iter()
                    .copied()
                    .filter(|p| rpo_index.contains_key(p))
                    .collect();
                (n, ps)
            })
            .collect();

        let entry = g.entry;
        let mut idom: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        idom.insert(entry, entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<NodeId> = None;
                for &p in &preds[&b] {
                    if idom.contains_key(&p) {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &rpo_index, p, cur),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }

        // Dominance frontiers.
        let mut frontier: BTreeMap<NodeId, Vec<NodeId>> =
            rpo.iter().map(|&n| (n, Vec::new())).collect();
        for &b in &rpo {
            let ps = &preds[&b];
            if ps.len() >= 2 {
                for &p in ps {
                    let mut runner = p;
                    while runner != idom[&b] {
                        let fr = frontier.get_mut(&runner).expect("reachable node");
                        if !fr.contains(&b) {
                            fr.push(b);
                        }
                        runner = idom[&runner];
                    }
                }
            }
        }

        // Dominator-tree children.
        let mut children: BTreeMap<NodeId, Vec<NodeId>> =
            rpo.iter().map(|&n| (n, Vec::new())).collect();
        for &n in &rpo {
            if n != entry {
                children.get_mut(&idom[&n]).expect("reachable").push(n);
            }
        }

        Dominators {
            rpo,
            rpo_index,
            idom,
            frontier,
            children,
        }
    }

    /// True if `a` dominates `b` (both must be reachable).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut n = b;
        loop {
            if n == a {
                return true;
            }
            let up = self.idom[&n];
            if up == n {
                return n == a;
            }
            n = up;
        }
    }
}

fn intersect(
    idom: &BTreeMap<NodeId, NodeId>,
    rpo_index: &BTreeMap<NodeId, usize>,
    mut a: NodeId,
    mut b: NodeId,
) -> NodeId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn graph(src: &str) -> Graph {
        build_program(&parse_module(src).unwrap())
            .unwrap()
            .proc("f")
            .unwrap()
            .clone()
    }

    #[test]
    fn entry_dominates_everything() {
        let g = graph(
            r#"
            f(bits32 n) {
                bits32 s;
                s = 0;
              loop:
                if n == 0 { return (s); } else { s = s + n; n = n - 1; goto loop; }
            }
            "#,
        );
        let d = Dominators::compute(&g);
        for &n in &d.rpo {
            assert!(d.dominates(g.entry, n));
        }
    }

    #[test]
    fn join_points_have_frontiers() {
        let g = graph(
            r#"
            f(bits32 n) {
                bits32 s;
                if n == 0 { s = 1; } else { s = 2; }
                return (s);
            }
            "#,
        );
        let d = Dominators::compute(&g);
        // The branch node's frontier is empty (it dominates the join);
        // the two assignment arms have the join in their frontier.
        let branch = g
            .ids()
            .find(|&i| matches!(g.node(i), cmm_cfg::Node::Branch { .. }))
            .unwrap();
        let assigns: Vec<NodeId> = g
            .ids()
            .filter(|&i| matches!(g.node(i), cmm_cfg::Node::Assign { .. }))
            .filter(|i| d.rpo_index.contains_key(i))
            .collect();
        assert!(d.frontier[&branch].is_empty());
        let mut joins: Vec<NodeId> = assigns.iter().flat_map(|a| d.frontier[a].clone()).collect();
        assert_eq!(joins.len(), 2, "each arm has the join in its frontier");
        assert_eq!(joins[0], joins[1], "both arms meet at the same join");
        joins.dedup();
        assert_eq!(joins.len(), 1);
    }

    #[test]
    fn idom_chain_reaches_entry() {
        let g = graph("f() { if 1 { return (1); } else { return (2); } }");
        let d = Dominators::compute(&g);
        for &n in &d.rpo {
            let mut cur = n;
            let mut hops = 0;
            while cur != g.entry {
                cur = d.idom[&cur];
                hops += 1;
                assert!(hops < 1000, "idom chain must terminate");
            }
        }
    }
}
