//! Static single-assignment numbering (the paper's Figure 6).
//!
//! "The dataflow information is expressed as a static single-assignment
//! (SSA) numbering of the variables" (§6). The numbering here is an
//! *overlay*: the graph itself is untouched, and the overlay records, for
//! every variable use at every node, which definition reaches it, with
//! φ-definitions at join points. (The paper notes that the continuation
//! prologues chosen by the dispatcher "roughly correspond to φ-nodes in
//! SSA form", §4.2 footnote.)

use crate::dataflow::{var_defs, var_uses};
use crate::dom::Dominators;
use cmm_cfg::{Graph, NodeId};
use cmm_ir::Name;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Index of a definition in [`Ssa::sites`].
pub type DefId = usize;

/// Where a definition comes from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DefSite {
    /// An ordinary definition performed by a node (`Assign`, `CopyIn`,
    /// or the implicit all-variables definition at `Entry`).
    Node {
        /// The defining node.
        node: NodeId,
        /// The variable defined.
        var: Name,
    },
    /// A φ-definition at a join point.
    Phi {
        /// The join node.
        node: NodeId,
        /// The variable merged.
        var: Name,
    },
}

impl DefSite {
    /// The variable this definition defines.
    pub fn var(&self) -> &Name {
        match self {
            DefSite::Node { var, .. } | DefSite::Phi { var, .. } => var,
        }
    }

    /// The node the definition is attached to.
    pub fn node(&self) -> NodeId {
        match self {
            DefSite::Node { node, .. } | DefSite::Phi { node, .. } => *node,
        }
    }
}

/// A φ-function: `var.k = φ(pred₁: var.i, pred₂: var.j, ...)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Phi {
    /// The variable merged.
    pub var: Name,
    /// The definition this φ creates.
    pub def: DefId,
    /// One argument per predecessor edge: which definition flows in.
    pub args: Vec<(NodeId, DefId)>,
}

/// The SSA overlay for one graph.
#[derive(Clone, Debug, Default)]
pub struct Ssa {
    /// All definition sites, in renaming order.
    pub sites: Vec<DefSite>,
    /// φ-functions at each join node.
    pub phis: BTreeMap<NodeId, Vec<Phi>>,
    /// For each variable use at each node, the reaching definition.
    /// Uses of names that are not SSA-tracked (globals, procedure and
    /// data names) are absent.
    pub use_defs: HashMap<(NodeId, Name), DefId>,
    /// The definition created *at* a node for a variable (excluding φs).
    pub node_defs: HashMap<(NodeId, Name), DefId>,
    /// SSA version number of each definition (per variable, counted from
    /// 1 in renaming order).
    pub versions: Vec<u32>,
}

/// The names SSA tracks for a graph: declared variables (formals, locals,
/// temporaries) and continuation names (bound at `Entry`). Global
/// registers and top-level symbols are *not* tracked — globals may be
/// redefined by any call, so propagating them would be unsound.
pub fn ssa_names(g: &Graph) -> BTreeSet<Name> {
    let mut s: BTreeSet<Name> = g.vars.iter().map(|(n, _)| n.clone()).collect();
    s.extend(g.continuations().iter().map(|(n, _)| n.clone()));
    s
}

impl Ssa {
    /// Builds the SSA overlay for a graph.
    pub fn build(g: &Graph) -> Ssa {
        let doms = Dominators::compute(g);
        let tracked = ssa_names(g);
        let reachable: BTreeSet<NodeId> = doms.rpo.iter().copied().collect();

        // Definition sites per variable.
        let mut def_nodes: BTreeMap<Name, BTreeSet<NodeId>> = BTreeMap::new();
        for &n in &doms.rpo {
            for v in var_defs(g, n) {
                if tracked.contains(&v) {
                    def_nodes.entry(v).or_default().insert(n);
                }
            }
        }

        // φ placement by iterated dominance frontier.
        let mut phi_vars: BTreeMap<NodeId, BTreeSet<Name>> = BTreeMap::new();
        for (v, sites) in &def_nodes {
            let mut work: Vec<NodeId> = sites.iter().copied().collect();
            let mut placed: BTreeSet<NodeId> = BTreeSet::new();
            while let Some(n) = work.pop() {
                for &y in &doms.frontier[&n] {
                    if placed.insert(y) {
                        phi_vars.entry(y).or_default().insert(v.clone());
                        if !sites.contains(&y) {
                            work.push(y);
                        }
                    }
                }
            }
        }

        let mut ssa = Ssa::default();
        let mut var_counts: HashMap<Name, u32> = HashMap::new();

        // Create φ defs up front (renaming fills their arguments).
        for (&node, vars) in &phi_vars {
            let mut phis = Vec::new();
            for v in vars {
                let def = ssa.sites.len();
                ssa.sites.push(DefSite::Phi {
                    node,
                    var: v.clone(),
                });
                ssa.versions.push(0); // assigned during renaming
                phis.push(Phi {
                    var: v.clone(),
                    def,
                    args: Vec::new(),
                });
            }
            ssa.phis.insert(node, phis);
        }

        // Renaming: iterative DFS over the dominator tree.
        let mut stacks: HashMap<Name, Vec<DefId>> = HashMap::new();
        enum Action {
            Enter(NodeId),
            Leave(Vec<Name>), // names pushed at the node being left
        }
        let mut work = vec![Action::Enter(g.entry)];
        while let Some(action) = work.pop() {
            match action {
                Action::Enter(b) => {
                    let mut pushed: Vec<Name> = Vec::new();
                    // φ defs first.
                    if let Some(phis) = ssa.phis.get(&b) {
                        for phi in phis.clone() {
                            let ver = bump(&mut var_counts, &phi.var);
                            ssa.versions[phi.def] = ver;
                            stacks.entry(phi.var.clone()).or_default().push(phi.def);
                            pushed.push(phi.var.clone());
                        }
                    }
                    // Uses see the state before the node's own defs.
                    for v in var_uses(g, b) {
                        if !tracked.contains(&v) {
                            continue;
                        }
                        if let Some(&d) = stacks.get(&v).and_then(|s| s.last()) {
                            ssa.use_defs.insert((b, v), d);
                        }
                    }
                    // Ordinary defs.
                    for v in var_defs(g, b) {
                        if !tracked.contains(&v) {
                            continue;
                        }
                        let def = ssa.sites.len();
                        ssa.sites.push(DefSite::Node {
                            node: b,
                            var: v.clone(),
                        });
                        ssa.versions.push(bump(&mut var_counts, &v));
                        ssa.node_defs.insert((b, v.clone()), def);
                        stacks.entry(v.clone()).or_default().push(def);
                        pushed.push(v);
                    }
                    // Fill φ arguments of CFG successors.
                    for s in g.succs(b) {
                        if !reachable.contains(&s) {
                            continue;
                        }
                        if let Some(phis) = ssa.phis.get_mut(&s) {
                            for phi in phis {
                                if let Some(&d) = stacks.get(&phi.var).and_then(|st| st.last()) {
                                    phi.args.push((b, d));
                                }
                            }
                        }
                    }
                    work.push(Action::Leave(pushed));
                    for &c in &doms.children[&b] {
                        work.push(Action::Enter(c));
                    }
                }
                Action::Leave(pushed) => {
                    for v in pushed {
                        stacks.get_mut(&v).expect("pushed var has a stack").pop();
                    }
                }
            }
        }
        ssa
    }

    /// The reaching definition for a use of `v` at node `n`, if tracked.
    pub fn reaching(&self, n: NodeId, v: &Name) -> Option<DefId> {
        self.use_defs.get(&(n, v.clone())).copied()
    }

    /// `var.version` display form of a definition.
    pub fn def_name(&self, d: DefId) -> String {
        format!("{}.{}", self.sites[d].var(), self.versions[d])
    }

    /// Checks the central SSA invariant: every use's reaching definition
    /// is at a node that dominates the use (φ arguments are checked
    /// against the corresponding predecessor). Returns offending pairs.
    pub fn verify(&self, g: &Graph) -> Vec<(NodeId, Name)> {
        let doms = Dominators::compute(g);
        let mut bad = Vec::new();
        for ((node, var), &def) in &self.use_defs {
            let site = self.sites[def].node();
            if !doms.rpo_index.contains_key(node) {
                continue;
            }
            if !doms.dominates(site, *node) {
                bad.push((*node, var.clone()));
            }
        }
        for phis in self.phis.values() {
            for phi in phis {
                for &(pred, def) in &phi.args {
                    let site = self.sites[def].node();
                    if !doms.dominates(site, pred) {
                        bad.push((pred, phi.var.clone()));
                    }
                }
            }
        }
        bad
    }
}

fn bump(counts: &mut HashMap<Name, u32>, v: &Name) -> u32 {
    let c = counts.entry(v.clone()).or_insert(0);
    *c += 1;
    *c
}

/// Renders the graph with SSA numbering, in the style of Figure 6.
pub fn ssa_to_string(g: &Graph, ssa: &Ssa) -> String {
    use std::fmt::Write as _;
    let mut out = format!("SSA for {}:\n", g.name);
    for id in g.reverse_postorder() {
        if let Some(phis) = ssa.phis.get(&id) {
            for phi in phis {
                let args: Vec<String> = phi
                    .args
                    .iter()
                    .map(|&(p, d)| format!("{p}: {}", ssa.def_name(d)))
                    .collect();
                let _ = writeln!(
                    out,
                    "  {id}: {} = phi({})",
                    ssa.def_name(phi.def),
                    args.join(", ")
                );
            }
        }
        let mut line = format!("  {}", cmm_cfg::display::node_to_string(g, id));
        // Annotate uses and defs.
        let uses: Vec<String> = var_uses(g, id)
            .into_iter()
            .filter_map(|v| ssa.reaching(id, &v).map(|d| ssa.def_name(d)))
            .collect();
        let defs: Vec<String> = var_defs(g, id)
            .into_iter()
            .filter_map(|v| ssa.node_defs.get(&(id, v)).map(|&d| ssa.def_name(d)))
            .collect();
        if !uses.is_empty() {
            line.push_str(&format!("  uses[{}]", uses.join(", ")));
        }
        if !defs.is_empty() {
            line.push_str(&format!("  defs[{}]", defs.join(", ")));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn graph(src: &str) -> Graph {
        build_program(&parse_module(src).unwrap())
            .unwrap()
            .proc("f")
            .unwrap()
            .clone()
    }

    #[test]
    fn straight_line_has_no_phis() {
        let g = graph("f(bits32 a) { bits32 b; b = a + 1; b = b * 2; return (b); }");
        let ssa = Ssa::build(&g);
        assert!(ssa.phis.is_empty());
        assert!(ssa.verify(&g).is_empty());
        // b has two ordinary definitions with distinct versions.
        let b_defs: Vec<_> = ssa
            .sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.var() == &Name::from("b") && matches!(s, DefSite::Node { .. }))
            .collect();
        // Entry also defines b once; plus the two assignments.
        assert_eq!(b_defs.len(), 3);
    }

    #[test]
    fn diamond_gets_a_phi() {
        let g = graph(
            r#"
            f(bits32 n) {
                bits32 s;
                if n == 0 { s = 1; } else { s = 2; }
                return (s);
            }
            "#,
        );
        let ssa = Ssa::build(&g);
        let phi_count: usize = ssa
            .phis
            .values()
            .map(|ps| ps.iter().filter(|p| p.var == "s").count())
            .sum();
        assert_eq!(phi_count, 1, "{}", ssa_to_string(&g, &ssa));
        let phi = ssa.phis.values().flatten().find(|p| p.var == "s").unwrap();
        assert_eq!(phi.args.len(), 2);
        assert!(ssa.verify(&g).is_empty());
    }

    #[test]
    fn loop_gets_phis_for_carried_vars() {
        let g = graph(
            r#"
            f(bits32 n) {
                bits32 s;
                s = 0;
              loop:
                if n == 0 { return (s); } else { s = s + n; n = n - 1; goto loop; }
            }
            "#,
        );
        let ssa = Ssa::build(&g);
        let phi_vars: BTreeSet<&Name> = ssa.phis.values().flatten().map(|p| &p.var).collect();
        assert!(phi_vars.contains(&Name::from("s")));
        assert!(phi_vars.contains(&Name::from("n")));
        assert!(ssa.verify(&g).is_empty());
    }

    /// Exception edges participate in SSA: the continuation is a join of
    /// the normal path (fallthrough) and the exceptional edge from the
    /// call, exactly as in Figure 6 of the paper.
    #[test]
    fn exception_edges_create_joins() {
        let g = graph(
            r#"
            f(bits32 a) {
                bits32 b, c, d;
                b = a;
                c = a;
                b, c = g() also unwinds to k;
                c = b + c + a;
                return (c);
                continuation k(d):
                return (b + d);
            }
            g() { return (1, 2); }
            "#,
        );
        let ssa = Ssa::build(&g);
        assert!(ssa.verify(&g).is_empty(), "{}", ssa_to_string(&g, &ssa));
        // The use of b in the continuation must see a definition that
        // dominates the call (the SSA check above enforces it); print
        // form must contain a phi or direct version for b.
        let s = ssa_to_string(&g, &ssa);
        assert!(s.contains("phi") || s.contains("b."), "{s}");
    }

    #[test]
    fn versions_count_from_one() {
        let g = graph("f(bits32 a) { bits32 b; b = 1; b = 2; return (b); }");
        let ssa = Ssa::build(&g);
        let mut versions: Vec<u32> = ssa
            .sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.var() == &Name::from("b"))
            .map(|(i, _)| ssa.versions[i])
            .collect();
        versions.sort_unstable();
        assert_eq!(versions, vec![1, 2, 3]);
    }
}
