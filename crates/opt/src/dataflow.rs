//! The dataflow rules of Table 3.
//!
//! Each node's definitions, uses, copies, and kills, "in terms of
//! definitions, uses, copies, and kills", where `fv(e)` is the free
//! variables of `e`, "possibly including the variable `M`, which
//! represents memory".

use cmm_cfg::{Graph, Node, NodeId};
use cmm_ir::{Expr, Lvalue, Name};

/// A dataflow slot: a variable, the memory pseudo-variable `M`, or an
/// element of the argument-passing area `A`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Slot {
    /// A local variable (or global register) by name.
    Var(Name),
    /// The memory pseudo-variable `M` of Table 3.
    Mem,
    /// `A[i]`, an element of the argument-passing area (0-based here;
    /// the paper numbers from 1).
    Area(usize),
}

/// Dataflow facts for one node, per Table 3.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NodeFlow {
    /// Slots read by the node (before its definitions take effect).
    pub uses: Vec<Slot>,
    /// Slots written by the node on every outgoing edge.
    pub defs: Vec<Slot>,
    /// Copies performed by the node, as (destination, source) pairs —
    /// `CopyIn` and `CopyOut` are pure copies, which copy propagation
    /// may exploit.
    pub copies: Vec<(Slot, Slot)>,
    /// Per-edge definitions: `(target, slots)` — a `Call` defines
    /// `A[0..N)` along the edge to each continuation, where `N` is that
    /// continuation's parameter count.
    pub edge_defs: Vec<(NodeId, Vec<Slot>)>,
    /// Per-edge kills: along each `also cuts to` edge, "for each `v`
    /// that could be in `s` when the code is executed, kill `v`"
    /// (callee-saves registers are not restored by a cut).
    pub edge_kills: Vec<(NodeId, Vec<Name>)>,
}

fn fv(e: &Expr, out: &mut Vec<Slot>) {
    e.visit_names(&mut |n| out.push(Slot::Var(n.clone())));
    if e.reads_memory() {
        out.push(Slot::Mem);
    }
}

/// The parameter count of the continuation beginning at `node` (its
/// `CopyIn` arity), or 0.
fn cont_params(g: &Graph, node: NodeId) -> usize {
    match g.node(node) {
        Node::CopyIn { vars, .. } => vars.len(),
        _ => 0,
    }
}

/// Computes the Table 3 dataflow facts for one node.
///
/// `saves_at` is "the set of variables that could be in `s` when the code
/// is executed" at this node — pass the callee-saves set chosen by the
/// optimizer (empty for unoptimized code, where the direct translation
/// never populates `s`).
pub fn flow(g: &Graph, id: NodeId, saves_at: &[Name]) -> NodeFlow {
    let mut f = NodeFlow::default();
    match g.node(id) {
        // Entry: defines every variable (the environment is fresh) and
        // the incoming parameters A[0..N).
        Node::Entry { conts, .. } => {
            for (v, _) in &g.vars {
                f.defs.push(Slot::Var(v.clone()));
            }
            for (k, _) in conts {
                f.defs.push(Slot::Var(k.clone()));
            }
            for i in 0..g.arity {
                f.defs.push(Slot::Area(i));
            }
        }
        // Exit: uses M and the result values A[0..N).
        Node::Exit { .. } => {
            f.uses.push(Slot::Mem);
            // The number of results is not statically recorded at Exit;
            // conservatively, whatever a preceding CopyOut placed is
            // used. We expose this as a use of every area slot the
            // procedure ever fills; liveness treats Exit as a use of all
            // upstream CopyOut values through the straight-line chain.
            for i in 0..max_copyout_len(g) {
                f.uses.push(Slot::Area(i));
            }
        }
        // CopyIn pv: pv[i] = A[i].
        Node::CopyIn { vars, .. } => {
            for (i, v) in vars.iter().enumerate() {
                f.uses.push(Slot::Area(i));
                f.defs.push(Slot::Var(v.clone()));
                f.copies.push((Slot::Var(v.clone()), Slot::Area(i)));
            }
        }
        // CopyOut pe: A[i] = pe[i].
        Node::CopyOut { exprs, .. } => {
            for (i, e) in exprs.iter().enumerate() {
                fv(e, &mut f.uses);
                f.defs.push(Slot::Area(i));
                if let Expr::Name(n) = e {
                    f.copies.push((Slot::Area(i), Slot::Var(n.clone())));
                }
            }
        }
        // CalleeSaves: no effect on dataflow.
        Node::CalleeSaves { .. } => {}
        // Assign v e / Assign type[a] e.
        Node::Assign { lhs, rhs, .. } => {
            fv(rhs, &mut f.uses);
            match lhs {
                Lvalue::Var(v) => {
                    f.defs.push(Slot::Var(v.clone()));
                    if let Expr::Name(n) = rhs {
                        f.copies.push((Slot::Var(v.clone()), Slot::Var(n.clone())));
                    }
                }
                Lvalue::Mem(_, a) => {
                    fv(a, &mut f.uses);
                    f.defs.push(Slot::Mem);
                }
            }
        }
        // Branch π: uses fv(π).
        Node::Branch { cond, .. } => fv(cond, &mut f.uses),
        // Call: uses fv(e_f), uses and defines M, uses the outgoing
        // arguments A[0..N); defines A[0..N_k) along the edge to each
        // continuation; kills callee-saves along cut edges; if abort,
        // the results escape along the (implicit) exit edge.
        Node::Call { callee, bundle, .. } => {
            fv(callee, &mut f.uses);
            f.uses.push(Slot::Mem);
            f.defs.push(Slot::Mem);
            for i in 0..max_copyout_len(g) {
                f.uses.push(Slot::Area(i));
            }
            for &t in bundle.returns.iter().chain(bundle.unwinds.iter()) {
                let n = cont_params(g, t);
                f.edge_defs.push((t, (0..n).map(Slot::Area).collect()));
            }
            for &t in &bundle.cuts {
                let n = cont_params(g, t);
                f.edge_defs.push((t, (0..n).map(Slot::Area).collect()));
                f.edge_kills.push((t, saves_at.to_vec()));
            }
        }
        // Jump: uses fv(e_f), M, and the outgoing arguments.
        Node::Jump { callee } => {
            fv(callee, &mut f.uses);
            f.uses.push(Slot::Mem);
            for i in 0..max_copyout_len(g) {
                f.uses.push(Slot::Area(i));
            }
        }
        // CutTo: uses fv(e), M, and the outgoing arguments.
        Node::CutTo { cont, cuts } => {
            fv(cont, &mut f.uses);
            f.uses.push(Slot::Mem);
            for i in 0..max_copyout_len(g) {
                f.uses.push(Slot::Area(i));
            }
            for &t in cuts {
                let n = cont_params(g, t);
                f.edge_defs.push((t, (0..n).map(Slot::Area).collect()));
                f.edge_kills.push((t, saves_at.to_vec()));
            }
        }
        // Yield: "not in any optimized procedure."
        Node::Yield => {}
    }
    f
}

/// The largest `CopyOut` arity in the graph — a sound bound on how many
/// area slots can be live.
pub fn max_copyout_len(g: &Graph) -> usize {
    g.nodes
        .iter()
        .map(|n| match n {
            Node::CopyOut { exprs, .. } => exprs.len(),
            Node::CopyIn { vars, .. } => vars.len(),
            _ => 0,
        })
        .max()
        .unwrap_or(0)
        .max(g.arity)
}

/// Variable-level projection: the variables used by a node (ignoring `M`
/// and `A`), in Table 3 terms. This is what register-level analyses
/// (liveness, SSA) consume.
pub fn var_uses(g: &Graph, id: NodeId) -> Vec<Name> {
    flow(g, id, &[])
        .uses
        .into_iter()
        .filter_map(|s| match s {
            Slot::Var(v) => Some(v),
            _ => None,
        })
        .collect()
}

/// Variable-level projection: the variables defined by a node.
pub fn var_defs(g: &Graph, id: NodeId) -> Vec<Name> {
    flow(g, id, &[])
        .defs
        .into_iter()
        .filter_map(|s| match s {
            Slot::Var(v) => Some(v),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn graph(src: &str, name: &str) -> Graph {
        build_program(&parse_module(src).unwrap())
            .unwrap()
            .proc(name)
            .unwrap()
            .clone()
    }

    #[test]
    fn assign_uses_rhs_defines_lhs() {
        let g = graph("f(bits32 a) { bits32 b; b = a + 1; return (b); }", "f");
        let id = g
            .ids()
            .find(|&i| matches!(g.node(i), Node::Assign { .. }))
            .unwrap();
        let f = flow(&g, id, &[]);
        assert!(f.uses.contains(&Slot::Var(Name::from("a"))));
        assert!(f.defs.contains(&Slot::Var(Name::from("b"))));
    }

    #[test]
    fn memory_store_defines_m() {
        let g = graph("f(bits32 a) { bits32[a] = 1; return; }", "f");
        let id = g
            .ids()
            .find(|&i| matches!(g.node(i), Node::Assign { .. }))
            .unwrap();
        let f = flow(&g, id, &[]);
        assert!(f.defs.contains(&Slot::Mem));
        assert!(f.uses.contains(&Slot::Var(Name::from("a"))));
    }

    #[test]
    fn memory_load_uses_m() {
        let g = graph("f(bits32 a) { bits32 b; b = bits32[a]; return (b); }", "f");
        let id = g
            .ids()
            .find(|&i| matches!(g.node(i), Node::Assign { .. }))
            .unwrap();
        let f = flow(&g, id, &[]);
        assert!(f.uses.contains(&Slot::Mem));
    }

    #[test]
    fn copyin_records_copies_from_area() {
        let g = graph("f(bits32 a, bits32 b) { return (a, b); }", "f");
        let id = g
            .ids()
            .find(|&i| matches!(g.node(i), Node::CopyIn { vars, .. } if vars.len() == 2))
            .unwrap();
        let f = flow(&g, id, &[]);
        assert_eq!(f.copies.len(), 2);
        assert_eq!(f.copies[0], (Slot::Var(Name::from("a")), Slot::Area(0)));
    }

    #[test]
    fn call_kills_callee_saves_along_cut_edges_only() {
        let g = graph(
            r#"
            f(bits32 y) {
                bits32 r;
                r = g(y) also cuts to k also unwinds to k;
                return (r);
                continuation k(r):
                return (r + y);
            }
            g(bits32 x) { return (x); }
            "#,
            "f",
        );
        let call = g
            .ids()
            .find(|&i| matches!(g.node(i), Node::Call { .. }))
            .unwrap();
        let saves = [Name::from("y")];
        let f = flow(&g, call, &saves);
        let k = g.continuation("k").unwrap();
        // Exactly one kill edge (the cut edge), carrying y.
        assert_eq!(f.edge_kills, vec![(k, vec![Name::from("y")])]);
        // A is defined along every continuation edge with the right arity.
        assert!(f
            .edge_defs
            .iter()
            .all(|(t, slots)| (*t != k) || slots.len() == 1));
        // With no callee-saves chosen, nothing is killed.
        assert!(flow(&g, call, &[]).edge_kills[0].1.is_empty());
    }

    #[test]
    fn var_projection_strips_m_and_area() {
        let g = graph(
            "f(bits32 a) { bits32 b; b = bits32[a + 4]; return (b); }",
            "f",
        );
        let id = g
            .ids()
            .find(|&i| matches!(g.node(i), Node::Assign { .. }))
            .unwrap();
        assert_eq!(var_uses(&g, id), vec![Name::from("a")]);
        assert_eq!(var_defs(&g, id), vec![Name::from("b")]);
    }
}
