//! Callee-saves register promotion.
//!
//! §4.2: "Normally, we could keep y and w in callee-saves registers
//! across the call to g. But the stack-cutting technique cannot restore
//! the values of y and w before entering k. ... The callee-saves
//! registers must be considered killed by flow edges from the call to
//! any cut-to continuations."
//!
//! This pass inserts the `CalleeSaves` nodes that §5 reserves for
//! optimizers: before each call it selects the variables that are live
//! across the call **minus** those live into any `also cuts to`
//! continuation of the call, up to the number of callee-saves registers
//! the target provides. Variables reached only through `also unwinds to`
//! and `also returns to` edges are eligible, because every stack-walking
//! technique restores callee-saves registers (§4.2).
//!
//! The `cmm-vm` code generator maps the chosen set to real callee-saves
//! registers; everything else live across a call is spilled to the
//! frame.

use crate::liveness::Liveness;
use crate::ssa::ssa_names;
use cmm_cfg::{Graph, Node, NodeId};
use cmm_ir::Name;
use std::collections::BTreeSet;

/// Statistics from the promotion pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CalleeSavesStats {
    /// `CalleeSaves` nodes inserted.
    pub nodes_inserted: usize,
    /// Total variables promoted (summed over call sites).
    pub vars_promoted: usize,
    /// Variables that were live across some call but barred from
    /// promotion by a cut edge (the §4.2 penalty, made visible).
    pub vars_blocked_by_cuts: usize,
}

/// Promotes variables into callee-saves registers around calls.
///
/// `max_regs` is the number of callee-saves registers the target
/// provides. Returns statistics.
pub fn promote_callee_saves(g: &mut Graph, max_regs: usize) -> CalleeSavesStats {
    let live = Liveness::compute(g);
    let locals = ssa_names(g);
    let mut stats = CalleeSavesStats::default();
    let calls: Vec<NodeId> = g
        .reverse_postorder()
        .into_iter()
        .filter(|&id| matches!(g.node(id), Node::Call { .. }))
        .collect();

    // Each call's chosen set, computed before mutation.
    let mut plan: Vec<(NodeId, BTreeSet<Name>)> = Vec::new();
    for id in &calls {
        let Node::Call { bundle, .. } = g.node(*id) else {
            unreachable!()
        };
        // Live across the call: live into any restored continuation.
        let mut across: BTreeSet<Name> = BTreeSet::new();
        for &t in bundle.returns.iter().chain(bundle.unwinds.iter()) {
            across.extend(live.live_in(t).iter().cloned());
        }
        // Barred: live into any cut continuation (those edges kill
        // callee-saves registers).
        let mut barred: BTreeSet<Name> = BTreeSet::new();
        for &t in &bundle.cuts {
            barred.extend(live.live_in(t).iter().cloned());
        }
        let eligible: Vec<Name> = across
            .iter()
            .filter(|v| locals.contains(*v) && !barred.contains(*v))
            .cloned()
            .collect();
        stats.vars_blocked_by_cuts += across
            .iter()
            .filter(|v| barred.contains(*v) && locals.contains(*v))
            .count();
        let chosen: BTreeSet<Name> = eligible.into_iter().take(max_regs).collect();
        plan.push((*id, chosen));
    }

    // The `CalleeSaves` set stays in effect until the next `CalleeSaves`
    // node, so once any call stages a non-empty set, *every* call needs
    // its own set staged — a later call with a cut edge would otherwise
    // inherit a set chosen for a different site, and the cut (which
    // cannot restore callee-saves registers, §4.2) would lose those
    // variables. If nothing is promoted anywhere, keep the direct
    // translation untouched.
    if plan.iter().all(|(_, vars)| vars.is_empty()) {
        return stats;
    }

    // Insert a CalleeSaves node immediately before each call, by
    // redirecting every edge into the call through the new node.
    for (call, vars) in plan {
        stats.nodes_inserted += 1;
        stats.vars_promoted += vars.len();
        let cs = g.add(Node::CalleeSaves { vars, next: call });
        for id in g.ids() {
            if id == cs {
                continue;
            }
            g.node_mut(id).map_succs(|s| if s == call { cs } else { s });
        }
        if g.entry == call {
            g.entry = cs;
        }
    }
    stats
}

/// The callee-saves set in effect at each node (forward propagation of
/// `CalleeSaves` nodes; the direct translation has the empty set
/// everywhere). Used by the VM's register allocator and by the Table 3
/// `saves_at` parameter.
pub fn saves_at(g: &Graph) -> Vec<BTreeSet<Name>> {
    let n = g.nodes.len();
    let mut at: Vec<Option<BTreeSet<Name>>> = vec![None; n];
    let order = g.reverse_postorder();
    at[g.entry.index()] = Some(BTreeSet::new());
    let mut changed = true;
    while changed {
        changed = false;
        for &id in &order {
            let Some(cur) = at[id.index()].clone() else {
                continue;
            };
            let out = match g.node(id) {
                Node::CalleeSaves { vars, .. } => vars.clone(),
                Node::Entry { .. } => BTreeSet::new(),
                _ => cur,
            };
            for s in g.succs(id) {
                let slot = &mut at[s.index()];
                let merged = match slot {
                    None => out.clone(),
                    // Meet: intersection (a variable is only *known*
                    // callee-saved if it is on every path).
                    Some(prev) => prev.intersection(&out).cloned().collect(),
                };
                if slot.as_ref() != Some(&merged) {
                    *slot = Some(merged);
                    changed = true;
                }
            }
        }
    }
    at.into_iter().map(|s| s.unwrap_or_default()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn graph(src: &str) -> Graph {
        build_program(&parse_module(src).unwrap())
            .unwrap()
            .proc("f")
            .unwrap()
            .clone()
    }

    /// The paper's f/g/k example from §4.1–4.2: y and w live across the
    /// call; with a cuts-to edge they may NOT be promoted.
    #[test]
    fn cut_edges_block_promotion() {
        let mut g = graph(
            r#"
            f(bits32 x, bits32 y) {
                bits32 r, w;
                w = x * x;
                r = g(x, k) also cuts to k;
                return (r + y + w);
                continuation k(r):
                return (r + y + w);    /* y, w needed in the handler */
            }
            g(bits32 a, bits32 kk) { return (a); }
            "#,
        );
        let stats = promote_callee_saves(&mut g, 8);
        assert_eq!(stats.vars_promoted, 0, "{stats:?}");
        assert!(stats.vars_blocked_by_cuts >= 2, "{stats:?}");
    }

    /// With unwinding instead of cutting, the same variables ARE
    /// promoted: "the unwinding technique allows callee-saves registers
    /// to be used at every call site, even if those values might be used
    /// in a continuation" (§4.2).
    #[test]
    fn unwind_edges_allow_promotion() {
        let mut g = graph(
            r#"
            f(bits32 x, bits32 y) {
                bits32 r, w;
                w = x * x;
                r = g(x) also unwinds to k;
                return (r + y + w);
                continuation k(r):
                return (r + y + w);
            }
            g(bits32 a) { return (a); }
            "#,
        );
        let stats = promote_callee_saves(&mut g, 8);
        assert!(stats.vars_promoted >= 2, "{stats:?}");
        assert_eq!(stats.vars_blocked_by_cuts, 0, "{stats:?}");
        assert!(g
            .ids()
            .any(|i| matches!(g.node(i), Node::CalleeSaves { .. })));
    }

    #[test]
    fn register_budget_caps_promotion() {
        let mut g = graph(
            r#"
            f(bits32 a, bits32 b, bits32 c, bits32 d) {
                bits32 r;
                r = g() also unwinds to k;
                return (r + a + b + c + d);
                continuation k(r):
                return (r);
            }
            g() { return (0); }
            "#,
        );
        let stats = promote_callee_saves(&mut g, 2);
        assert_eq!(stats.vars_promoted, 2);
    }

    #[test]
    fn saves_at_propagates_forward() {
        let mut g = graph(
            r#"
            f(bits32 y) {
                bits32 r;
                r = g() also unwinds to k;
                return (r + y);
                continuation k(r):
                return (y);
            }
            g() { return (0); }
            "#,
        );
        promote_callee_saves(&mut g, 4);
        let at = saves_at(&g);
        let call = g
            .ids()
            .find(|&i| matches!(g.node(i), Node::Call { .. }))
            .unwrap();
        assert!(
            at[call.index()].contains(&Name::from("y")),
            "y should be in the callee-saves set at the call: {:?}",
            at[call.index()]
        );
    }

    /// The inserted node must leave the semantics unchanged — run the
    /// machine before and after.
    #[test]
    fn promotion_preserves_behaviour() {
        let src = r#"
            f(bits32 x, bits32 y) {
                bits32 r, w;
                w = x * x;
                r = g(x) also unwinds to k;
                return (r + y + w);
                continuation k(r):
                return (r + y + w);
            }
            g(bits32 a) { return (a + 1); }
        "#;
        let prog = build_program(&parse_module(src).unwrap()).unwrap();
        let mut opt_prog = prog.clone();
        let mut g = opt_prog.procs.get("f").unwrap().clone();
        promote_callee_saves(&mut g, 4);
        opt_prog.procs.insert(g.name.clone(), g);

        let run = |p: &cmm_cfg::Program| {
            let mut m = cmm_sem::Machine::new(p);
            m.start("f", vec![cmm_sem::Value::b32(3), cmm_sem::Value::b32(10)])
                .unwrap();
            m.run(100_000)
        };
        assert_eq!(run(&prog), run(&opt_prog));
    }
}
