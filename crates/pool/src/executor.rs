//! A bounded work-stealing thread pool over `std::thread::scope`.
//!
//! No async runtime, no channels: a mutex-guarded bounded injector
//! queue (submission blocks when it is full — backpressure), one
//! overflow deque per worker fed by batched grabs from the injector,
//! and round-robin stealing between workers when both the local deque
//! and the injector are dry. Each worker accumulates its results in a
//! private `Vec` and hands the whole batch back through its join
//! handle — result delivery costs one `Vec` per worker instead of one
//! synchronized send per job.
//!
//! Each job runs under [`std::panic::catch_unwind`], so one panicking
//! job reports [`JobOutcome::Panicked`] without taking the pool (or
//! sibling jobs) down. Results are merged **by submission index**,
//! which is the root of the service's determinism guarantee: whatever
//! order workers finish in, `run_jobs` returns `out[i] = f(i, items[i])`
//! — byte-identical at `-j1` and `-jN` provided `f` is a function of
//! its arguments (the batch layer keeps wall-clock timing out of `f`).
//!
//! [`run_jobs_ctx`] extends the model with one long-lived **context**
//! per worker (the batch layer passes an execution arena): the context
//! is built once when the worker starts, threaded through every job it
//! runs, and — because a panicking job may abandon its context in an
//! arbitrary intermediate state — discarded and rebuilt fresh after
//! any panic. Contexts must therefore never carry state that later
//! jobs *observe*; they are for reusing allocations, not for sharing
//! results.

use cmm_obs::{Counter, Gauge, Histogram, Metric, MetricClass, MetricsRegistry};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker threads. `0` and `1` both mean "run inline on the
    /// calling thread".
    pub workers: usize,
    /// Injector-queue bound; submission blocks once this many jobs are
    /// pending (backpressure toward the submitter).
    pub queue_cap: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 1,
            queue_cap: 256,
        }
    }
}

/// Deterministic list schedule: jobs are placed in submission order on
/// the least-loaded of `workers` lanes (lowest index on ties) and the
/// makespan is the heaviest lane. This mirrors what the executor's
/// greedy work distribution converges to, and it is a pure function of
/// the cost list — no threads, no clocks. The benchmark trajectory's
/// virtual throughput rows and the serve scheduler's virtual clock are
/// both built on it.
pub fn virtual_makespan(costs: &[u64], workers: usize) -> u64 {
    let workers = workers.max(1);
    let mut lanes = vec![0u64; workers];
    for &cost in costs {
        let lightest = (0..workers)
            .min_by_key(|&i| lanes[i])
            .expect("at least one lane");
        lanes[lightest] += cost.max(1);
    }
    lanes.into_iter().max().unwrap_or(0).max(1)
}

/// How one job ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JobOutcome<R> {
    /// The job returned a value.
    Done(R),
    /// The job panicked; the payload's display text.
    Panicked(String),
}

impl<R> JobOutcome<R> {
    /// The value, if the job completed.
    pub fn ok(self) -> Option<R> {
        match self {
            JobOutcome::Done(r) => Some(r),
            JobOutcome::Panicked(_) => None,
        }
    }
}

/// What one pool run did, mechanically. Scheduling figures — unlike
/// the outcomes, these legitimately vary run to run and must never be
/// folded into a deterministic report.
#[derive(Clone, Copy, Default, Debug)]
pub struct PoolStats {
    /// Deepest the injector queue ever got (bounded by `queue_cap`:
    /// submission blocks rather than exceed it).
    pub queue_high_water: usize,
    /// Jobs taken from a sibling's local deque.
    pub steals: u64,
    /// Multi-job grabs from the injector (a grab of one job does not
    /// count).
    pub batched_grabs: u64,
    /// Worker contexts discarded and rebuilt after a panicking job.
    pub ctx_rebuilds: u64,
}

/// The pool's counting substrate: every scheduling figure the executor
/// tracks, as registry handles. A caller that wants the figures in a
/// [`MetricsRegistry`] passes a mounted meter to [`run_jobs_metered`];
/// everyone else gets a throwaway meter and reads the final values
/// through [`PoolStats`] — one substrate, two views.
#[derive(Clone, Debug, Default)]
pub struct PoolMeter {
    /// Deepest the injector queue ever got.
    pub queue_high_water: Gauge,
    /// Jobs taken from a sibling's local deque.
    pub steals: Counter,
    /// Multi-job grabs from the injector.
    pub batched_grabs: Counter,
    /// Worker contexts discarded and rebuilt after a panicking job.
    pub ctx_rebuilds: Counter,
    /// Times the submitter blocked on a full injector queue.
    pub backpressure_waits: Counter,
    /// Nanoseconds each job sat queued before a worker picked it up.
    pub queue_wait_ns: Histogram,
    /// Wall-clock nanoseconds each job spent executing.
    pub job_wall_ns: Histogram,
}

impl PoolMeter {
    /// A zeroed meter.
    pub fn new() -> PoolMeter {
        PoolMeter::default()
    }

    /// A [`PoolStats`] snapshot of the current values.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            queue_high_water: self.queue_high_water.get() as usize,
            steals: self.steals.get(),
            batched_grabs: self.batched_grabs.get(),
            ctx_rebuilds: self.ctx_rebuilds.get(),
        }
    }

    /// Mounts the meter's cells into `registry` as live views
    /// (`cmm_pool_*{phase="…"}`). Everything here is a scheduling
    /// artifact except `ctx_rebuilds`, which equals the number of
    /// panicking jobs — a function of the job set, not the schedule.
    pub fn mount(&self, registry: &MetricsRegistry, phase: &str) {
        let labels: [(&str, &str); 1] = [("phase", phase)];
        registry.mount(
            "cmm_pool_queue_high_water",
            &labels,
            "Deepest the injector queue ever got",
            MetricClass::Timing,
            Metric::Gauge(self.queue_high_water.clone()),
        );
        registry.mount(
            "cmm_pool_steals_total",
            &labels,
            "Jobs taken from a sibling worker's local deque",
            MetricClass::Timing,
            Metric::Counter(self.steals.clone()),
        );
        registry.mount(
            "cmm_pool_batched_grabs_total",
            &labels,
            "Multi-job grabs from the injector queue",
            MetricClass::Timing,
            Metric::Counter(self.batched_grabs.clone()),
        );
        registry.mount(
            "cmm_pool_ctx_rebuilds_total",
            &labels,
            "Worker contexts rebuilt after a panicking job",
            MetricClass::Deterministic,
            Metric::Counter(self.ctx_rebuilds.clone()),
        );
        registry.mount(
            "cmm_pool_backpressure_waits_total",
            &labels,
            "Times the submitter blocked on a full injector queue",
            MetricClass::Timing,
            Metric::Counter(self.backpressure_waits.clone()),
        );
        registry.mount(
            "cmm_pool_queue_wait_ns",
            &labels,
            "Nanoseconds jobs sat queued before pickup",
            MetricClass::Timing,
            Metric::Histogram(self.queue_wait_ns.clone()),
        );
        registry.mount(
            "cmm_pool_job_wall_ns",
            &labels,
            "Wall-clock nanoseconds jobs spent executing",
            MetricClass::Timing,
            Metric::Histogram(self.job_wall_ns.clone()),
        );
    }
}

struct Injector<T> {
    queue: VecDeque<(usize, Instant, T)>,
    closed: bool,
}

struct Shared<'m, T> {
    injector: Mutex<Injector<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    locals: Vec<Mutex<VecDeque<(usize, Instant, T)>>>,
    cap: usize,
    meter: &'m PoolMeter,
}

/// Runs `f(index, item)` for every item and returns the outcomes in
/// submission order. See the module docs for the execution model.
pub fn run_jobs<T, R, F>(config: &PoolConfig, items: Vec<T>, f: F) -> Vec<JobOutcome<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_jobs_ctx(config, items, |_| (), |(), i, item| f(i, item)).0
}

/// Runs `f(&mut ctx, index, item)` for every item, where each worker
/// owns one context built by `init(worker_id)` and reused across all
/// the jobs that worker runs (rebuilt fresh after a panicking job).
/// Returns the outcomes in submission order plus the run's
/// [`PoolStats`].
pub fn run_jobs_ctx<C, T, R, I, F>(
    config: &PoolConfig,
    items: Vec<T>,
    init: I,
    f: F,
) -> (Vec<JobOutcome<R>>, PoolStats)
where
    T: Send,
    R: Send,
    I: Fn(usize) -> C + Sync,
    F: Fn(&mut C, usize, T) -> R + Sync,
{
    let meter = PoolMeter::new();
    let out = run_jobs_metered(config, items, init, f, &meter);
    let stats = meter.stats();
    (out, stats)
}

/// [`run_jobs_ctx`] with the caller's own [`PoolMeter`]: scheduling
/// figures, per-job queue-wait, and per-job wall latency land in the
/// meter's cells as the run progresses (live, if the meter is mounted
/// in a registry) instead of only in a final snapshot.
pub fn run_jobs_metered<C, T, R, I, F>(
    config: &PoolConfig,
    items: Vec<T>,
    init: I,
    f: F,
    meter: &PoolMeter,
) -> Vec<JobOutcome<R>>
where
    T: Send,
    R: Send,
    I: Fn(usize) -> C + Sync,
    F: Fn(&mut C, usize, T) -> R + Sync,
{
    if config.workers <= 1 {
        let mut ctx = init(0);
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let started = Instant::now();
                let outcome = match catch_unwind(AssertUnwindSafe(|| f(&mut ctx, i, item))) {
                    Ok(r) => JobOutcome::Done(r),
                    Err(payload) => {
                        // The panic may have left the context half
                        // mutated; start the next job from a fresh one.
                        ctx = init(0);
                        meter.ctx_rebuilds.inc();
                        JobOutcome::Panicked(panic_text(payload.as_ref()))
                    }
                };
                meter
                    .job_wall_ns
                    .observe(started.elapsed().as_nanos() as u64);
                outcome
            })
            .collect();
    }

    let n = items.len();
    let workers = config.workers.min(n.max(1));
    let shared = Shared {
        injector: Mutex::new(Injector {
            queue: VecDeque::new(),
            closed: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        cap: config.queue_cap.max(1),
        meter,
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|id| {
                let shared = &shared;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut ctx = init(id);
                    let mut results: Vec<(usize, JobOutcome<R>)> = Vec::new();
                    while let Some((i, queued, item)) = next_job(shared, id) {
                        shared
                            .meter
                            .queue_wait_ns
                            .observe(queued.elapsed().as_nanos() as u64);
                        let started = Instant::now();
                        match catch_unwind(AssertUnwindSafe(|| f(&mut ctx, i, item))) {
                            Ok(r) => results.push((i, JobOutcome::Done(r))),
                            Err(payload) => {
                                results
                                    .push((i, JobOutcome::Panicked(panic_text(payload.as_ref()))));
                                ctx = init(id);
                                shared.meter.ctx_rebuilds.inc();
                            }
                        }
                        shared
                            .meter
                            .job_wall_ns
                            .observe(started.elapsed().as_nanos() as u64);
                    }
                    results
                })
            })
            .collect();

        // Submit with backpressure.
        for (i, item) in items.into_iter().enumerate() {
            let mut inj = shared.injector.lock().expect("injector poisoned");
            if inj.queue.len() >= shared.cap {
                shared.meter.backpressure_waits.inc();
                while inj.queue.len() >= shared.cap {
                    inj = shared.not_full.wait(inj).expect("injector poisoned");
                }
            }
            inj.queue.push_back((i, Instant::now(), item));
            shared
                .meter
                .queue_high_water
                .set_max(inj.queue.len() as u64);
            drop(inj);
            shared.not_empty.notify_one();
        }
        {
            let mut inj = shared.injector.lock().expect("injector poisoned");
            inj.closed = true;
        }
        shared.not_empty.notify_all();

        // Collect each worker's batch through its join handle and
        // merge by submission index.
        let mut out: Vec<Option<JobOutcome<R>>> = (0..n).map(|_| None).collect();
        for handle in handles {
            let batch = handle.join().expect("worker thread itself never panics");
            for (i, outcome) in batch {
                debug_assert!(out[i].is_none(), "job {i} reported twice");
                out[i] = Some(outcome);
            }
        }
        out.into_iter()
            .map(|o| o.expect("every index reported"))
            .collect()
    })
}

/// One attempt at finding work: local deque, then a batched grab from
/// the injector, then stealing from siblings.
fn try_get<T>(shared: &Shared<'_, T>, id: usize) -> Option<(usize, Instant, T)> {
    if let Some(job) = shared.locals[id]
        .lock()
        .expect("local poisoned")
        .pop_front()
    {
        return Some(job);
    }
    {
        let mut inj = shared.injector.lock().expect("injector poisoned");
        if !inj.queue.is_empty() {
            // Grab a fair share (≤ 8) in one locking; keep the first,
            // bank the rest locally so siblings can steal them.
            let share = inj.queue.len().div_ceil(shared.locals.len()).clamp(1, 8);
            let first = inj.queue.pop_front().expect("non-empty");
            let extras: Vec<_> = (1..share).map_while(|_| inj.queue.pop_front()).collect();
            drop(inj);
            shared.not_full.notify_all();
            if !extras.is_empty() {
                shared.meter.batched_grabs.inc();
                shared.locals[id]
                    .lock()
                    .expect("local poisoned")
                    .extend(extras);
                shared.not_empty.notify_all();
            }
            return Some(first);
        }
    }
    let n = shared.locals.len();
    for k in 1..n {
        let victim = (id + k) % n;
        let mut local = shared.locals[victim].lock().expect("local poisoned");
        if let Some(job) = local.pop_back() {
            shared.meter.steals.inc();
            return Some(job);
        }
    }
    None
}

/// Blocks until a job is available or the pool is drained and closed.
fn next_job<T>(shared: &Shared<'_, T>, id: usize) -> Option<(usize, Instant, T)> {
    loop {
        if let Some(job) = try_get(shared, id) {
            return Some(job);
        }
        let inj = shared.injector.lock().expect("injector poisoned");
        if inj.closed && inj.queue.is_empty() && all_locals_empty(shared) {
            return None;
        }
        if inj.queue.is_empty() {
            // The timeout covers the one wakeup the condvar cannot
            // deliver: work banked into a *sibling's* local deque
            // between our try_get and this wait. Correctness never
            // depends on the wakeup, only tail latency.
            let _ = shared
                .not_empty
                .wait_timeout(inj, Duration::from_millis(1))
                .expect("injector poisoned");
        }
    }
}

fn all_locals_empty<T>(shared: &Shared<'_, T>) -> bool {
    shared
        .locals
        .iter()
        .all(|l| l.lock().expect("local poisoned").is_empty())
}

/// Best-effort text of a panic payload (`&str` and `String` payloads;
/// anything else gets a placeholder).
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_submission_order() {
        for workers in [1, 2, 4] {
            let cfg = PoolConfig {
                workers,
                queue_cap: 4, // small: exercises backpressure
            };
            let items: Vec<u64> = (0..100).collect();
            let out = run_jobs(&cfg, items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let values: Vec<u64> = out.into_iter().map(|o| o.ok().unwrap()).collect();
            let expect: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(values, expect, "workers={workers}");
        }
    }

    #[test]
    fn a_panicking_job_is_isolated() {
        let cfg = PoolConfig {
            workers: 3,
            queue_cap: 8,
        };
        let out = run_jobs(&cfg, (0..20).collect::<Vec<u64>>(), |_, x| {
            if x == 7 {
                panic!("job {x} exploded");
            }
            x
        });
        for (i, o) in out.iter().enumerate() {
            if i == 7 {
                assert_eq!(*o, JobOutcome::Panicked("job 7 exploded".to_string()));
            } else {
                assert_eq!(*o, JobOutcome::Done(i as u64));
            }
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let cfg = PoolConfig {
            workers: 4,
            queue_cap: 2,
        };
        let out = run_jobs(&cfg, vec![(); 257], |_, ()| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 257);
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn zero_items_and_zero_workers() {
        let cfg = PoolConfig {
            workers: 0,
            queue_cap: 1,
        };
        let out = run_jobs(&cfg, Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn contexts_are_built_once_per_worker_and_reused() {
        let builds = AtomicUsize::new(0);
        let cfg = PoolConfig {
            workers: 2,
            queue_cap: 8,
        };
        let (out, stats) = run_jobs_ctx(
            &cfg,
            (0..50u64).collect::<Vec<_>>(),
            |id| {
                builds.fetch_add(1, Ordering::Relaxed);
                (id, 0u64) // (worker id, per-context job tally)
            },
            |ctx, _, x| {
                ctx.1 += 1;
                x + 1
            },
        );
        assert_eq!(out.len(), 50);
        // At most one context per worker (a worker that never picked
        // up a job may still build its context — that's fine, but no
        // context is ever rebuilt without a panic).
        assert!(builds.load(Ordering::Relaxed) <= 2);
        assert_eq!(stats.ctx_rebuilds, 0);
    }

    #[test]
    fn a_panic_discards_the_worker_context() {
        let cfg = PoolConfig {
            workers: 1,
            queue_cap: 8,
        };
        // The context accumulates a tally; job 3 panics after bumping
        // it. The rebuild means job 4 onward sees a fresh tally, so
        // the panic's half-done mutation never leaks forward.
        let (out, stats) = run_jobs_ctx(
            &cfg,
            (0..6u64).collect::<Vec<_>>(),
            |_| 0u64,
            |tally, i, _| {
                *tally += 1;
                if i == 3 {
                    panic!("job 3 exploded");
                }
                *tally
            },
        );
        assert_eq!(stats.ctx_rebuilds, 1);
        let values: Vec<_> = out
            .into_iter()
            .map(|o| match o {
                JobOutcome::Done(v) => Some(v),
                JobOutcome::Panicked(_) => None,
            })
            .collect();
        // Jobs 0..=2 see tallies 1,2,3; job 3 panics; jobs 4,5 restart
        // at 1,2 on the rebuilt context.
        assert_eq!(
            values,
            vec![Some(1), Some(2), Some(3), None, Some(1), Some(2)]
        );
    }
}
