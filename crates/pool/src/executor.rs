//! A bounded work-stealing thread pool over `std::thread::scope`.
//!
//! No async runtime, no channels-of-channels: a mutex-guarded bounded
//! injector queue (submission blocks when it is full — backpressure),
//! one overflow deque per worker fed by batched grabs from the
//! injector, and round-robin stealing between workers when both the
//! local deque and the injector are dry.
//!
//! Each job runs under [`std::panic::catch_unwind`], so one panicking
//! job reports [`JobOutcome::Panicked`] without taking the pool (or
//! sibling jobs) down. Results are delivered **by submission index**,
//! which is the root of the service's determinism guarantee: whatever
//! order workers finish in, `run_jobs` returns `out[i] = f(i, items[i])`
//! — byte-identical at `-j1` and `-jN` provided `f` is a function of
//! its arguments (the batch layer keeps wall-clock timing out of `f`).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker threads. `0` and `1` both mean "run inline on the
    /// calling thread".
    pub workers: usize,
    /// Injector-queue bound; submission blocks once this many jobs are
    /// pending (backpressure toward the submitter).
    pub queue_cap: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 1,
            queue_cap: 256,
        }
    }
}

/// How one job ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JobOutcome<R> {
    /// The job returned a value.
    Done(R),
    /// The job panicked; the payload's display text.
    Panicked(String),
}

impl<R> JobOutcome<R> {
    /// The value, if the job completed.
    pub fn ok(self) -> Option<R> {
        match self {
            JobOutcome::Done(r) => Some(r),
            JobOutcome::Panicked(_) => None,
        }
    }
}

struct Injector<T> {
    queue: VecDeque<(usize, T)>,
    closed: bool,
}

struct Shared<T> {
    injector: Mutex<Injector<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    locals: Vec<Mutex<VecDeque<(usize, T)>>>,
    cap: usize,
}

/// Runs `f(index, item)` for every item and returns the outcomes in
/// submission order. See the module docs for the execution model.
pub fn run_jobs<T, R, F>(config: &PoolConfig, items: Vec<T>, f: F) -> Vec<JobOutcome<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let run_one = |i: usize, item: T| match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
        Ok(r) => JobOutcome::Done(r),
        Err(payload) => JobOutcome::Panicked(panic_text(payload.as_ref())),
    };
    if config.workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item))
            .collect();
    }

    let n = items.len();
    let workers = config.workers.min(n.max(1));
    let shared = Shared {
        injector: Mutex::new(Injector {
            queue: VecDeque::new(),
            closed: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        cap: config.queue_cap.max(1),
    };
    let (tx, rx) = mpsc::channel::<(usize, JobOutcome<R>)>();

    std::thread::scope(|scope| {
        for id in 0..workers {
            let shared = &shared;
            let tx = tx.clone();
            let run_one = &run_one;
            scope.spawn(move || {
                while let Some((i, item)) = next_job(shared, id) {
                    // A send can only fail if the collector below has
                    // already gathered all n results, which it cannot
                    // have while this job was still owed.
                    let _ = tx.send((i, run_one(i, item)));
                }
            });
        }
        drop(tx);

        // Submit with backpressure, then collect by index.
        for (i, item) in items.into_iter().enumerate() {
            let mut inj = shared.injector.lock().expect("injector poisoned");
            while inj.queue.len() >= shared.cap {
                inj = shared.not_full.wait(inj).expect("injector poisoned");
            }
            inj.queue.push_back((i, item));
            drop(inj);
            shared.not_empty.notify_one();
        }
        {
            let mut inj = shared.injector.lock().expect("injector poisoned");
            inj.closed = true;
        }
        shared.not_empty.notify_all();

        let mut out: Vec<Option<JobOutcome<R>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, outcome) = rx.recv().expect("all workers hung up with jobs owed");
            out[i] = Some(outcome);
        }
        out.into_iter()
            .map(|o| o.expect("every index reported"))
            .collect()
    })
}

/// One attempt at finding work: local deque, then a batched grab from
/// the injector, then stealing from siblings.
fn try_get<T>(shared: &Shared<T>, id: usize) -> Option<(usize, T)> {
    if let Some(job) = shared.locals[id]
        .lock()
        .expect("local poisoned")
        .pop_front()
    {
        return Some(job);
    }
    {
        let mut inj = shared.injector.lock().expect("injector poisoned");
        if !inj.queue.is_empty() {
            // Grab a fair share (≤ 8) in one locking; keep the first,
            // bank the rest locally so siblings can steal them.
            let share = inj.queue.len().div_ceil(shared.locals.len()).clamp(1, 8);
            let first = inj.queue.pop_front().expect("non-empty");
            let extras: Vec<_> = (1..share).map_while(|_| inj.queue.pop_front()).collect();
            drop(inj);
            shared.not_full.notify_all();
            if !extras.is_empty() {
                shared.locals[id]
                    .lock()
                    .expect("local poisoned")
                    .extend(extras);
                shared.not_empty.notify_all();
            }
            return Some(first);
        }
    }
    let n = shared.locals.len();
    for k in 1..n {
        let victim = (id + k) % n;
        let mut local = shared.locals[victim].lock().expect("local poisoned");
        if let Some(job) = local.pop_back() {
            return Some(job);
        }
    }
    None
}

/// Blocks until a job is available or the pool is drained and closed.
fn next_job<T>(shared: &Shared<T>, id: usize) -> Option<(usize, T)> {
    loop {
        if let Some(job) = try_get(shared, id) {
            return Some(job);
        }
        let inj = shared.injector.lock().expect("injector poisoned");
        if inj.closed && inj.queue.is_empty() && all_locals_empty(shared) {
            return None;
        }
        if inj.queue.is_empty() {
            // The timeout covers the one wakeup the condvar cannot
            // deliver: work banked into a *sibling's* local deque
            // between our try_get and this wait. Correctness never
            // depends on the wakeup, only tail latency.
            let _ = shared
                .not_empty
                .wait_timeout(inj, Duration::from_millis(1))
                .expect("injector poisoned");
        }
    }
}

fn all_locals_empty<T>(shared: &Shared<T>) -> bool {
    shared
        .locals
        .iter()
        .all(|l| l.lock().expect("local poisoned").is_empty())
}

/// Best-effort text of a panic payload (`&str` and `String` payloads;
/// anything else gets a placeholder).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_submission_order() {
        for workers in [1, 2, 4] {
            let cfg = PoolConfig {
                workers,
                queue_cap: 4, // small: exercises backpressure
            };
            let items: Vec<u64> = (0..100).collect();
            let out = run_jobs(&cfg, items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let values: Vec<u64> = out.into_iter().map(|o| o.ok().unwrap()).collect();
            let expect: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(values, expect, "workers={workers}");
        }
    }

    #[test]
    fn a_panicking_job_is_isolated() {
        let cfg = PoolConfig {
            workers: 3,
            queue_cap: 8,
        };
        let out = run_jobs(&cfg, (0..20).collect::<Vec<u64>>(), |_, x| {
            if x == 7 {
                panic!("job {x} exploded");
            }
            x
        });
        for (i, o) in out.iter().enumerate() {
            if i == 7 {
                assert_eq!(*o, JobOutcome::Panicked("job 7 exploded".to_string()));
            } else {
                assert_eq!(*o, JobOutcome::Done(i as u64));
            }
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let cfg = PoolConfig {
            workers: 4,
            queue_cap: 2,
        };
        let out = run_jobs(&cfg, vec![(); 257], |_, ()| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 257);
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn zero_items_and_zero_workers() {
        let cfg = PoolConfig {
            workers: 0,
            queue_cap: 1,
        };
        let out = run_jobs(&cfg, Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }
}
