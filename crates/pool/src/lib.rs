//! # cmm-pool — parallel batch execution with a content-addressed
//! # compilation cache
//!
//! The workspace compiles one source through a fixed pipeline
//! (parse → CFG → optimize → VM codegen → pre-decode) and then runs it
//! on one of four engines. A service that executes *many* jobs — the
//! `cmm batch` subcommand, `cmm fuzz --jobs N`, the benchmark
//! trajectory's throughput workload — repeats that compilation work
//! per job unless something memoizes it. This crate is that something:
//!
//! * [`cache`] — a [`PipelineCache`](cache::PipelineCache): every
//!   pipeline stage memoized under a content [`Digest`](digest::Digest)
//!   of (source bytes, optimization config, engine family), with
//!   single-flight deduplication, LRU eviction under a byte budget,
//!   and scheduling-independent hit/miss counters exported through
//!   `cmm-obs`'s [`CacheStats`](cmm_obs::CacheStats).
//! * [`executor`] — a bounded work-stealing pool over plain
//!   `std::thread`: backpressure on submission, per-job panic
//!   isolation, results keyed by submission index so outputs are
//!   byte-identical at `-j1` and `-jN`.
//! * [`batch`] — the service tying both together: manifest parsing,
//!   per-job fuel budgets through the `cmm-chaos` resource governor,
//!   and a deterministic JSON report.
//!
//! Determinism is the design center, same as everywhere else in this
//! repository: parallelism must change wall-clock time and nothing
//! else. The difftest fuzzer trusts this (its `--jobs N` mode must
//! find byte-identical failures), and CI enforces it by diffing
//! `-j1` against `-j4` batch reports.

pub mod batch;
pub mod cache;
pub mod digest;
pub mod executor;

pub use batch::{
    load_manifest, parse_manifest, run_batch, BatchConfig, BatchReport, EngineKind, JobRecord,
    JobSpec, Postmortem, SnapSummary,
};
pub use cache::{
    Artifact, CacheConfig, EngineFamily, PipelineCache, SourceKey, SourceLang, Stage, SHARDS,
};
pub use digest::Digest;
pub use executor::{
    run_jobs, run_jobs_ctx, run_jobs_metered, virtual_makespan, JobOutcome, PoolConfig, PoolMeter,
    PoolStats,
};

#[cfg(test)]
mod tests {
    use super::cache::*;
    use cmm_opt::OptOptions;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    const TINY: &str = "f(bits32 a) { return (a + 1); }";

    fn key(source: &str, family: EngineFamily) -> SourceKey {
        SourceKey {
            source: source.to_string(),
            lang: SourceLang::Cmm,
            opts: OptOptions::default(),
            family,
        }
    }

    #[test]
    fn hits_misses_and_evictions_under_a_tiny_budget() {
        // Budget below any artifact estimate: every insertion
        // immediately evicts, so repeated requests never hit.
        let cache = PipelineCache::new(CacheConfig { max_bytes: 1 });
        let k = key(TINY, EngineFamily::Sem);
        cache.program(&k).expect("compiles");
        let snap = cache.snapshot();
        // Module + Program built, both evicted on insert.
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.hits, 0);
        assert_eq!(snap.evictions, 2);
        cache.program(&k).expect("compiles again");
        let snap = cache.snapshot();
        assert_eq!(snap.misses, 4, "nothing could be retained");
        assert_eq!(snap.evictions, 4);

        // The same work under an ample budget: second request is one
        // hit on the finished Program and rebuilds nothing.
        let cache = PipelineCache::new(CacheConfig::default());
        cache.program(&k).expect("compiles");
        cache.program(&k).expect("hits");
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.evictions), (1, 2, 0));
        assert!(snap.resident_bytes > 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let a = key(TINY, EngineFamily::Sem);
        let b = key("g(bits32 a) { return (a * 2); }", EngineFamily::Sem);
        // Budget sized from the real estimates: holds both Programs
        // and one Module, but not all four artifacts.
        let probe = PipelineCache::default();
        let pa = probe.program(&a).unwrap();
        let pb = probe.program(&b).unwrap();
        let prog_bytes =
            Artifact::Program(pa.clone()).cost_bytes() + Artifact::Program(pb.clone()).cost_bytes();
        let mod_bytes = probe.snapshot().resident_bytes - prog_bytes;
        let budget = prog_bytes + mod_bytes / 2;

        let cache = PipelineCache::new(CacheConfig { max_bytes: budget });
        cache.program(&a).unwrap();
        cache.program(&b).unwrap();
        assert!(cache.snapshot().evictions >= 1, "budget forces eviction");
        // `a`'s artifacts are older than `b`'s, so a re-request of
        // `b`'s program must still hit.
        let before = cache.snapshot();
        cache.program(&b).unwrap();
        let after = cache.snapshot();
        assert_eq!(after.hits, before.hits + 1, "b's program survived");
    }

    #[test]
    fn single_flight_dedups_concurrent_builds() {
        // Two threads request the same key at the same time; the build
        // counter proves only one compile ran, and the counters show
        // one miss + one hit regardless of which thread won.
        let cache = PipelineCache::default();
        let builds = AtomicUsize::new(0);
        let gate = Barrier::new(2);
        let digest = key(TINY, EngineFamily::Sem).digest();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    gate.wait();
                    let m = cache
                        .get_or_build(digest, Stage::Module, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            // Slow build: keep the flight open long
                            // enough that the loser actually waits.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            let m = cmm_parse::parse_module(TINY).map_err(|e| e.to_string())?;
                            Ok(Artifact::Module(std::sync::Arc::new(m)))
                        })
                        .expect("builds");
                    assert!(matches!(m, Artifact::Module(_)));
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one compile");
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
    }

    #[test]
    fn whitespace_only_changes_reuse_nothing() {
        // The digest hashes raw source bytes, deliberately: a
        // normalized (token-level) key would need a parse on the
        // lookup path and would serve artifacts for byte strings that
        // were never actually compiled — an aliasing risk the
        // difftest oracles could never observe. So two sources that
        // differ only in whitespace are distinct cache worlds.
        let a = key("f(bits32 a) { return (a + 1); }", EngineFamily::Sem);
        let b = key("f(bits32 a) {  return (a + 1); }", EngineFamily::Sem);
        assert_ne!(a.digest(), b.digest());

        let cache = PipelineCache::default();
        cache.program(&a).unwrap();
        let warm = cache.snapshot();
        cache.program(&b).unwrap();
        let snap = cache.snapshot();
        assert_eq!(snap.hits, warm.hits, "no artifact was reused");
        assert_eq!(snap.misses, warm.misses + 2, "full recompile");
    }

    #[test]
    fn digest_separates_config_and_family() {
        let base = key(TINY, EngineFamily::Sem);
        let vm = key(TINY, EngineFamily::Vm);
        let mut o0 = base.clone();
        o0.opts = OptOptions::none();
        assert_ne!(base.digest(), vm.digest());
        assert_ne!(base.digest(), o0.digest());
    }

    #[test]
    fn build_errors_are_reported_not_cached() {
        let cache = PipelineCache::default();
        let bad = key("f(bits32 a) { return (a +; }", EngineFamily::Sem);
        assert!(cache.program(&bad).is_err());
        assert!(cache.program(&bad).is_err(), "still an error");
        let snap = cache.snapshot();
        assert_eq!(snap.hits, 0, "errors never become artifacts");
    }
}
