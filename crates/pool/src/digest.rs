//! Content digests for the compilation cache.
//!
//! A [`Digest`] identifies *what would be compiled*: the raw source
//! text, the optimization configuration, and the engine lowering family
//! (the abstract machines execute the CFG `Program`; the simulated
//! target executes `VmProgram` code compiled from it — same source,
//! different artifact chain). Hashing the **raw bytes** of the source
//! is deliberate: a whitespace-only edit produces a different digest
//! and reuses nothing. Normalizing (token-hashing) would buy a few
//! extra hits at the cost of a parser run on the *lookup* path and a
//! cache key that no longer certifies "these exact bytes were
//! compiled"; an artifact served for bytes that were never compiled is
//! a miscompilation vector the difftest suite could not see.
//!
//! The hash is FNV-1a/128 over length-prefixed parts, giving the cache
//! 128-bit keys without pulling in a dependency. FNV is not
//! collision-resistant against adversaries; the cache serves a local
//! build service, not untrusted input, and 128 bits make accidental
//! collisions negligible.

use std::fmt;

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit FNV-1a content hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Digest(pub u128);

impl Digest {
    /// Hashes a sequence of byte-string parts. Each part is prefixed
    /// with its length so part boundaries are part of the hash:
    /// `of(&[b"ab", b"c"]) != of(&[b"a", b"bc"])`.
    pub fn of(parts: &[&[u8]]) -> Digest {
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u128::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for part in parts {
            eat(&(part.len() as u64).to_le_bytes());
            eat(part);
        }
        Digest(h)
    }

    /// Lower-case hex form (32 digits), for reports and logs.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let a = Digest::of(&[b"source", b"config"]);
        let b = Digest::of(&[b"source", b"config"]);
        assert_eq!(a, b);
        assert_ne!(a, Digest::of(&[b"source", b"config2"]));
    }

    #[test]
    fn part_boundaries_matter() {
        assert_ne!(Digest::of(&[b"ab", b"c"]), Digest::of(&[b"a", b"bc"]));
        assert_ne!(Digest::of(&[b"ab"]), Digest::of(&[b"ab", b""]));
    }

    #[test]
    fn empty_input_is_the_offset_basis_after_length_prefix() {
        // Not a magic constant anyone relies on — just pins the hex
        // format to 32 lower-case digits.
        let d = Digest::of(&[]);
        assert_eq!(d.hex().len(), 32);
        assert_eq!(d.0, FNV_OFFSET);
    }
}
