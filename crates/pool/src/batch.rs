//! Batch execution: a manifest of jobs, compiled through the shared
//! [`PipelineCache`] and executed on the work-stealing pool.
//!
//! # Manifest format
//!
//! One job line per entry; `#` starts a comment:
//!
//! ```text
//! # <source-file> <engine[,engine...]> [key=value ...]
//! fig34_plain.cmm  vm,vm-decoded  entry=f args=20
//! fig2_deep_raise.m3  sem  strategy=cutting args=5
//! ```
//!
//! The source language is chosen by extension (`.cmm` → C--, `.m3` →
//! MiniM3). Keys: `entry=` (C-- start procedure, default `f`),
//! `args=` (comma-separated `u32`s), `results=` (C-- result arity on
//! the simulated target, default 1), `strategy=` (MiniM3 lowering,
//! default `runtime-unwind`), `opt=full|none` (default `full`),
//! `fuel=` (per-run budget; defaults match difftest's limits),
//! `yields=` (suspension bound, default 64), and `chaos=SEED` (install
//! a seeded `cmm-chaos` [`FaultPlan`] on the job's thread, so the
//! manifest can exercise failure paths deliberately). A
//! comma-separated engine list expands to one job per engine — the
//! usual way a manifest earns cache hits, since all five engines share
//! per-family artifacts.
//!
//! # Determinism
//!
//! [`run_batch`] produces a report whose non-timing content is a pure
//! function of the job list: job records are keyed and ordered by
//! submission index, the dispatcher policy that services suspensions
//! is the fixed deterministic one difftest's oracles use, and the
//! cache counters are scheduling-independent by the single-flight
//! counting discipline (see [`crate::cache`]). Serializing with
//! `with_timing = false` therefore yields byte-identical output at
//! `-j1` and `-jN`; CI diffs exactly that.

use crate::cache::{EngineFamily, PipelineCache, SourceKey, SourceLang};
use crate::executor::{panic_text, run_jobs_metered, JobOutcome, PoolConfig, PoolMeter};
use cmm_chaos::{FaultPlan, ResourceGovernor};
use cmm_frontend::{run_sem_thread, run_vm_thread, Strategy};
use cmm_obs::{
    CacheSnapshot, MetricClass, MetricsRegistry, NopSink, SharedFlight, TraceSink, RTS_OP_NAMES,
};
use cmm_opt::OptOptions;
use cmm_rt::Thread;
use cmm_sem::{Machine, ResolvedMachine, ResolvedProgram, SemArena, SemEngine, Status, Value};
use cmm_snap::{fold_digest, source_digest, EngineId, MachineState, SnapMeta, Snapshot, FOLD_INIT};
use cmm_vm::{VmArena, VmStatus, VmThread};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// The chaos horizon a `chaos=SEED` manifest key installs: each
/// Table 1 op either passes or fails once within its first four
/// invocations (seed-dependent) — the same wall difftest's chaos
/// oracles run against.
const CHAOS_HORIZON: u64 = 4;

/// Which execution engine a job runs on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EngineKind {
    /// The reference abstract machine (`cmm-sem`).
    Sem,
    /// The pre-resolved abstract machine (`cmm-sem`, resolved tables).
    SemResolved,
    /// The simulated target (`cmm-vm`).
    Vm,
    /// The simulated target over pre-decoded code.
    VmDecoded,
    /// The simulated target over the fused superinstruction stream.
    VmFused,
}

impl EngineKind {
    /// The report label; also the manifest spelling.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Sem => "sem",
            EngineKind::SemResolved => "sem-resolved",
            EngineKind::Vm => "vm",
            EngineKind::VmDecoded => "vm-decoded",
            EngineKind::VmFused => "vm-fused",
        }
    }

    /// Which artifact chain this engine consumes.
    pub fn family(self) -> EngineFamily {
        match self {
            EngineKind::Sem | EngineKind::SemResolved => EngineFamily::Sem,
            EngineKind::Vm | EngineKind::VmDecoded | EngineKind::VmFused => EngineFamily::Vm,
        }
    }

    /// Parses a manifest spelling.
    pub fn parse(s: &str) -> Result<EngineKind, String> {
        Ok(match s {
            "sem" => EngineKind::Sem,
            "sem-resolved" => EngineKind::SemResolved,
            "vm" => EngineKind::Vm,
            "vm-decoded" => EngineKind::VmDecoded,
            "vm-fused" => EngineKind::VmFused,
            other => return Err(format!("unknown engine `{other}`")),
        })
    }
}

/// Parses a MiniM3 strategy name (same spellings as the `cmm` CLI).
pub fn parse_strategy(s: &str) -> Result<Strategy, String> {
    Ok(match s {
        "runtime-unwind" => Strategy::RuntimeUnwind,
        "cutting" => Strategy::Cutting,
        "native-unwind" => Strategy::NativeUnwind,
        "cps" => Strategy::Cps,
        "sjlj-pentium" => Strategy::Sjlj(cmm_vm::arch::PENTIUM_LINUX),
        "sjlj-sparc" => Strategy::Sjlj(cmm_vm::arch::SPARC_SOLARIS),
        "sjlj-alpha" => Strategy::Sjlj(cmm_vm::arch::ALPHA_DIGITAL_UNIX),
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

/// One job: a source, an engine, and execution parameters.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Display name (the manifest's source path).
    pub name: String,
    /// Language / lowering.
    pub lang: SourceLang,
    /// Source text (loaded up front; execution never touches the
    /// filesystem).
    pub source: String,
    /// Start procedure (C-- only; MiniM3 always enters `main`).
    pub entry: String,
    /// Call arguments.
    pub args: Vec<u32>,
    /// Expected result arity on the simulated target (C-- only).
    pub results: usize,
    /// Execution engine.
    pub engine: EngineKind,
    /// Optimization configuration (a cache-digest input).
    pub opts: OptOptions,
    /// Per-run fuel budget, enforced through the `cmm-chaos`
    /// [`ResourceGovernor`]'s fuel slice.
    pub fuel: u64,
    /// Suspensions serviced before the run is cut off.
    pub max_yields: usize,
    /// Chaos seed: install [`FaultPlan::seeded`] on the job's thread
    /// (horizon [`CHAOS_HORIZON`], difftest's wall). `None` runs clean.
    pub chaos: Option<u64>,
}

impl JobSpec {
    /// The cache key this job compiles under.
    pub fn source_key(&self) -> SourceKey {
        SourceKey {
            source: self.source.clone(),
            lang: self.lang.clone(),
            opts: self.opts,
            family: self.engine.family(),
        }
    }
}

/// Reads a manifest file, loading each referenced source relative to
/// the manifest's directory.
pub fn load_manifest(path: &Path) -> Result<Vec<JobSpec>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let base = path.parent().unwrap_or_else(|| Path::new("."));
    parse_manifest(&text, &mut |rel| {
        let p = base.join(rel);
        std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))
    })
}

/// Parses manifest text; `read_source` maps a source path to its text
/// (injected so tests need no filesystem).
pub fn parse_manifest(
    text: &str,
    read_source: &mut dyn FnMut(&str) -> Result<String, String>,
) -> Result<Vec<JobSpec>, String> {
    let mut specs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("manifest line {}: {msg}", lineno + 1);
        let mut tokens = line.split_whitespace();
        let file = tokens.next().expect("non-empty line");
        let engines = tokens
            .next()
            .ok_or_else(|| at(format!("`{file}`: missing engine list")))?;
        let mut entry = "f".to_string();
        let mut args: Vec<u32> = Vec::new();
        let mut results = 1usize;
        let mut strategy = Strategy::RuntimeUnwind;
        let mut opts = OptOptions::default();
        let mut fuel: Option<u64> = None;
        let mut max_yields = 64usize;
        let mut chaos: Option<u64> = None;
        for tok in tokens {
            let Some((k, v)) = tok.split_once('=') else {
                return Err(at(format!("expected key=value, got `{tok}`")));
            };
            match k {
                "entry" => entry = v.to_string(),
                "args" => {
                    args = v
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.parse().map_err(|_| at(format!("bad argument `{s}`"))))
                        .collect::<Result<_, _>>()?;
                }
                "results" => {
                    results = v.parse().map_err(|_| at(format!("bad results `{v}`")))?;
                }
                "strategy" => strategy = parse_strategy(v).map_err(&at)?,
                "opt" => {
                    opts = match v {
                        "full" => OptOptions::default(),
                        "none" => OptOptions::none(),
                        other => return Err(at(format!("bad opt level `{other}`"))),
                    };
                }
                "fuel" => fuel = Some(v.parse().map_err(|_| at(format!("bad fuel `{v}`")))?),
                "yields" => {
                    max_yields = v.parse().map_err(|_| at(format!("bad yields `{v}`")))?;
                }
                "chaos" => {
                    chaos = Some(v.parse().map_err(|_| at(format!("bad chaos seed `{v}`")))?);
                }
                other => return Err(at(format!("unknown key `{other}`"))),
            }
        }
        let lang = if file.ends_with(".cmm") {
            SourceLang::Cmm
        } else if file.ends_with(".m3") {
            SourceLang::MiniM3(strategy)
        } else {
            return Err(at(format!("`{file}`: expected a .cmm or .m3 source")));
        };
        let source = read_source(file)?;
        for eng in engines.split(',') {
            let engine = EngineKind::parse(eng).map_err(&at)?;
            // Difftest's default limits, scaled to the engine family.
            let fuel = fuel.unwrap_or(match engine.family() {
                EngineFamily::Sem => 2_000_000,
                EngineFamily::Vm => 20_000_000,
            });
            specs.push(JobSpec {
                name: file.to_string(),
                lang: lang.clone(),
                source: source.clone(),
                entry: match lang {
                    SourceLang::Cmm => entry.clone(),
                    // The MiniM3 driver always enters `main`; report
                    // that rather than the (ignored) C-- default.
                    SourceLang::MiniM3(_) => "main".to_string(),
                },
                args: args.clone(),
                results,
                engine,
                opts,
                fuel,
                max_yields,
                chaos,
            });
        }
    }
    Ok(specs)
}

/// Batch-service configuration.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Worker threads (`1` = run inline).
    pub workers: usize,
    /// Injector bound (see [`PoolConfig`]).
    pub queue_cap: usize,
    /// Build a [`MetricsRegistry`] for the batch: mount the cache and
    /// pool counters, run every job through a flight-recorder sink,
    /// flush per-job figures into the registry, and collect post-mortem
    /// dumps for failed jobs. Off (the default), every job runs through
    /// [`NopSink`] exactly as before — the whole layer compiles away.
    pub metrics: bool,
    /// Flight-recorder ring capacity (events retained per job) when
    /// `metrics` is on.
    pub flight_cap: usize,
    /// Checkpoint every C-- job at this fuel-slice granularity
    /// (`cmm batch --snapshot-every N`): at each boundary the machine
    /// state is captured, encoded with `cmm-snap`, decoded, and
    /// restored in-process before execution continues. Outcomes,
    /// yields, and instruction counts are unchanged by construction —
    /// a divergence is reported as a `snap-error` job failure. The
    /// per-job snapshot count, encoded bytes, and running blob digest
    /// land in the report (deterministic at any `-j`). MiniM3 jobs run
    /// their own driver and are not checkpointed.
    pub snapshot_every: Option<u64>,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            workers: 1,
            queue_cap: 256,
            metrics: false,
            flight_cap: 64,
            snapshot_every: None,
        }
    }
}

/// Checkpointing totals for one job ([`BatchConfig::snapshot_every`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SnapSummary {
    /// Snapshot/restore cycles performed.
    pub count: u64,
    /// Total encoded snapshot bytes.
    pub bytes: u64,
    /// Running [`fold_digest`] over every encoded blob, in order — a
    /// deterministic fingerprint of the job's whole checkpoint stream.
    pub digest: u64,
}

impl Default for SnapSummary {
    fn default() -> SnapSummary {
        SnapSummary {
            count: 0,
            bytes: 0,
            digest: FOLD_INIT,
        }
    }
}

/// What one job reported.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobRecord {
    /// Submission index (report order).
    pub id: usize,
    /// Source path from the manifest.
    pub name: String,
    /// Engine label.
    pub engine: &'static str,
    /// Start procedure.
    pub entry: String,
    /// Call arguments.
    pub args: Vec<u32>,
    /// How the run ended (`halt [..]`, `result N`, `wrong`, `fuel`,
    /// `rts-error`, `error`, `compile-error`, `panicked`).
    pub outcome: String,
    /// Engine-specific detail text (empty on clean halts).
    pub detail: String,
    /// Yield codes serviced, in order (C-- jobs).
    pub yields: Vec<u64>,
    /// Deterministic work count: the cost-model total (instructions +
    /// runtime-instruction equivalents) for vm-family jobs, the
    /// transition count for abstract-machine jobs. Zero only when the
    /// job never ran (compile errors, panics).
    pub instructions: u64,
    /// Checkpointing totals, when the batch ran with
    /// [`BatchConfig::snapshot_every`].
    pub snap: Option<SnapSummary>,
    /// Wall-clock nanoseconds (excluded from deterministic output).
    pub ns: u128,
}

/// A flight-recorder post-mortem for one failed job: the dump text of
/// the job's final events plus its whole-run tallies (see
/// [`cmm_obs::FlightRecorder::dump`]). Produced only under
/// [`BatchConfig::metrics`], for jobs that end in `wrong`, a panic, an
/// `rts-error`/`error`, an injected chaos fault, or a governor trip.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Postmortem {
    /// Submission index of the failed job.
    pub job_id: usize,
    /// Source path from the manifest.
    pub name: String,
    /// Engine label.
    pub engine: &'static str,
    /// The job's outcome string.
    pub outcome: String,
    /// The rendered post-mortem artifact.
    pub text: String,
}

/// The result of one [`run_batch`] call.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job records, in submission order.
    pub jobs: Vec<JobRecord>,
    /// Cache-counter *delta* over this batch (resident bytes are the
    /// absolute post-batch estimate).
    pub cache: CacheSnapshot,
    /// The batch's metrics registry ([`BatchConfig::metrics`] only):
    /// cache shards, per-phase pool meters, and per-job engine /
    /// strategy / Table 1 / chaos figures. Serialized as the report's
    /// `metrics` section and exportable as Prometheus text.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Flight-recorder dumps for failed jobs, in submission order
    /// ([`BatchConfig::metrics`] only).
    pub postmortems: Vec<Postmortem>,
    /// Worker threads used (timing section only — `-j` must not
    /// change the deterministic output).
    pub workers: usize,
    /// Wall-clock nanoseconds for the whole batch.
    pub wall_ns: u128,
}

/// Runs every job, sharing compilations through `cache`.
///
/// Three phases: **(A)** one parallel compile per distinct cache
/// digest — these are the misses; **(B)** resolved-table construction
/// for `sem-resolved` jobs on the calling thread (a
/// [`ResolvedProgram`] borrows its [`Program`](cmm_cfg::Program), so
/// the tables are memoized per batch, not cached across calls — the
/// workspace is `unsafe`-free by policy, which rules out the
/// self-referential cache entry); **(C)** every job in parallel,
/// fetching its artifacts back out of the cache — the hits. A batch
/// over a fresh cache therefore always reports a positive hit rate
/// once any group has a runnable job.
pub fn run_batch(specs: &[JobSpec], cache: &PipelineCache, config: &BatchConfig) -> BatchReport {
    let before = cache.snapshot();
    let t0 = Instant::now();
    let pool = PoolConfig {
        workers: config.workers,
        queue_cap: config.queue_cap,
    };

    // The metrics runtime, when asked for: the cache's shard counters
    // and both phases' pool meters become live registry views, and the
    // per-job flush below adds the engine/strategy/Table 1 figures.
    let registry = config.metrics.then(|| Arc::new(MetricsRegistry::new()));
    let compile_meter = PoolMeter::new();
    let run_meter = PoolMeter::new();
    if let Some(reg) = &registry {
        cache.mount_metrics(reg);
        compile_meter.mount(reg, "compile");
        run_meter.mount(reg, "run");
    }

    // Group jobs by cache digest.
    struct Group {
        key: SourceKey,
        want_decoded: bool,
        want_fused: bool,
        want_resolved: bool,
    }
    let mut groups: Vec<Group> = Vec::new();
    let mut group_of: Vec<usize> = Vec::with_capacity(specs.len());
    let mut by_digest = std::collections::HashMap::new();
    for spec in specs {
        let key = spec.source_key();
        let g = *by_digest.entry(key.digest()).or_insert_with(|| {
            groups.push(Group {
                key,
                want_decoded: false,
                want_fused: false,
                want_resolved: false,
            });
            groups.len() - 1
        });
        groups[g].want_decoded |= spec.engine == EngineKind::VmDecoded;
        groups[g].want_fused |= spec.engine == EngineKind::VmFused;
        groups[g].want_resolved |= spec.engine == EngineKind::SemResolved;
        group_of.push(g);
    }

    // Phase A: compile each group once, in parallel.
    let compile_errs: Vec<Option<String>> = run_jobs_metered(
        &pool,
        (0..groups.len()).collect(),
        |_| (),
        |(), _, g| {
            let grp = &groups[g];
            let r = match grp.key.family {
                EngineFamily::Sem => cache.program(&grp.key).map(|_| ()),
                EngineFamily::Vm if grp.want_fused => cache.fused(&grp.key).map(|_| ()),
                EngineFamily::Vm if grp.want_decoded => cache.decoded(&grp.key).map(|_| ()),
                EngineFamily::Vm => cache.vm_code(&grp.key).map(|_| ()),
            };
            r.err()
        },
        &compile_meter,
    )
    .into_iter()
    .map(|o| match o {
        JobOutcome::Done(err) => err,
        JobOutcome::Panicked(msg) => Some(format!("compiler panicked: {msg}")),
    })
    .collect();

    // Phase B: per-batch resolved tables (borrow the cached programs,
    // which the surrounding scope keeps alive).
    let progs: Vec<Option<Arc<cmm_cfg::Program>>> = groups
        .iter()
        .enumerate()
        .map(|(g, grp)| {
            (grp.want_resolved && compile_errs[g].is_none())
                .then(|| cache.program(&grp.key).ok())
                .flatten()
        })
        .collect();
    let resolveds: Vec<Option<ResolvedProgram>> = progs
        .iter()
        .map(|p| p.as_deref().map(ResolvedProgram::new))
        .collect();

    // Phase C: run every job in parallel against the warm cache. Each
    // worker owns one pair of execution arenas, reused job after job so
    // the hot phase stops paying the allocator; the executor rebuilds a
    // worker's arenas from scratch if one of its jobs panics, so a
    // half-mutated arena never reaches the next job.
    let outcomes = run_jobs_metered(
        &pool,
        (0..specs.len()).collect(),
        |_| ExecArenas::default(),
        |arenas, _, i| {
            let spec = &specs[i];
            let started = Instant::now();
            let g = group_of[i];
            let (mut obs, pm) = match &compile_errs[g] {
                Some(e) => (RunObs::failed("compile-error", e.clone()), None),
                None => run_one(
                    i,
                    spec,
                    cache,
                    resolveds[g].as_ref(),
                    arenas,
                    registry.as_deref(),
                    config.flight_cap,
                    config.snapshot_every,
                ),
            };
            obs.ns = started.elapsed().as_nanos();
            if let Some(reg) = &registry {
                flush_outcome(spec, &obs, reg);
            }
            (record(i, spec, obs), pm)
        },
        &run_meter,
    );
    let mut jobs = Vec::with_capacity(specs.len());
    let mut postmortems = Vec::new();
    for (i, o) in outcomes.into_iter().enumerate() {
        match o {
            JobOutcome::Done((rec, pm)) => {
                jobs.push(rec);
                postmortems.extend(pm);
            }
            JobOutcome::Panicked(msg) => {
                jobs.push(record(i, &specs[i], RunObs::failed("panicked", msg)));
            }
        }
    }

    let after = cache.snapshot();
    BatchReport {
        jobs,
        cache: CacheSnapshot {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
            inflight_waits: after.inflight_waits - before.inflight_waits,
            resident_bytes: after.resident_bytes,
        },
        registry,
        postmortems,
        workers: config.workers,
        wall_ns: t0.elapsed().as_nanos(),
    }
}

/// The exception-technique label a job's figures are keyed by: the
/// MiniM3 lowering strategy, or `raw` for hand-written C--.
fn technique(spec: &JobSpec) -> &'static str {
    match &spec.lang {
        SourceLang::Cmm => "raw",
        SourceLang::MiniM3(s) => match s {
            Strategy::RuntimeUnwind => "runtime-unwind",
            Strategy::Cutting => "cutting",
            Strategy::NativeUnwind => "native-unwind",
            Strategy::Cps => "cps",
            Strategy::Sjlj(_) => "sjlj",
        },
    }
}

/// The outcome-class label (`halt`, `result`, `wrong`, …): the first
/// word of the outcome string, so `halt [0]` and `halt [7]` share a
/// counter.
fn outcome_class(outcome: &str) -> String {
    outcome
        .split_whitespace()
        .next()
        .unwrap_or("empty")
        .to_string()
}

/// Per-job registry flush, part 1: figures known without a sink — the
/// outcome tally and the deterministic virtual-clock latency (the
/// cost-model total, read as 1 instruction = 1 virtual ns). Runs for
/// every job, including compile errors and panics.
fn flush_outcome(spec: &JobSpec, obs: &RunObs, reg: &MetricsRegistry) {
    let det = MetricClass::Deterministic;
    let engine = spec.engine.label();
    let class = outcome_class(&obs.outcome);
    reg.counter(
        "cmm_jobs_total",
        &[("engine", engine), ("outcome", class.as_str())],
        "Batch jobs by engine and outcome class",
        det,
    )
    .inc();
    reg.histogram(
        "cmm_job_virtual_ns",
        &[("engine", engine), ("phase", "run")],
        "Deterministic job latency on the virtual cost clock (1 instruction = 1 ns)",
        det,
    )
    .observe(obs.instructions);
    // Registered even at zero (and when checkpointing is off), so the
    // exported label set is a function of the job set alone.
    let snap = obs.snap.unwrap_or_default();
    reg.counter(
        "cmm_snapshots_total",
        &[("engine", engine)],
        "Machine-state snapshots taken at fuel-slice boundaries",
        det,
    )
    .add(snap.count);
    reg.counter(
        "cmm_snapshot_bytes_total",
        &[("engine", engine)],
        "Encoded snapshot bytes across fuel-slice checkpoints",
        det,
    )
    .add(snap.bytes);
}

/// Per-job registry flush, part 2: the flight recorder's whole-run
/// tallies — engine events by kind, Table 1 ops, per-strategy dispatch
/// mechanisms, and chaos/governor interventions, all keyed by the
/// job's exception technique. Every key is registered even at zero so
/// the exported label set is a function of the job set, not of which
/// paths fired.
fn flush_flight(spec: &JobSpec, flight: &SharedFlight, reg: &MetricsRegistry) {
    let det = MetricClass::Deterministic;
    let engine = spec.engine.label();
    let tech = technique(spec);
    flight.with(|f| {
        let c = &f.counts;
        for (kind, n) in [
            ("call", c.calls),
            ("tail-call", c.tail_calls),
            ("return", c.returns),
            ("abnormal-return", c.abnormal_returns),
            ("cut", c.cuts),
            ("yield", c.yields),
            ("rts-op", c.rts_ops),
            ("cont-capture", c.cont_captures),
            ("cont-death", c.cont_deaths),
            ("chaos", c.chaos_events),
        ] {
            reg.counter(
                "cmm_engine_events_total",
                &[("engine", engine), ("kind", kind), ("technique", tech)],
                "Engine trace events by kind, engine, and exception technique",
                det,
            )
            .add(n);
        }
        for (op, n) in RTS_OP_NAMES.iter().zip(f.rts_ops.iter()) {
            reg.counter(
                "cmm_rts_ops_total",
                &[("engine", engine), ("op", op), ("technique", tech)],
                "Table 1 run-time-interface calls by op and exception technique",
                det,
            )
            .add(*n);
        }
        let s = &f.strategy;
        for (mech, n) in [
            ("cut", s.cuts),
            ("unwind-hop", s.unwind_hops),
            ("unwind-resume", s.unwind_resumes),
            ("abnormal-return", s.abnormal_returns),
            ("normal-resume", s.normal_resumes),
        ] {
            reg.counter(
                "cmm_strategy_dispatch_total",
                &[("mech", mech), ("technique", tech)],
                "Exception-dispatch mechanism uses by technique",
                det,
            )
            .add(n);
        }
        for (what, n) in &f.chaos_tally {
            if let Some(op) = what.strip_prefix("fault ") {
                reg.counter(
                    "cmm_chaos_faults_total",
                    &[("op", op)],
                    "Injected Table 1 faults by operation",
                    det,
                )
                .add(*n);
            } else if let Some(resource) = what.strip_prefix("limit ") {
                reg.counter(
                    "cmm_governor_trips_total",
                    &[("resource", resource)],
                    "Resource-governor limit trips by resource",
                    det,
                )
                .add(*n);
            }
        }
    });
}

/// Runs one compiled job: through [`NopSink`] (identical
/// monomorphization to the pre-metrics service) when `registry` is
/// absent, or through a [`SharedFlight`] recorder — with the registry
/// flush, panic capture, and a post-mortem dump on failure — when
/// present.
#[allow(clippy::too_many_arguments)]
fn run_one(
    id: usize,
    spec: &JobSpec,
    cache: &PipelineCache,
    resolved: Option<&ResolvedProgram>,
    arenas: &mut ExecArenas,
    registry: Option<&MetricsRegistry>,
    flight_cap: usize,
    snap_every: Option<u64>,
) -> (RunObs, Option<Postmortem>) {
    let Some(reg) = registry else {
        return (
            execute(spec, cache, resolved, arenas, snap_every, || NopSink),
            None,
        );
    };
    let flight = SharedFlight::new(flight_cap);
    // Catch the panic here (not in the executor) so the recording —
    // held alive by our handle — survives the engine dying under it.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        execute(spec, cache, resolved, arenas, snap_every, || flight.clone())
    }));
    let obs = match caught {
        Ok(obs) => obs,
        Err(payload) => {
            // The executor never sees this panic, so take over its
            // context hygiene: the arenas may be half mutated.
            *arenas = ExecArenas::default();
            RunObs::failed("panicked", panic_text(payload.as_ref()))
        }
    };
    flush_flight(spec, &flight, reg);
    let failed = matches!(
        outcome_class(&obs.outcome).as_str(),
        "wrong" | "panicked" | "rts-error" | "error"
    ) || flight.with(|f| f.chaos_faults() > 0 || f.governor_trips() > 0);
    let pm = failed.then(|| {
        let header = format!(
            "job {id} `{}` [{} {}] outcome: {}{}{}",
            spec.name,
            spec.engine.label(),
            technique(spec),
            obs.outcome,
            if obs.detail.is_empty() { "" } else { " — " },
            obs.detail,
        );
        Postmortem {
            job_id: id,
            name: spec.name.clone(),
            engine: spec.engine.label(),
            outcome: obs.outcome.clone(),
            text: flight.with(|f| f.dump(&header)),
        }
    });
    (obs, pm)
}

/// What a single execution observed (pre-record form).
struct RunObs {
    outcome: String,
    detail: String,
    yields: Vec<u64>,
    instructions: u64,
    snap: Option<SnapSummary>,
    ns: u128,
}

impl RunObs {
    fn failed(outcome: &str, detail: String) -> RunObs {
        RunObs {
            outcome: outcome.to_string(),
            detail,
            yields: Vec::new(),
            instructions: 0,
            snap: None,
            ns: 0,
        }
    }
}

fn record(id: usize, spec: &JobSpec, obs: RunObs) -> JobRecord {
    JobRecord {
        id,
        name: spec.name.clone(),
        engine: spec.engine.label(),
        entry: spec.entry.clone(),
        args: spec.args.clone(),
        outcome: obs.outcome,
        detail: obs.detail,
        yields: obs.yields,
        instructions: obs.instructions,
        snap: obs.snap,
        ns: obs.ns,
    }
}

/// The per-job resource governor: the `cmm-chaos` fuel slice is the
/// job's "timeout" (every `run` call is clipped to the job budget).
fn governor(spec: &JobSpec) -> ResourceGovernor {
    ResourceGovernor {
        fuel_slice: Some(spec.fuel),
        ..ResourceGovernor::unlimited()
    }
}

/// One worker's reusable execution arenas, one per engine family —
/// the phase C worker context (see [`run_jobs_ctx`]). Arenas bank
/// allocation capacity only, never observable state, so threading one
/// through consecutive jobs cannot change any job's record.
#[derive(Default)]
struct ExecArenas {
    sem: SemArena,
    vm: VmArena,
}

/// Runs one job against the warm cache, drawing machine state from
/// (and returning it to) the worker's arenas. Generic over a sink
/// factory: the plain service passes `|| NopSink` and monomorphizes to
/// exactly the zero-cost instantiation the perf trajectory measures;
/// the metrics service passes a [`SharedFlight`] handle clone.
fn execute<S: TraceSink>(
    spec: &JobSpec,
    cache: &PipelineCache,
    resolved: Option<&ResolvedProgram>,
    arenas: &mut ExecArenas,
    snap_every: Option<u64>,
    mk_sink: impl Fn() -> S,
) -> RunObs {
    let key = spec.source_key();
    match spec.engine {
        EngineKind::Sem => {
            let prog = match cache.program(&key) {
                Ok(p) => p,
                Err(e) => return RunObs::failed("compile-error", e),
            };
            let mut m = Machine::with_sink_in(&prog, mk_sink(), &mut arenas.sem);
            m.set_governor(governor(spec));
            let mut t = Thread::over(m);
            if let Some(seed) = spec.chaos {
                t.set_chaos(FaultPlan::seeded(seed, CHAOS_HORIZON));
            }
            let obs = run_sem_job(spec, &mut t, snap_every);
            t.into_machine().recycle_into(&mut arenas.sem);
            obs
        }
        EngineKind::SemResolved => {
            let Some(rp) = resolved else {
                return RunObs::failed("compile-error", "resolved tables unavailable".into());
            };
            let mut m = ResolvedMachine::with_sink_in(rp, mk_sink(), &mut arenas.sem);
            m.set_governor(governor(spec));
            let mut t = Thread::over(m);
            if let Some(seed) = spec.chaos {
                t.set_chaos(FaultPlan::seeded(seed, CHAOS_HORIZON));
            }
            let obs = run_sem_job(spec, &mut t, snap_every);
            t.into_machine().recycle_into(&mut arenas.sem);
            obs
        }
        EngineKind::Vm => {
            let vp = match cache.vm_code(&key) {
                Ok(vp) => vp,
                Err(e) => return RunObs::failed("compile-error", e),
            };
            let mut t = VmThread::with_sink_in(&vp, mk_sink(), &mut arenas.vm);
            t.machine.set_governor(governor(spec));
            if let Some(seed) = spec.chaos {
                t.set_chaos(FaultPlan::seeded(seed, CHAOS_HORIZON));
            }
            let obs = run_vm_job(spec, &mut t, &vp.image, snap_every);
            t.into_machine().recycle_into(&mut arenas.vm);
            obs
        }
        EngineKind::VmDecoded => {
            let (vp, dec) = match cache.decoded(&key) {
                Ok(x) => x,
                Err(e) => return RunObs::failed("compile-error", e),
            };
            let mut t = VmThread::with_sink_shared_decoded_in(&vp, dec, mk_sink(), &mut arenas.vm);
            t.machine.set_governor(governor(spec));
            if let Some(seed) = spec.chaos {
                t.set_chaos(FaultPlan::seeded(seed, CHAOS_HORIZON));
            }
            let obs = run_vm_job(spec, &mut t, &vp.image, snap_every);
            t.into_machine().recycle_into(&mut arenas.vm);
            obs
        }
        EngineKind::VmFused => {
            let (vp, fu) = match cache.fused(&key) {
                Ok(x) => x,
                Err(e) => return RunObs::failed("compile-error", e),
            };
            let mut t = VmThread::with_sink_shared_fused_in(&vp, fu, mk_sink(), &mut arenas.vm);
            t.machine.set_governor(governor(spec));
            if let Some(seed) = spec.chaos {
                t.set_chaos(FaultPlan::seeded(seed, CHAOS_HORIZON));
            }
            let obs = run_vm_job(spec, &mut t, &vp.image, snap_every);
            t.into_machine().recycle_into(&mut arenas.vm);
            obs
        }
    }
}

fn run_sem_job<'p, M: SemEngine<'p>>(
    spec: &JobSpec,
    t: &mut Thread<'p, M>,
    snap_every: Option<u64>,
) -> RunObs {
    let mut obs = match &spec.lang {
        SourceLang::Cmm => drive_sem(t, spec, snap_every),
        SourceLang::MiniM3(strategy) => match run_sem_thread(t, *strategy, &spec.args) {
            Ok(v) => RunObs {
                outcome: format!("result {v}"),
                ..RunObs::failed("", String::new())
            },
            Err(e) => RunObs::failed("error", e.to_string()),
        },
    };
    // The abstract machines' work figure: transitions taken. As
    // deterministic as the run itself, so it belongs in the gated
    // (timing-stripped) report alongside the vm-family cost totals.
    obs.instructions = t.machine().steps();
    obs
}

fn run_vm_job<S: TraceSink>(
    spec: &JobSpec,
    t: &mut VmThread<'_, S>,
    image: &cmm_cfg::DataImage,
    snap_every: Option<u64>,
) -> RunObs {
    match &spec.lang {
        SourceLang::Cmm => drive_vm(t, spec, snap_every),
        SourceLang::MiniM3(strategy) => match run_vm_thread(t, image, *strategy, &spec.args) {
            Ok((v, cost)) => RunObs {
                outcome: format!("result {v}"),
                instructions: cost.total(),
                ..RunObs::failed("", String::new())
            },
            Err(e) => RunObs::failed("error", e.to_string()),
        },
    }
}

/// The fixed dispatcher's continuation-parameter fill value — the same
/// policy difftest's oracles use (`cmm-pool` cannot depend on
/// `cmm-difftest`: difftest's parallel fuzzing runs on this executor).
fn fill(code: u64) -> u32 {
    (code.wrapping_mul(13).wrapping_add(7) & 0xfff) as u32
}

/// The snapshot metadata a batch checkpoint records.
fn snap_meta(spec: &JobSpec, budget: u64, yields_done: usize) -> SnapMeta {
    SnapMeta {
        entry: spec.entry.clone(),
        args: spec.args.iter().map(|&a| u64::from(a)).collect(),
        fuel_remaining: budget,
        yields_done: yields_done as u64,
        opt: spec.opts != OptOptions::none(),
    }
}

/// The `cmm-snap` engine identifier for a pool job (the label sets are
/// mirrors by construction; both crates' tests pin them).
fn snap_engine(spec: &JobSpec) -> EngineId {
    EngineId::parse(spec.engine.label()).expect("pool engine labels mirror cmm-snap's")
}

/// One in-process checkpoint of a sem-family job: capture → encode →
/// decode → restore into the same machine. Totals land in `sum`.
fn checkpoint_sem<'p, M: SemEngine<'p>>(
    t: &mut Thread<'p, M>,
    spec: &JobSpec,
    budget: u64,
    yields_done: usize,
    sum: &mut SnapSummary,
) -> Result<(), String> {
    let snap = Snapshot {
        engine: snap_engine(spec),
        digest: source_digest(&spec.source, spec.opts != OptOptions::none()),
        meta: snap_meta(spec, budget, yields_done),
        governor: Some(governor(spec)),
        chaos: t.chaos().map(|p| p.state()),
        state: MachineState::Sem(t.machine().capture()?),
    };
    let bytes = snap.encode();
    let decoded = Snapshot::decode(&bytes).map_err(|e| e.to_string())?;
    let MachineState::Sem(st) = &decoded.state else {
        return Err("sem snapshot decoded to a VM state".into());
    };
    t.machine_mut().restore(st)?;
    sum.count += 1;
    sum.bytes += bytes.len() as u64;
    sum.digest = fold_digest(sum.digest, &bytes);
    Ok(())
}

/// [`checkpoint_sem`] for the simulated target.
fn checkpoint_vm<S: TraceSink>(
    t: &mut VmThread<'_, S>,
    spec: &JobSpec,
    budget: u64,
    yields_done: usize,
    sum: &mut SnapSummary,
) -> Result<(), String> {
    let snap = Snapshot {
        engine: snap_engine(spec),
        digest: source_digest(&spec.source, spec.opts != OptOptions::none()),
        meta: snap_meta(spec, budget, yields_done),
        governor: Some(governor(spec)),
        chaos: t.chaos().map(|p| p.state()),
        state: MachineState::Vm(t.machine.capture()?),
    };
    let bytes = snap.encode();
    let decoded = Snapshot::decode(&bytes).map_err(|e| e.to_string())?;
    let MachineState::Vm(st) = &decoded.state else {
        return Err("vm snapshot decoded to a sem state".into());
    };
    t.machine.restore(st)?;
    sum.count += 1;
    sum.bytes += bytes.len() as u64;
    sum.digest = fold_digest(sum.digest, &bytes);
    Ok(())
}

/// Drives a C-- job on an abstract-machine engine, servicing
/// suspensions with the fixed deterministic dispatcher policy (record
/// the code, hop one activation toward the caller, odd codes take
/// unwind continuation 0, parameters filled with [`fill`]).
///
/// With `snap_every = Some(n)` each inter-yield segment's budget is
/// granted `n` transitions at a time, checkpointing at every slice
/// boundary; fuel accounting is exact on every engine, so the job's
/// outcome, yields, and instruction count are identical to the
/// unsliced run.
fn drive_sem<'p, M: SemEngine<'p>>(
    t: &mut Thread<'p, M>,
    spec: &JobSpec,
    snap_every: Option<u64>,
) -> RunObs {
    let mut obs = RunObs::failed("", String::new());
    obs.snap = snap_every.map(|_| SnapSummary::default());
    let args = spec.args.iter().map(|&a| Value::b32(a)).collect();
    if let Err(w) = t.start(&spec.entry, args) {
        return RunObs::failed("wrong", w.to_string());
    }
    loop {
        let mut budget = spec.fuel;
        let status = loop {
            let slice = match snap_every {
                Some(n) => n.max(1).min(budget),
                None => budget,
            };
            let before = t.machine().steps();
            let status = t.run(slice);
            budget = budget.saturating_sub(t.machine().steps().saturating_sub(before));
            if matches!(status, Status::OutOfFuel) && budget > 0 && snap_every.is_some() {
                let sum = obs.snap.as_mut().expect("summary exists when slicing");
                if let Err(e) = checkpoint_sem(t, spec, budget, obs.yields.len(), sum) {
                    obs.outcome = "snap-error".into();
                    obs.detail = e;
                    return obs;
                }
                continue;
            }
            break status;
        };
        match status {
            Status::Terminated(vals) => {
                let bits: Vec<u64> = vals.iter().map(|v| v.bits().unwrap_or(u64::MAX)).collect();
                obs.outcome = format!("halt {bits:?}");
                return obs;
            }
            Status::Wrong(w) => {
                obs.outcome = "wrong".into();
                obs.detail = w.to_string();
                return obs;
            }
            Status::OutOfFuel => {
                obs.outcome = "fuel".into();
                obs.detail = "out of fuel".into();
                return obs;
            }
            Status::Suspended => {
                if obs.yields.len() >= spec.max_yields {
                    obs.outcome = "fuel".into();
                    obs.detail = "suspension bound".into();
                    return obs;
                }
                let code = t.yield_code().unwrap_or(0);
                obs.yields.push(code);
                let Some(mut a) = t.first_activation() else {
                    obs.outcome = "rts-error".into();
                    obs.detail = "no first activation".into();
                    return obs;
                };
                let _ = t.next_activation(&mut a);
                if let Err(w) = t.set_activation(&a) {
                    obs.outcome = "rts-error".into();
                    obs.detail = w.to_string();
                    return obs;
                }
                if code % 2 == 1 {
                    let _ = t.set_unwind_cont(0);
                }
                let v = Value::b32(fill(code));
                let mut n = 0;
                while let Some(p) = t.find_cont_param(n) {
                    *p = v.clone();
                    n += 1;
                }
                if let Err(w) = t.resume() {
                    obs.outcome = "rts-error".into();
                    obs.detail = w.to_string();
                    return obs;
                }
            }
            other => {
                obs.outcome = "rts-error".into();
                obs.detail = format!("unexpected status {other:?}");
                return obs;
            }
        }
    }
}

/// [`drive_sem`] for the simulated target.
fn drive_vm<S: TraceSink>(
    t: &mut VmThread<'_, S>,
    spec: &JobSpec,
    snap_every: Option<u64>,
) -> RunObs {
    let mut obs = RunObs::failed("", String::new());
    obs.snap = snap_every.map(|_| SnapSummary::default());
    let args: Vec<u64> = spec.args.iter().map(|&a| u64::from(a)).collect();
    t.start(&spec.entry, &args, spec.results);
    loop {
        let mut budget = spec.fuel;
        let status = loop {
            let slice = match snap_every {
                Some(n) => n.max(1).min(budget),
                None => budget,
            };
            let before = t.machine.cost.instructions;
            let status = t.run(slice);
            budget = budget.saturating_sub(t.machine.cost.instructions.saturating_sub(before));
            if matches!(status, VmStatus::OutOfFuel) && budget > 0 && snap_every.is_some() {
                let sum = obs.snap.as_mut().expect("summary exists when slicing");
                if let Err(e) = checkpoint_vm(t, spec, budget, obs.yields.len(), sum) {
                    obs.outcome = "snap-error".into();
                    obs.detail = e;
                    obs.instructions = t.machine.cost.total();
                    return obs;
                }
                continue;
            }
            break status;
        };
        match status {
            VmStatus::Halted(vals) => {
                obs.outcome = format!("halt {vals:?}");
                obs.instructions = t.machine.cost.total();
                return obs;
            }
            VmStatus::Error(e) => {
                obs.outcome = "wrong".into();
                obs.detail = e;
                obs.instructions = t.machine.cost.total();
                return obs;
            }
            VmStatus::OutOfFuel => {
                obs.outcome = "fuel".into();
                obs.detail = "out of fuel".into();
                obs.instructions = t.machine.cost.total();
                return obs;
            }
            VmStatus::Suspended => {
                if obs.yields.len() >= spec.max_yields {
                    obs.outcome = "fuel".into();
                    obs.detail = "suspension bound".into();
                    obs.instructions = t.machine.cost.total();
                    return obs;
                }
                let code = t.machine.yield_args(1)[0];
                obs.yields.push(code);
                let Some(mut a) = t.first_activation() else {
                    obs.outcome = "rts-error".into();
                    obs.detail = "no first activation".into();
                    return obs;
                };
                let _ = t.next_activation(&mut a);
                if let Err(e) = t.set_activation(&a) {
                    obs.outcome = "rts-error".into();
                    obs.detail = e;
                    return obs;
                }
                if code % 2 == 1 {
                    let _ = t.set_unwind_cont(0);
                }
                let v = u64::from(fill(code));
                let mut n = 0;
                while let Some(p) = t.find_cont_param(n) {
                    *p = v;
                    n += 1;
                }
                if let Err(e) = t.resume() {
                    obs.outcome = "rts-error".into();
                    obs.detail = e;
                    return obs;
                }
            }
            other => {
                obs.outcome = "rts-error".into();
                obs.detail = format!("unexpected status {other:?}");
                return obs;
            }
        }
    }
}

impl BatchReport {
    /// Job records that make the batch a failure: compile errors,
    /// panicked jobs, and `wrong` verdicts. The CLI exits non-zero and
    /// names each of these — a broken job must never hide inside an
    /// otherwise-green JSON report.
    pub fn failing_jobs(&self) -> Vec<&JobRecord> {
        self.jobs
            .iter()
            .filter(|j| {
                matches!(
                    j.outcome.as_str(),
                    "compile-error" | "panicked" | "wrong" | "snap-error"
                )
            })
            .collect()
    }

    /// Serializes the report. With `with_timing = false` every
    /// scheduling- or clock-dependent field is omitted (per-job `ns`,
    /// the `timing` section, the cache's in-flight waits and resident
    /// estimate), which makes the output a pure function of the job
    /// list: CI runs `-j1` and `-j4` and byte-compares.
    pub fn to_json(&self, with_timing: bool) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"cmm-pool-batch-v1\",\n");
        let _ = writeln!(s, "  \"jobs\": [");
        for (i, j) in self.jobs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{ \"id\": {}, \"source\": {}, \"engine\": {}, \"entry\": {}, \
                 \"args\": {:?}, \"outcome\": {}, \"detail\": {}, \"yields\": {:?}, \
                 \"instructions\": {}",
                j.id,
                json_str(&j.name),
                json_str(j.engine),
                json_str(&j.entry),
                j.args,
                json_str(&j.outcome),
                json_str(&j.detail),
                j.yields,
                j.instructions,
            );
            if let Some(snap) = &j.snap {
                let _ = write!(
                    s,
                    ", \"snapshots\": {}, \"snapshot_bytes\": {}, \"snapshot_digest\": \"{:#018x}\"",
                    snap.count, snap.bytes, snap.digest
                );
            }
            if with_timing {
                let _ = write!(s, ", \"ns\": {}", j.ns);
            }
            let _ = writeln!(s, " }}{}", if i + 1 < self.jobs.len() { "," } else { "" });
        }
        s.push_str("  ],\n");
        let c = &self.cache;
        // Permille, to keep floats out of gated output.
        let rate = (c.hits * 1000).checked_div(c.hits + c.misses).unwrap_or(0);
        let _ = write!(
            s,
            "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"hit_rate_permille\": {} }}",
            c.hits, c.misses, c.evictions, rate
        );
        if let Some(reg) = &self.registry {
            s.push_str(",\n  \"metrics\": ");
            // Reindent the registry's object to sit two levels deep.
            for (i, line) in reg.to_json(with_timing).lines().enumerate() {
                if i > 0 {
                    s.push_str("\n  ");
                }
                s.push_str(line);
            }
        }
        if with_timing {
            let _ = write!(
                s,
                ",\n  \"timing\": {{ \"workers\": {}, \"wall_ns\": {}, \
                 \"inflight_waits\": {}, \"resident_bytes\": {} }}",
                self.workers, self.wall_ns, c.inflight_waits, c.resident_bytes
            );
        }
        s.push_str("\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
