//! The content-addressed compilation cache.
//!
//! A [`PipelineCache`] memoizes every stage of the compilation
//! pipeline, keyed by `(`[`Digest`]`, `[`Stage`]`)`:
//!
//! | [`Stage`] | artifact | produced by |
//! |---|---|---|
//! | `Module`  | parsed (and for C-- sources, verified) AST | `cmm-parse` / `cmm-frontend` |
//! | `Program` | CFG after the configured optimization pipeline | `cmm-cfg` + `cmm-opt` |
//! | `VmCode`  | compiled `VmProgram` | `cmm-vm` codegen |
//! | `Decoded` | pre-decoded instruction array | `cmm-vm` decode |
//! | `Fused`   | fused superinstruction stream | `cmm-vm` fuse |
//!
//! The digest covers the raw source bytes, the [`OptOptions`], and the
//! engine *family* ([`EngineFamily`]): the two abstract-machine engines
//! share one artifact chain, the three simulated-target engines another.
//! See [`crate::digest`] for why the source is hashed byte-exactly.
//!
//! **Sharding.** The map is lock-striped into [`SHARDS`] buckets keyed
//! by the digest's low bits, each with its own mutex, condvar, and
//! [`cmm_obs::CacheStats`] — so a batch's hot phase, where every job
//! refetches
//! its artifacts, never funnels through one lock or one contended
//! counter cache line. Both stages of one source land in the same
//! shard (the key is the digest; the stage only subdivides it), which
//! keeps a source's artifact chain local to one stripe.
//!
//! **Single flight.** The first requester of a missing artifact
//! installs an in-flight marker and builds outside the lock; concurrent
//! requesters block on the shard's condvar until the artifact is ready.
//! Waiters count as *hits* (plus an `inflight_waits` tally), so per key
//! there is exactly one miss no matter how many threads race — hit/miss
//! totals for a fixed job set are scheduling-independent. The split of
//! those totals across shards is a pure function of the digests, so it
//! is scheduling-independent too.
//!
//! **Eviction.** Ready artifacts carry a byte estimate and a
//! last-touched stamp from a *global* logical clock (one atomic; bumped
//! on every touch); when the summed resident estimate exceeds
//! [`CacheConfig::max_bytes`], a single evictor (serialized by a gate
//! mutex so concurrent inserters do not over-evict) drops the globally
//! least-recently-used ready entries, whichever shard they live in —
//! sharding changes who holds which lock, not which entry is the LRU
//! victim. In-flight markers are never evicted, and the `Arc`s already
//! handed out keep their artifacts alive — eviction only forgets, it
//! cannot invalidate.

use crate::digest::Digest;
use cmm_cfg::Program;
use cmm_ir::Module;
use cmm_obs::{CacheSnapshot, ShardedCacheStats};
use cmm_opt::OptOptions;
use cmm_vm::{DecodedCode, FusedCode, VmProgram};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};

/// Which artifact chain a job needs: the abstract machines (`sem`,
/// `sem-resolved`) execute the CFG [`Program`]; the simulated targets
/// (`vm`, `vm-decoded`, `vm-fused`) execute [`VmProgram`] code. The
/// family is a digest input, so the chains never alias.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EngineFamily {
    /// Abstract-machine chain (stops at [`Stage::Program`]).
    Sem,
    /// Simulated-target chain (extends to [`Stage::VmCode`] /
    /// [`Stage::Decoded`] / [`Stage::Fused`]).
    Vm,
}

impl EngineFamily {
    fn tag(self) -> &'static [u8] {
        match self {
            EngineFamily::Sem => b"sem",
            EngineFamily::Vm => b"vm",
        }
    }
}

/// What language the source text is in, and how to lower it.
#[derive(Clone, PartialEq, Debug)]
pub enum SourceLang {
    /// A C-- module, parsed by `cmm-parse` and checked by the
    /// `cmm-ir` verifier.
    Cmm,
    /// A MiniM3 module, lowered by `cmm-frontend` with the given
    /// exception-implementation strategy. (The lowering is validated
    /// by the cross-strategy equivalence suite, not re-verified here.)
    MiniM3(cmm_frontend::Strategy),
}

/// Everything that identifies a compilation: source text, language and
/// lowering strategy, optimization configuration, engine family.
#[derive(Clone, Debug)]
pub struct SourceKey {
    /// Raw source text (whitespace-sensitive by design).
    pub source: String,
    /// Language / lowering.
    pub lang: SourceLang,
    /// Optimization pipeline configuration.
    pub opts: OptOptions,
    /// Artifact chain.
    pub family: EngineFamily,
}

impl SourceKey {
    /// The cache digest: raw source bytes + language/strategy tag +
    /// rendered [`OptOptions`] + engine-family tag, length-prefixed.
    pub fn digest(&self) -> Digest {
        let lang = match &self.lang {
            SourceLang::Cmm => "cmm".to_string(),
            // Debug form includes the arch profile for Sjlj, which is
            // exactly the information the lowering consumes.
            SourceLang::MiniM3(s) => format!("m3:{s:?}"),
        };
        let o = &self.opts;
        let opts = format!(
            "constprop={} localopt={} dce={} callee_save_regs={} max_iters={}",
            o.constprop, o.localopt, o.dce, o.callee_save_regs, o.max_iters
        );
        Digest::of(&[
            self.source.as_bytes(),
            lang.as_bytes(),
            opts.as_bytes(),
            self.family.tag(),
        ])
    }
}

/// Pipeline stage of a cached artifact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Stage {
    /// Parsed (and verified, for C--) AST.
    Module,
    /// Optimized CFG.
    Program,
    /// Compiled simulated-target code.
    VmCode,
    /// Pre-decoded instruction array.
    Decoded,
    /// Fused superinstruction stream (built over [`Stage::Decoded`]).
    Fused,
}

/// A memoized artifact. All variants are cheap-to-clone `Arc`s.
#[derive(Clone)]
pub enum Artifact {
    /// [`Stage::Module`].
    Module(Arc<Module>),
    /// [`Stage::Program`].
    Program(Arc<Program>),
    /// [`Stage::VmCode`].
    VmCode(Arc<VmProgram>),
    /// [`Stage::Decoded`].
    Decoded(Arc<DecodedCode>),
    /// [`Stage::Fused`].
    Fused(Arc<FusedCode>),
}

impl Artifact {
    /// Estimated resident size. A heuristic over node/instruction
    /// counts — the budget is a pressure valve, not an allocator
    /// ledger, so proportionality is what matters.
    pub fn cost_bytes(&self) -> u64 {
        match self {
            Artifact::Module(m) => {
                let items: usize = m.procs().map(|p| 2 + p.body.len()).sum();
                256 + 96 * (m.decls.len() + items) as u64
            }
            Artifact::Program(p) => {
                let nodes: usize = p.procs.values().map(|g| g.nodes.len() + g.vars.len()).sum();
                512 + 160 * nodes as u64 + 24 * p.image.bytes.len() as u64
            }
            Artifact::VmCode(vp) => {
                512 + 32 * vp.code.len() as u64 + 24 * vp.image.bytes.len() as u64
            }
            Artifact::Decoded(d) => 64 + 48 * d.insts.len() as u64,
            // The fused stream keeps its own 16-byte insts plus an Arc
            // to the plain decoded stream it retains for fuel tails;
            // the latter is shared with the Decoded entry, so only the
            // fused array is charged here.
            Artifact::Fused(f) => 64 + 16 * f.insts.len() as u64,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct Key {
    digest: Digest,
    stage: Stage,
}

enum Slot {
    /// Another thread is building this artifact.
    InFlight,
    /// Ready to serve.
    Ready {
        artifact: Artifact,
        bytes: u64,
        last_use: u64,
    },
}

/// Number of lock stripes. A small power of two: enough that eight
/// workers rarely collide on a stripe, small enough that the global
/// eviction scan stays trivial.
pub const SHARDS: usize = 16;

/// One lock stripe: its slice of the map plus the condvar that
/// single-flight waiters in this stripe block on.
struct Shard {
    inner: Mutex<Inner>,
    ready: Condvar,
}

struct Inner {
    map: HashMap<Key, Slot>,
    /// Sum of `bytes` over this shard's ready slots.
    resident: u64,
}

/// Configuration for a [`PipelineCache`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Eviction threshold for the estimated resident bytes.
    pub max_bytes: u64,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            max_bytes: 256 << 20,
        }
    }
}

/// A content-addressed, single-flight, LRU-bounded compilation cache,
/// lock-striped into [`SHARDS`] buckets by digest.
pub struct PipelineCache {
    shards: Vec<Shard>,
    /// Global logical clock for LRU stamps (bumped on every touch, in
    /// any shard) — what makes eviction order shard-independent.
    clock: AtomicU64,
    /// Serializes eviction passes so concurrent inserters do not race
    /// each other into over-evicting. An evictor holds at most one
    /// shard lock at a time while holding the gate, and no thread
    /// acquires the gate while holding a shard lock, so the gate
    /// introduces no lock-order cycle.
    evict_gate: Mutex<()>,
    config: CacheConfig,
    stats: ShardedCacheStats,
}

impl Default for PipelineCache {
    fn default() -> PipelineCache {
        PipelineCache::new(CacheConfig::default())
    }
}

impl PipelineCache {
    /// An empty cache with the given byte budget.
    pub fn new(config: CacheConfig) -> PipelineCache {
        PipelineCache {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    inner: Mutex::new(Inner {
                        map: HashMap::new(),
                        resident: 0,
                    }),
                    ready: Condvar::new(),
                })
                .collect(),
            clock: AtomicU64::new(0),
            evict_gate: Mutex::new(()),
            config,
            stats: ShardedCacheStats::new(SHARDS),
        }
    }

    /// The per-shard service counters (hits, misses, evictions, …).
    pub fn stats(&self) -> &ShardedCacheStats {
        &self.stats
    }

    /// A point-in-time copy of the counters, aggregated across shards.
    pub fn snapshot(&self) -> CacheSnapshot {
        self.stats.snapshot()
    }

    /// Point-in-time copies of every shard's counters, in shard order.
    /// The split is a pure function of the digests in play, so for a
    /// fixed job set it is as scheduling-independent as the aggregate.
    pub fn shard_snapshots(&self) -> Vec<CacheSnapshot> {
        self.stats.shard_snapshots()
    }

    /// Mounts the per-shard counters into `registry` as live views
    /// (`cmm_cache_*{shard="i"}`); the registry then exports the very
    /// cells the cache updates, with no copy step.
    pub fn mount_metrics(&self, registry: &cmm_obs::MetricsRegistry) {
        self.stats.mount(registry);
    }

    /// Which stripe a digest lives in: its low bits. FNV-1a mixes the
    /// whole input into every output byte, so the low bits are well
    /// spread even across near-identical sources.
    fn shard_index(digest: Digest) -> usize {
        (digest.0 as usize) & (SHARDS - 1)
    }

    /// A fresh LRU stamp, strictly later than every stamp issued
    /// before it.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Relaxed) + 1
    }

    /// The single-flight memoization core: returns the ready artifact
    /// for `(digest, stage)`, building it with `build` on a miss.
    /// Concurrent requesters of the same key wait for the one builder.
    ///
    /// If the build fails the in-flight marker is removed and each
    /// waiter retries as a builder; a deterministic build error is
    /// therefore rediscovered (never cached), which keeps the error
    /// path simple and the counters monotone.
    pub fn get_or_build(
        &self,
        digest: Digest,
        stage: Stage,
        build: impl FnOnce() -> Result<Artifact, String>,
    ) -> Result<Artifact, String> {
        let key = Key { digest, stage };
        let idx = PipelineCache::shard_index(digest);
        let shard = &self.shards[idx];
        let stats = self.stats.shard(idx);
        let mut waited = false;
        let mut inner = shard.inner.lock().expect("cache poisoned");
        loop {
            match inner.map.get_mut(&key) {
                Some(Slot::Ready {
                    artifact, last_use, ..
                }) => {
                    *last_use = self.tick();
                    let art = artifact.clone();
                    stats.hits.inc();
                    if waited {
                        stats.inflight_waits.inc();
                    }
                    return Ok(art);
                }
                Some(Slot::InFlight) => {
                    waited = true;
                    inner = shard.ready.wait(inner).expect("cache poisoned");
                }
                None => {
                    inner.map.insert(key, Slot::InFlight);
                    stats.misses.inc();
                    break;
                }
            }
        }
        drop(inner);
        // Build outside the lock. A panic in `build` would strand the
        // in-flight marker and hang waiters, so clean up via a guard.
        let guard = FlightGuard { shard, key };
        let built = build();
        std::mem::forget(guard);
        let mut inner = shard.inner.lock().expect("cache poisoned");
        match built {
            Ok(artifact) => {
                let bytes = artifact.cost_bytes();
                let stamp = self.tick();
                inner.map.insert(
                    key,
                    Slot::Ready {
                        artifact: artifact.clone(),
                        bytes,
                        last_use: stamp,
                    },
                );
                inner.resident += bytes;
                stats.resident_bytes.set(inner.resident);
                drop(inner);
                shard.ready.notify_all();
                self.evict_over_budget();
                Ok(artifact)
            }
            Err(e) => {
                inner.map.remove(&key);
                drop(inner);
                shard.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Drops globally least-recently-used ready entries until the
    /// summed resident estimate fits the budget. In-flight markers are
    /// never touched. One evictor runs at a time (the gate); it scans
    /// all shards for the oldest stamp holding one shard lock at a
    /// time, then re-validates the victim under its shard's lock before
    /// removing it — a concurrent hit that refreshed the stamp in the
    /// gap forces a rescan instead of a wrong eviction. The scan is
    /// `O(entries)` per eviction — fine at the budgets a build service
    /// runs with, where eviction is the rare case.
    fn evict_over_budget(&self) {
        if self.stats.resident_total() <= self.config.max_bytes {
            return;
        }
        let _gate = self.evict_gate.lock().expect("evict gate poisoned");
        while self.stats.resident_total() > self.config.max_bytes {
            let mut victim: Option<(u64, usize, Key)> = None;
            for (idx, shard) in self.shards.iter().enumerate() {
                let inner = shard.inner.lock().expect("cache poisoned");
                for (k, s) in &inner.map {
                    if let Slot::Ready { last_use, .. } = s {
                        let cand = (*last_use, idx, *k);
                        if victim.is_none_or(|v| cand < v) {
                            victim = Some(cand);
                        }
                    }
                }
            }
            let Some((stamp, idx, key)) = victim else {
                break;
            };
            let shard = &self.shards[idx];
            let mut inner = shard.inner.lock().expect("cache poisoned");
            let still_oldest = matches!(
                inner.map.get(&key),
                Some(Slot::Ready { last_use, .. }) if *last_use == stamp
            );
            if still_oldest {
                if let Some(Slot::Ready { bytes, .. }) = inner.map.remove(&key) {
                    inner.resident -= bytes;
                    let stats = self.stats.shard(idx);
                    stats.resident_bytes.set(inner.resident);
                    stats.evictions.inc();
                }
            }
            // Touched or gone since the scan: loop and rescan.
        }
    }

    /// The parsed [`Module`] for `key` (verified, for C-- sources).
    pub fn module(&self, key: &SourceKey) -> Result<Arc<Module>, String> {
        let art = self.get_or_build(key.digest(), Stage::Module, || {
            let module = match &key.lang {
                SourceLang::Cmm => {
                    let m = cmm_parse::parse_module(&key.source).map_err(|e| e.to_string())?;
                    let errors = cmm_ir::verify_module(&m);
                    if !errors.is_empty() {
                        return Err(format!("verifier: {}", errors.join("; ")));
                    }
                    m
                }
                SourceLang::MiniM3(strategy) => {
                    cmm_frontend::compile_minim3(&key.source, *strategy)
                        .map_err(|e| e.to_string())?
                }
            };
            Ok(Artifact::Module(Arc::new(module)))
        })?;
        match art {
            Artifact::Module(m) => Ok(m),
            _ => unreachable!("stage key mismatch"),
        }
    }

    /// The optimized CFG [`Program`] for `key`.
    pub fn program(&self, key: &SourceKey) -> Result<Arc<Program>, String> {
        let art = self.get_or_build(key.digest(), Stage::Program, || {
            let module = self.module(key)?;
            let mut prog = cmm_cfg::build_program(&module).map_err(|e| e.to_string())?;
            cmm_opt::optimize_program(&mut prog, &key.opts);
            Ok(Artifact::Program(Arc::new(prog)))
        })?;
        match art {
            Artifact::Program(p) => Ok(p),
            _ => unreachable!("stage key mismatch"),
        }
    }

    /// The compiled [`VmProgram`] for `key`.
    pub fn vm_code(&self, key: &SourceKey) -> Result<Arc<VmProgram>, String> {
        let art = self.get_or_build(key.digest(), Stage::VmCode, || {
            let prog = self.program(key)?;
            let vp = cmm_vm::compile(&prog).map_err(|e| e.to_string())?;
            Ok(Artifact::VmCode(Arc::new(vp)))
        })?;
        match art {
            Artifact::VmCode(vp) => Ok(vp),
            _ => unreachable!("stage key mismatch"),
        }
    }

    /// The compiled program together with its pre-decoded instruction
    /// array.
    pub fn decoded(&self, key: &SourceKey) -> Result<(Arc<VmProgram>, Arc<DecodedCode>), String> {
        let vp = self.vm_code(key)?;
        let art = self.get_or_build(key.digest(), Stage::Decoded, || {
            Ok(Artifact::Decoded(Arc::new(DecodedCode::decode(&vp))))
        })?;
        match art {
            Artifact::Decoded(d) => Ok((vp, d)),
            _ => unreachable!("stage key mismatch"),
        }
    }

    /// The compiled program together with its fused superinstruction
    /// stream. Builds on [`PipelineCache::decoded`]: the fused stream
    /// retains the decoded stream, so a batch wanting both pays for
    /// one decode.
    pub fn fused(&self, key: &SourceKey) -> Result<(Arc<VmProgram>, Arc<FusedCode>), String> {
        let (vp, dec) = self.decoded(key)?;
        let art = self.get_or_build(key.digest(), Stage::Fused, || {
            Ok(Artifact::Fused(Arc::new(FusedCode::fuse(&vp, dec.clone()))))
        })?;
        match art {
            Artifact::Fused(f) => Ok((vp, f)),
            _ => unreachable!("stage key mismatch"),
        }
    }
}

/// Removes the in-flight marker if the builder panics (forgotten on
/// the normal path).
struct FlightGuard<'c> {
    shard: &'c Shard,
    key: Key,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.shard.inner.lock() {
            inner.map.remove(&self.key);
        }
        self.shard.ready.notify_all();
    }
}
