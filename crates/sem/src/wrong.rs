//! The ways a program can go wrong.

use crate::state::NodeRef;
use cmm_ir::expr::OpError;
use cmm_ir::Name;
use std::fmt;

/// Why the abstract machine went wrong (reached a state with no permitted
/// transition other than normal termination).
///
/// Going wrong models the paper's *unchecked run-time errors*: for
/// example, "invoking a dead continuation is an unchecked run-time
/// error, which it is up to the high-level front end to avoid" (§4.1),
/// and the behaviour of a fast-but-dangerous primitive that fails "is
/// unspecified" (§4.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Wrong {
    /// A name was evaluated that is bound nowhere (use before
    /// definition, or an undeclared name that escaped validation).
    UnboundName(NodeRef, Name),
    /// A call's callee did not evaluate to code.
    NotCode(NodeRef),
    /// An operand that must be `Bits` was a `Code` or `Cont` value.
    NotBits(NodeRef),
    /// Binary operands had different widths.
    WidthMismatch(NodeRef),
    /// A fast-but-dangerous primitive failed (`%divu` by zero, ...).
    OpFailed(NodeRef, OpError),
    /// `cut to` targeted a continuation whose activation is dead
    /// (uid not found on the stack).
    DeadContinuation(NodeRef),
    /// `cut to` found the continuation's activation, but the suspended
    /// call site does not list the continuation in `also cuts to`.
    CutNotAnnotated(NodeRef),
    /// Unwinding or cutting tried to discard an activation whose
    /// suspended call site has no `also aborts` annotation.
    NotAbortable(NodeRef),
    /// `Exit <j/n>` did not match the suspended call site's number of
    /// alternate return continuations.
    ReturnArityMismatch {
        /// Where the return happened.
        at: NodeRef,
        /// `n` claimed by the `return <j/n>`.
        claimed: u32,
        /// Alternates actually declared at the call site.
        actual: u32,
    },
    /// A `CopyIn` needed more values than the argument-passing area held.
    TooFewValues(NodeRef),
    /// The program exited abnormally (`Exit <j/n>`, j ≠ n or n ≠ 0) with
    /// an empty stack.
    AbnormalTopLevelExit(NodeRef),
    /// The run-time system attempted an operation the `Yield` rules do
    /// not permit (e.g. resuming at a node not in the topmost bundle).
    RtsViolation(String),
    /// There is no procedure with the given name.
    NoSuchProc(NodeRef, Name),
    /// The machine was used while not in a usable status (e.g. `run`
    /// after it went wrong).
    NotRunnable,
    /// A `cmm-chaos` fault plan injected a failure into a Table 1
    /// operation (`op @ invocation`, in `FaultPlan` terms).
    ChaosFault {
        /// The faulted operation's stable name.
        op: String,
        /// The 1-based invocation count at which it tripped.
        invocation: u64,
    },
    /// A `cmm-chaos` resource-governor limit tripped (stack depth or
    /// memory), expressed in this engine family's units.
    LimitTripped {
        /// Which limit (`"stack-depth"` or `"memory"`).
        limit: String,
        /// The observed figure that exceeded the limit.
        observed: u64,
    },
}

impl fmt::Display for Wrong {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Wrong::UnboundName(at, n) => write!(f, "{at}: unbound name `{n}`"),
            Wrong::NotCode(at) => write!(f, "{at}: callee is not code"),
            Wrong::NotBits(at) => write!(f, "{at}: operand is not a bits value"),
            Wrong::WidthMismatch(at) => write!(f, "{at}: operand widths differ"),
            Wrong::OpFailed(at, e) => write!(f, "{at}: primitive failed: {e}"),
            Wrong::DeadContinuation(at) => write!(f, "{at}: cut to a dead continuation"),
            Wrong::CutNotAnnotated(at) => {
                write!(f, "{at}: cut to a continuation not listed in `also cuts to`")
            }
            Wrong::NotAbortable(at) => write!(
                f,
                "{at}: discarding an activation whose call site has no `also aborts` annotation"
            ),
            Wrong::ReturnArityMismatch { at, claimed, actual } => write!(
                f,
                "{at}: return declares {claimed} alternate continuations but the call site has {actual}"
            ),
            Wrong::TooFewValues(at) => {
                write!(f, "{at}: too few values in the argument-passing area")
            }
            Wrong::AbnormalTopLevelExit(at) => {
                write!(f, "{at}: abnormal exit with an empty stack")
            }
            Wrong::RtsViolation(msg) => write!(f, "run-time system violation: {msg}"),
            Wrong::NoSuchProc(at, n) => write!(f, "{at}: no such procedure `{n}`"),
            Wrong::NotRunnable => write!(f, "machine is not in a runnable state"),
            Wrong::ChaosFault { op, invocation } => {
                write!(f, "chaos: injected fault in {op} at invocation {invocation}")
            }
            Wrong::LimitTripped { limit, observed } => {
                write!(f, "chaos: {limit} limit tripped at {observed}")
            }
        }
    }
}

impl std::error::Error for Wrong {}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::NodeId;

    #[test]
    fn display_is_informative() {
        let at = NodeRef::new("f", NodeId(2));
        assert!(Wrong::DeadContinuation(at.clone())
            .to_string()
            .contains("dead"));
        assert!(Wrong::OpFailed(at, OpError::DivideByZero)
            .to_string()
            .contains("zero"));
    }
}
