//! Portable suspended-state capture for the abstract-machine family.
//!
//! A [`SemState`] is the paper's seven-component machine state (§5.2)
//! — control, ρ, callee-saves set, uid, memory, argument area, stack —
//! plus the bookkeeping a resumption needs (uid counter, continuation
//! encodings, status, step count), written entirely in *name space*:
//! environments are sorted `(name, value)` pairs, callee-saves sets are
//! sorted name lists, and control is a `(procedure, node)` pair. Nothing
//! in it refers to slot numbers, program pointers, or any other
//! engine-private representation, so a state captured from the
//! reference [`Machine`](crate::Machine) restores into the pre-resolved
//! [`ResolvedMachine`](crate::ResolvedMachine) and vice versa — the
//! cross-engine resume invariant the snapshot-equivalence oracle
//! checks.
//!
//! Two invariants matter for the serialized form:
//!
//! * **Canonical ordering.** Every map-backed component is emitted
//!   sorted (environments and globals by name, memory by address), so
//!   capturing the same machine state twice yields equal values and —
//!   one layer up in `cmm-snap` — byte-identical encodings.
//! * **Resumable points only.** A state is captured only while the
//!   machine is [`Suspended`](crate::Status::Suspended) (at a `Yield`)
//!   or [`OutOfFuel`](crate::Status::OutOfFuel) (at a fuel-slice
//!   boundary); these are exactly the points where the front-end
//!   run-time system may own the thread, and the only statuses a
//!   restore will accept.
//!
//! What is *not* captured: the program itself (a restore validates the
//! state against the program the new machine was built over — `cmm-snap`
//! additionally carries a source digest), the trace sink (a resumed
//! machine starts with a fresh sink; its clock continues from the
//! restored `steps`), and the resource governor (pure configuration,
//! reinstalled by the driver).

use crate::state::NodeRef;
use crate::value::Value;
use cmm_cfg::NodeId;
use cmm_ir::Name;

/// The status a captured state was suspended in — the two resumable
/// points of the machine's lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapStatus {
    /// Control is at a `Yield` node; the run-time system has the
    /// machine.
    Suspended,
    /// `run` exhausted its fuel mid-execution; the next `run` call
    /// continues.
    OutOfFuel,
}

/// One suspended activation frame, in name space. The continuation
/// bundle is *not* captured: it is a pure function of the call site
/// (`proc`'s graph node at `call_site` is the `Call` that pushed this
/// frame), so a restore re-derives it — and rejects states whose call
/// sites are not `Call` nodes.
#[derive(Clone, PartialEq, Debug)]
pub struct FrameState {
    /// The procedure whose activation this frame is.
    pub proc: Name,
    /// The `Call` node at which the activation is suspended.
    pub call_site: NodeId,
    /// The suspended environment ρ', sorted by name.
    pub rho: Vec<(Name, Value)>,
    /// The suspended callee-saves set, sorted.
    pub saves: Vec<Name>,
    /// The unique id of the suspended activation.
    pub uid: u64,
}

/// The full suspended state of an abstract machine, portable across
/// both engines of the family. See the module documentation.
#[derive(Clone, PartialEq, Debug)]
pub struct SemState {
    /// The procedure the control component points into.
    pub proc: Name,
    /// The current node within that procedure's graph.
    pub node: NodeId,
    /// The local environment ρ, sorted by name.
    pub rho: Vec<(Name, Value)>,
    /// The callee-saves set, sorted.
    pub saves: Vec<Name>,
    /// The unique id of the current activation.
    pub uid: u64,
    /// Memory as sorted `(address, byte)` pairs, zero bytes elided.
    pub mem: Vec<(u64, u8)>,
    /// The argument-passing area (also the `yield` arguments while
    /// suspended).
    pub area: Vec<Value>,
    /// The activation stack, bottom first.
    pub stack: Vec<FrameState>,
    /// Global registers, sorted by name.
    pub globals: Vec<(Name, Value)>,
    /// The next unique activation id to allocate.
    pub next_uid: u64,
    /// The continuation-flattening side table, in allocation order
    /// (index `i` is the encoding at `CONT_BASE + 8 i`).
    pub cont_encodings: Vec<(NodeRef, u64)>,
    /// The status the machine was captured in.
    pub status: SnapStatus,
    /// Transitions taken so far (the machine's trace clock).
    pub steps: u64,
}

/// Sorts an iterator of owned `(name, value)` bindings into the
/// canonical capture order.
pub(crate) fn sorted_bindings(it: impl Iterator<Item = (Name, Value)>) -> Vec<(Name, Value)> {
    let mut v: Vec<(Name, Value)> = it.collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}
