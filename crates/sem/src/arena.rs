//! A reusable execution arena for the abstract-machine engines.
//!
//! Both abstract machines allocate a handful of heap containers per
//! run: the byte-map memory, the variable environment, the activation
//! stack, the global-register table, the continuation-encoding table.
//! A batch worker that runs thousands of jobs pays the allocator (and
//! the drop glue) for each of them unless something banks the
//! capacity between runs. [`SemArena`] is that bank: `Machine` and
//! `ResolvedMachine` offer `with_sink_in` constructors that draw their
//! containers from an arena and `recycle_into` to give the (cleared)
//! containers back.
//!
//! The arena carries **no observable state**: every container is
//! cleared on recycle, so a machine built from an arena starts from
//! exactly the state a fresh one would. Clearing keeps capacity —
//! that retained capacity is the entire point — and capacity is not
//! observable in any oracle (the governor's footprint figures count
//! live entries, not reserved slots). The engine-equivalence suite
//! locks the fresh-vs-recycled equality in.
//!
//! One deliberate omission: the resolved machine's activation frames
//! borrow the `ResolvedProgram` (`RFrame<'p>`), so its *stack* cannot
//! outlive one program's run and is never banked — the workspace's
//! no-`unsafe` policy rules out laundering that lifetime. The frame
//! stacks are the smallest of the containers; the byte-map memory and
//! environments dominate.

use crate::state::{Env, Frame, NodeRef};
use crate::value::Value;
use cmm_ir::Name;
use std::collections::HashMap;

/// Banked heap containers for both abstract-machine engines. See the
/// module docs for the reuse contract.
#[derive(Debug, Default)]
pub struct SemArena {
    /// Byte-map memory, shared by both machines (only one runs at a
    /// time per arena).
    pub(crate) mem: HashMap<u64, u8>,
    /// Reference machine: the named environment.
    pub(crate) rho: Env,
    /// Reference machine: the stack-data area.
    pub(crate) area: Vec<Value>,
    /// Reference machine: the activation stack (frames are fully
    /// owned, so the whole stack banks).
    pub(crate) stack: Vec<Frame>,
    /// Reference machine: the global-register table.
    pub(crate) globals: HashMap<Name, Value>,
    /// Reference machine: the continuation-encoding table.
    pub(crate) cont_encodings: Vec<(NodeRef, u64)>,
    /// Resolved machine: the indexed environment.
    pub(crate) r_rho: Vec<Option<Value>>,
    /// Resolved machine: the callee-save slot list.
    pub(crate) r_saves: Vec<u32>,
    /// Resolved machine: the stack-data area.
    pub(crate) r_area: Vec<Value>,
    /// Resolved machine: the indexed global-register table.
    pub(crate) r_globals: Vec<Value>,
    /// Resolved machine: the continuation-encoding table.
    pub(crate) r_cont_encodings: Vec<(NodeRef, u64)>,
}

impl SemArena {
    /// An empty arena.
    pub fn new() -> SemArena {
        SemArena::default()
    }
}
