//! The execution-engine interface shared by the reference abstract
//! machine ([`Machine`]) and the pre-resolved engine
//! ([`crate::resolved::ResolvedMachine`]).
//!
//! The front-end run-time system (Table 1, implemented in `cmm-rt`)
//! needs a small window on a thread: start/run it, inspect the
//! suspended activation stack, and apply resumptions. Everything in
//! that window is engine-independent — an activation is identified by
//! its `(procedure, call site)` pair and a continuation by a
//! [`NodeRef`] — so the run-time system is written once against this
//! trait and works unchanged over either step loop.

use crate::machine::{Machine, RtsTarget, Status};
use crate::snapshot::SemState;
use crate::state::NodeRef;
use crate::value::Value;
use crate::wrong::Wrong;
use cmm_cfg::{NodeId, Program};
use cmm_ir::{Name, Ty};
use cmm_obs::{Event, TraceSink};

/// One thread of C-- execution, as seen by the front-end run-time
/// system. See the module documentation.
pub trait SemEngine<'p> {
    /// The program being executed.
    fn program(&self) -> &'p Program;

    /// The current status.
    fn status(&self) -> &Status;

    /// Begins execution of the named procedure (memory and globals
    /// persist across starts).
    ///
    /// # Errors
    ///
    /// Fails if the procedure does not exist or the engine is suspended.
    fn start(&mut self, proc: &str, args: Vec<Value>) -> Result<(), Wrong>;

    /// Runs up to `fuel` transitions.
    fn run(&mut self, fuel: u64) -> Status;

    /// Transitions taken so far.
    fn steps(&self) -> u64;

    /// The values passed to `yield` (valid while suspended).
    fn yield_args(&self) -> &[Value];

    /// Number of live activations.
    fn depth(&self) -> usize;

    /// The call site of the activation `i` frames down from the top
    /// (0 = the activation that called into the run-time system).
    fn activation_site(&self, i: usize) -> Option<NodeRef>;

    /// Discards the topmost activation (requires `also aborts`).
    ///
    /// # Errors
    ///
    /// Fails if not suspended, the stack is empty, or the topmost call
    /// site lacks `also aborts`.
    fn rts_pop_frame(&mut self) -> Result<(), Wrong>;

    /// Resumes at a continuation of the topmost frame's bundle.
    ///
    /// # Errors
    ///
    /// Fails if not suspended, the target is absent from the bundle, or
    /// the argument count does not match the continuation's parameters.
    fn rts_resume(&mut self, target: RtsTarget, args: Vec<Value>) -> Result<(), Wrong>;

    /// Cuts the stack to a continuation value.
    ///
    /// # Errors
    ///
    /// Fails if not suspended, the continuation is dead, an intervening
    /// activation lacks `also aborts`, or the target call site lacks
    /// `also cuts to`.
    fn rts_cut_to(&mut self, cont: &Value, args: Vec<Value>) -> Result<(), Wrong>;

    /// Recovers a continuation from a value or its flattened encoding.
    fn decode_cont(&self, v: &Value) -> Option<(NodeRef, u64)>;

    /// Parameter count of the continuation at `node`, if it is a
    /// `CopyIn` node.
    fn cont_param_count(&self, proc: &Name, node: NodeId) -> Option<usize>;

    /// Loads a typed value from memory.
    fn load(&self, ty: Ty, addr: u64) -> Value;

    /// Stores bits to memory with the width of `ty`.
    fn store(&mut self, ty: Ty, addr: u64, bits: u64);

    /// The whole memory as sorted `(address, byte)` pairs, zero bytes
    /// elided — a canonical form for cross-engine equivalence checks.
    fn mem_snapshot(&self) -> Vec<(u64, u8)>;

    /// Captures the suspended state as a portable [`SemState`] (see
    /// [`crate::snapshot`]). Both engines capture equal states at
    /// matching execution points.
    ///
    /// # Errors
    ///
    /// Fails (with a description) unless the engine is suspended or out
    /// of fuel.
    fn capture(&self) -> Result<SemState, String>;

    /// Restores a captured state, which may come from either engine of
    /// the family. The engine is unchanged on error.
    ///
    /// # Errors
    ///
    /// Fails if the state does not validate against this engine's
    /// program.
    fn restore(&mut self, st: &SemState) -> Result<(), String>;

    /// Whether the engine's trace sink is live. Layers above the engine
    /// (the Table 1 run-time system) guard event construction with
    /// this, exactly as the engine guards with `S::ENABLED` — for the
    /// default `NopSink` instantiation it is a constant `false` and the
    /// emission code folds away.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Emits an event into the engine's sink at its current clock.
    /// No-op when tracing is off.
    fn trace(&mut self, _e: Event) {}
}

impl<'p, S: TraceSink> SemEngine<'p> for Machine<'p, S> {
    fn program(&self) -> &'p Program {
        Machine::program(self)
    }

    fn status(&self) -> &Status {
        Machine::status(self)
    }

    fn start(&mut self, proc: &str, args: Vec<Value>) -> Result<(), Wrong> {
        Machine::start(self, proc, args)
    }

    fn run(&mut self, fuel: u64) -> Status {
        Machine::run(self, fuel)
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn yield_args(&self) -> &[Value] {
        Machine::yield_args(self)
    }

    fn depth(&self) -> usize {
        self.stack().len()
    }

    fn activation_site(&self, i: usize) -> Option<NodeRef> {
        self.activation(i).map(|f| f.site())
    }

    fn rts_pop_frame(&mut self) -> Result<(), Wrong> {
        Machine::rts_pop_frame(self)
    }

    fn rts_resume(&mut self, target: RtsTarget, args: Vec<Value>) -> Result<(), Wrong> {
        Machine::rts_resume(self, target, args)
    }

    fn rts_cut_to(&mut self, cont: &Value, args: Vec<Value>) -> Result<(), Wrong> {
        Machine::rts_cut_to(self, cont, args)
    }

    fn decode_cont(&self, v: &Value) -> Option<(NodeRef, u64)> {
        Machine::decode_cont(self, v)
    }

    fn cont_param_count(&self, proc: &Name, node: NodeId) -> Option<usize> {
        Machine::cont_param_count(self, proc, node)
    }

    fn load(&self, ty: Ty, addr: u64) -> Value {
        Machine::load(self, ty, addr)
    }

    fn store(&mut self, ty: Ty, addr: u64, bits: u64) {
        Machine::store(self, ty, addr, bits)
    }

    fn mem_snapshot(&self) -> Vec<(u64, u8)> {
        Machine::mem_snapshot(self)
    }

    fn capture(&self) -> Result<SemState, String> {
        Machine::capture(self)
    }

    fn restore(&mut self, st: &SemState) -> Result<(), String> {
        Machine::restore(self, st)
    }

    fn trace_enabled(&self) -> bool {
        S::ENABLED
    }

    fn trace(&mut self, e: Event) {
        self.emit(e);
    }
}
