//! Machine values (§5.1).

use crate::state::NodeRef;
use cmm_ir::Width;
use std::fmt;

/// A value of the C-- abstract machine.
///
/// "To enable variables to denote procedures and continuations as well as
/// basic C-- values, we define a value as one of the following forms:
/// `Bits_n k` (the n-bit value k), `Code p` (a pointer to the node p),
/// `Cont (p, u)` (a continuation to the node p in the stack frame with
/// unique id u)."
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// An n-bit value. Floats are carried as their IEEE-754 bit patterns.
    Bits(Width, u64),
    /// A pointer to the code of the named procedure.
    Code(cmm_ir::Name),
    /// A continuation: a node together with the unique id of the
    /// activation it belongs to.
    Cont(NodeRef, u64),
}

impl Value {
    /// A `bits32` value.
    pub fn b32(v: u32) -> Value {
        Value::Bits(Width::W32, u64::from(v))
    }

    /// A `bits64` value.
    pub fn b64(v: u64) -> Value {
        Value::Bits(Width::W64, v)
    }

    /// The bits of a `Bits` value, if it is one.
    pub fn bits(&self) -> Option<u64> {
        match self {
            Value::Bits(_, v) => Some(*v),
            _ => None,
        }
    }

    /// True iff the value is `Bits` and non-zero (branch conditions).
    pub fn truthy(&self) -> bool {
        matches!(self, Value::Bits(_, v) if *v != 0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bits(w, v) => write!(f, "{v}::bits{}", w.bits()),
            Value::Code(n) => write!(f, "Code({n})"),
            Value::Cont(p, u) => write!(f, "Cont({p}, uid {u})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(Value::b32(1).truthy());
        assert!(!Value::b32(0).truthy());
        assert!(!Value::Code(cmm_ir::Name::from("f")).truthy());
    }

    #[test]
    fn display() {
        assert_eq!(Value::b32(7).to_string(), "7::bits32");
    }
}
