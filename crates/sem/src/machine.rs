//! The abstract machine: every transition rule of §5.2.

use crate::snapshot::{sorted_bindings, FrameState, SemState, SnapStatus};
use crate::state::{Env, Frame, NodeRef};
use crate::value::Value;
use crate::wrong::Wrong;
use cmm_cfg::{Node, NodeId, Program};
use cmm_chaos::{LimitTrip, ResourceGovernor};
use cmm_ir::expr::sign_extend;
use cmm_ir::{BinOp, Expr, FWidth, Lit, Lvalue, Name, Ty, Width};
use cmm_obs::{Event, NopSink, TraceSink};
use std::collections::{BTreeSet, HashMap};

/// Where continuation values live when flattened to bits (stored to
/// memory or mixed into arithmetic). §5.4: "one possible implementation
/// is to allocate two words in the current activation record, and to
/// represent `Cont (p, u)` as a pointer to this pair"; we model the
/// pointer with a synthetic address range and a side table.
pub(crate) const CONT_BASE: u64 = 0x9000_0000;

/// The execution status of a [`Machine`].
#[derive(Clone, PartialEq, Debug)]
pub enum Status {
    /// Not started yet.
    Idle,
    /// Transitions remain possible.
    Running,
    /// Control is at a `Yield` node: the front-end run-time system has
    /// the machine (§3.3). Use the `rts_*` methods, then the machine is
    /// `Running` again.
    Suspended,
    /// Terminated normally (`Exit 0 0` with an empty stack); holds the
    /// returned values.
    Terminated(Vec<Value>),
    /// The program went wrong.
    Wrong(Wrong),
    /// `run` exhausted its fuel; call `run` again to continue.
    OutOfFuel,
}

/// Which continuation of the topmost frame's bundle the run-time system
/// resumes at (the §5.2 `Yield` transitions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RtsTarget {
    /// `kp_r[i]`: a return continuation (callee-saves restored). The
    /// normal return point is the *last* index.
    Return(usize),
    /// `kp_u[i]`: an `also unwinds to` continuation (callee-saves
    /// restored); the index is the `n` of `SetUnwindCont(t, n)`.
    Unwind(usize),
    /// `kp_c[i]`: an `also cuts to` continuation (callee-saves **not**
    /// restored).
    Cut(usize),
}

/// The C-- abstract machine: one thread of §5.2, together with its
/// memory, global registers, and stack.
///
/// The machine is generic over a [`TraceSink`]; the default
/// [`NopSink`] compiles every emission away (guarded by
/// `S::ENABLED`), so untraced machines pay nothing.
#[derive(Clone, Debug)]
pub struct Machine<'p, S: TraceSink = NopSink> {
    prog: &'p Program,
    control: NodeRef,
    rho: Env,
    saves: BTreeSet<Name>,
    uid: u64,
    mem: HashMap<u64, u8>,
    area: Vec<Value>,
    stack: Vec<Frame>,
    globals: HashMap<Name, Value>,
    next_uid: u64,
    cont_encodings: Vec<(NodeRef, u64)>,
    status: Status,
    /// Number of transitions taken so far (for cost measurements).
    pub steps: u64,
    governor: Option<ResourceGovernor>,
    sink: S,
}

impl<'p> Machine<'p> {
    /// Creates a machine over a program, with memory initialized from the
    /// program's data image and global registers from their declarations.
    pub fn new(prog: &'p Program) -> Machine<'p> {
        Machine::with_sink(prog, NopSink)
    }
}

impl<'p, S: TraceSink> Machine<'p, S> {
    /// [`Machine::new`] with an explicit trace sink.
    pub fn with_sink(prog: &'p Program, sink: S) -> Machine<'p, S> {
        Machine::with_sink_in(prog, sink, &mut crate::arena::SemArena::new())
    }

    /// [`Machine::with_sink`] drawing the machine's heap containers
    /// from `arena` instead of the allocator. The machine starts from
    /// exactly the state a fresh one would; reclaim the allocations
    /// afterwards with [`Machine::recycle_into`].
    pub fn with_sink_in(
        prog: &'p Program,
        sink: S,
        arena: &mut crate::arena::SemArena,
    ) -> Machine<'p, S> {
        let mut mem = std::mem::take(&mut arena.mem);
        mem.clear();
        mem.extend(prog.image.bytes.iter().map(|(&a, &b)| (a, b)));
        let mut globals = std::mem::take(&mut arena.globals);
        globals.clear();
        globals.extend(prog.globals.iter().map(|g| {
            let w = match g.ty {
                Ty::Bits(w) => w,
                Ty::Float(FWidth::F32) => Width::W32,
                Ty::Float(FWidth::F64) => Width::W64,
            };
            let v = g.init.map(|l| l.bits).unwrap_or(0);
            (g.name.clone(), Value::Bits(w, v))
        }));
        let mut rho = std::mem::take(&mut arena.rho);
        rho.clear();
        let mut area = std::mem::take(&mut arena.area);
        area.clear();
        let mut stack = std::mem::take(&mut arena.stack);
        stack.clear();
        let mut cont_encodings = std::mem::take(&mut arena.cont_encodings);
        cont_encodings.clear();
        Machine {
            prog,
            control: NodeRef::new("", NodeId(0)),
            rho,
            saves: BTreeSet::new(),
            uid: 0,
            mem,
            area,
            stack,
            globals,
            next_uid: 1,
            cont_encodings,
            status: Status::Idle,
            steps: 0,
            governor: None,
            sink,
        }
    }

    /// Consumes the machine and banks its heap containers (cleared) in
    /// `arena` for the next [`Machine::with_sink_in`]. Nothing from
    /// this run can leak into the next: every container is emptied
    /// here, and capacity is not observable state.
    pub fn recycle_into(self, arena: &mut crate::arena::SemArena) {
        let Machine {
            mut mem,
            mut rho,
            mut area,
            mut stack,
            mut globals,
            mut cont_encodings,
            ..
        } = self;
        mem.clear();
        rho.clear();
        area.clear();
        stack.clear();
        globals.clear();
        cont_encodings.clear();
        arena.mem = mem;
        arena.rho = rho;
        arena.area = area;
        arena.stack = stack;
        arena.globals = globals;
        arena.cont_encodings = cont_encodings;
    }

    /// Installs a resource governor: depth and memory limits are
    /// enforced at the matching transition rules, and `run`'s fuel is
    /// clipped to the governor's per-resume slice. Both abstract-machine
    /// engines place the checks at identical transitions, so a governed
    /// pair stays observationally equal.
    pub fn set_governor(&mut self, g: ResourceGovernor) {
        self.governor = Some(g);
    }

    /// The installed governor, if any.
    pub fn governor(&self) -> Option<&ResourceGovernor> {
        self.governor.as_ref()
    }

    /// Emits the chaos event for a limit trip (when tracing) and builds
    /// the `Wrong` that reports it.
    #[cold]
    pub(crate) fn limit_wrong(&mut self, trip: LimitTrip, observed: u64) -> Wrong {
        if S::ENABLED {
            self.emit(Event::Chaos {
                what: format!("limit {trip}"),
            });
        }
        Wrong::LimitTripped {
            limit: trip.to_string(),
            observed,
        }
    }

    /// The trace sink (to read back recorded events or counters).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the machine, returning its sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Emits a trace event at the current step count. Callers must
    /// guard payload construction with `S::ENABLED` themselves.
    #[inline]
    pub(crate) fn emit(&mut self, e: Event) {
        if S::ENABLED {
            self.sink.event(self.steps, e);
        }
    }

    /// The program this machine executes.
    pub fn program(&self) -> &'p Program {
        self.prog
    }

    /// The current status.
    pub fn status(&self) -> &Status {
        &self.status
    }

    /// Begins execution of the named procedure with the given arguments.
    ///
    /// Memory and global registers persist across `start` calls on the
    /// same machine, so a sequence of entry points shares state.
    ///
    /// # Errors
    ///
    /// Fails if the procedure does not exist or the machine is suspended
    /// in the run-time system.
    pub fn start(&mut self, proc: &str, args: Vec<Value>) -> Result<(), Wrong> {
        if matches!(self.status, Status::Suspended) {
            return Err(Wrong::NotRunnable);
        }
        let g = self
            .prog
            .proc(proc)
            .ok_or_else(|| Wrong::NoSuchProc(NodeRef::new(proc, NodeId(0)), Name::from(proc)))?;
        self.control = NodeRef {
            proc: g.name.clone(),
            node: g.entry,
        };
        self.rho = Env::new();
        self.saves = BTreeSet::new();
        self.uid = self.fresh_uid();
        self.area = args;
        self.stack.clear();
        self.status = Status::Running;
        Ok(())
    }

    fn fresh_uid(&mut self) -> u64 {
        let u = self.next_uid;
        self.next_uid += 1;
        u
    }

    /// Runs up to `fuel` transitions; returns the resulting status.
    /// A governed machine additionally clips `fuel` to the governor's
    /// per-resume slice.
    pub fn run(&mut self, fuel: u64) -> Status {
        let fuel = match &self.governor {
            Some(g) => g.slice(fuel),
            None => fuel,
        };
        if matches!(self.status, Status::OutOfFuel) {
            self.status = Status::Running;
        }
        for _ in 0..fuel {
            if !matches!(self.status, Status::Running) {
                return self.status.clone();
            }
            self.step();
        }
        if matches!(self.status, Status::Running) {
            self.status = Status::OutOfFuel;
        }
        self.status.clone()
    }

    /// Takes a single transition. No-op unless the status is `Running`.
    pub fn step(&mut self) {
        if !matches!(self.status, Status::Running) {
            return;
        }
        self.steps += 1;
        if let Err(w) = self.transition() {
            self.status = Status::Wrong(w);
        }
    }

    fn here(&self) -> NodeRef {
        self.control.clone()
    }

    fn transition(&mut self) -> Result<(), Wrong> {
        let g = self
            .prog
            .proc(self.control.proc.as_str())
            .ok_or_else(|| Wrong::NoSuchProc(self.here(), self.control.proc.clone()))?;
        // `g` borrows from `prog` (lifetime 'p), not from `self`, so the
        // node can be inspected while `self` is mutated.
        let node: &'p Node = g.node(self.control.node);
        match node {
            // Entry kk p: ρ := addConts(∅, kk, uid); s := ∅.
            Node::Entry { conts, next } => {
                let mut rho = Env::new();
                for (name, id) in conts {
                    rho.insert(
                        name.clone(),
                        Value::Cont(
                            NodeRef {
                                proc: self.control.proc.clone(),
                                node: *id,
                            },
                            self.uid,
                        ),
                    );
                }
                self.rho = rho;
                self.saves.clear();
                if S::ENABLED && !conts.is_empty() {
                    self.emit(Event::ContCapture {
                        proc: self.control.proc.clone(),
                        uid: self.uid,
                        conts: conts.len() as u32,
                    });
                }
                self.control.node = *next;
                Ok(())
            }
            // Exit j n: pop an activation and return to kp_r[j].
            Node::Exit { index, alternates } => {
                let Some(frame) = self.stack.pop() else {
                    if *index == 0 && *alternates == 0 {
                        if S::ENABLED {
                            self.emit(Event::Return {
                                proc: self.control.proc.clone(),
                                index: *index,
                                alternates: *alternates,
                            });
                        }
                        self.status = Status::Terminated(self.area.clone());
                        return Ok(());
                    }
                    return Err(Wrong::AbnormalTopLevelExit(self.here()));
                };
                if frame.bundle.alternates() != *alternates || *index > *alternates {
                    let actual = frame.bundle.alternates();
                    self.stack.push(frame);
                    return Err(Wrong::ReturnArityMismatch {
                        at: self.here(),
                        claimed: *alternates,
                        actual,
                    });
                }
                if S::ENABLED {
                    self.emit(Event::Return {
                        proc: self.control.proc.clone(),
                        index: *index,
                        alternates: *alternates,
                    });
                }
                let target = frame.bundle.returns[*index as usize];
                self.control = NodeRef {
                    proc: frame.proc,
                    node: target,
                };
                self.rho = frame.rho;
                self.saves = frame.saves;
                self.uid = frame.uid;
                Ok(())
            }
            // CopyIn pv p: ρ[pv ⟵ A]; A := nil.
            Node::CopyIn { vars, next } => {
                if self.area.len() < vars.len() {
                    return Err(Wrong::TooFewValues(self.here()));
                }
                let values = std::mem::take(&mut self.area);
                for (v, val) in vars.iter().zip(values) {
                    self.rho.insert(v.clone(), val);
                }
                self.control.node = *next;
                Ok(())
            }
            // CopyOut pe p: A := E[[pe]]ρM.
            Node::CopyOut { exprs, next } => {
                let mut vals = Vec::with_capacity(exprs.len());
                for e in exprs {
                    vals.push(self.eval(e)?);
                }
                self.area = vals;
                self.control.node = *next;
                Ok(())
            }
            // CalleeSaves s' p: s := s'.
            Node::CalleeSaves { vars, next } => {
                self.saves = vars.clone();
                self.control.node = *next;
                Ok(())
            }
            // Assign l e p.
            Node::Assign { lhs, rhs, next } => {
                let v = self.eval(rhs)?;
                match lhs {
                    Lvalue::Var(n) => self.write_var(n, v)?,
                    Lvalue::Mem(ty, a) => {
                        let addr = self.eval_bits(a)?.1;
                        let bits = self.flatten(v)?;
                        self.store(*ty, addr, bits);
                        if let Some(g) = self.governor {
                            let bytes = self.mem.len();
                            if let Some(trip) = g.check_memory(bytes) {
                                return Err(self.limit_wrong(trip, bytes as u64));
                            }
                        }
                    }
                }
                self.control.node = *next;
                Ok(())
            }
            // Branch π pt pf.
            Node::Branch { cond, t, f } => {
                let (_, v) = self.eval_bits(cond)?;
                self.control.node = if v != 0 { *t } else { *f };
                Ok(())
            }
            // Call e_f Γ: push an activation; fresh uid.
            Node::Call { callee, bundle, .. } => {
                let target = self.resolve_code(callee)?;
                if let Some(g) = self.governor {
                    let depth = self.stack.len() + 1;
                    if let Some(trip) = g.check_depth(depth) {
                        return Err(self.limit_wrong(trip, depth as u64));
                    }
                }
                if S::ENABLED {
                    self.emit(Event::Call {
                        caller: self.control.proc.clone(),
                        callee: target.clone(),
                    });
                }
                let frame = Frame {
                    proc: self.control.proc.clone(),
                    call_site: self.control.node,
                    bundle: bundle.clone(),
                    rho: std::mem::take(&mut self.rho),
                    saves: std::mem::take(&mut self.saves),
                    uid: self.uid,
                };
                self.stack.push(frame);
                self.enter(&target)
            }
            // Jump e_f: the continuation bundle is already on the stack.
            Node::Jump { callee } => {
                let target = self.resolve_code(callee)?;
                if S::ENABLED {
                    self.emit(Event::TailCall {
                        caller: self.control.proc.clone(),
                        callee: target.clone(),
                    });
                }
                self.rho.clear();
                self.saves.clear();
                self.enter(&target)
            }
            // CutTo e.
            Node::CutTo { cont, cuts } => {
                let v = self.eval(cont)?;
                let (target, tuid) = self
                    .decode_cont(&v)
                    .ok_or_else(|| Wrong::DeadContinuation(self.here()))?;
                if tuid == self.uid && target.proc == self.control.proc {
                    // Cut within the current activation: requires an
                    // `also cuts to` annotation on the `cut to` itself.
                    if !cuts.contains(&target.node) {
                        return Err(Wrong::CutNotAnnotated(self.here()));
                    }
                    let killed = std::mem::take(&mut self.saves);
                    for s in &killed {
                        self.rho.remove(s);
                    }
                    if S::ENABLED {
                        self.emit(Event::CutTo {
                            proc: self.control.proc.clone(),
                            target: target.proc.clone(),
                            killed_saves: killed.len() as u32,
                        });
                    }
                    self.control = target;
                    return Ok(());
                }
                let cutter = if S::ENABLED {
                    Some((self.control.proc.clone(), target.proc.clone()))
                } else {
                    None
                };
                let killed = self.cut_stack(target, tuid)?;
                if S::ENABLED {
                    if let Some((proc, target)) = cutter {
                        self.emit(Event::CutTo {
                            proc,
                            target,
                            killed_saves: killed,
                        });
                    }
                }
                Ok(())
            }
            // Yield: execution passes to the front-end run-time system.
            Node::Yield => {
                if S::ENABLED {
                    let code = self.area.first().and_then(Value::bits).unwrap_or(0);
                    self.emit(Event::Yield { code });
                }
                self.status = Status::Suspended;
                Ok(())
            }
        }
    }

    /// The stack-truncating loop shared by the `CutTo` node and the
    /// run-time interface's `SetCutToCont` (§5.2's CutTo rules).
    /// Returns the number of callee-saves the cut killed in the target
    /// frame.
    fn cut_stack(&mut self, target: NodeRef, tuid: u64) -> Result<u32, Wrong> {
        loop {
            let Some(top) = self.stack.last() else {
                return Err(Wrong::DeadContinuation(self.here()));
            };
            if top.uid == tuid {
                if top.proc != target.proc || !top.bundle.cuts.contains(&target.node) {
                    return Err(Wrong::CutNotAnnotated(self.here()));
                }
                let mut frame = self.stack.pop().expect("frame checked above");
                // "cut to does not restore values stored in callee-saves
                // registers; we model this behaviour by removing them
                // from the saved environment ρ'."
                let killed = frame.saves.len() as u32;
                for s in &frame.saves {
                    frame.rho.remove(s);
                }
                self.control = target;
                self.rho = frame.rho;
                self.saves = BTreeSet::new();
                self.uid = frame.uid;
                return Ok(killed);
            }
            if !top.bundle.aborts {
                return Err(Wrong::NotAbortable(top.site()));
            }
            let dead = self.stack.pop().expect("frame checked above");
            if S::ENABLED {
                self.emit(Event::ContDeath {
                    proc: dead.proc,
                    uid: dead.uid,
                });
            }
        }
    }

    fn enter(&mut self, proc: &Name) -> Result<(), Wrong> {
        let g = self
            .prog
            .proc(proc.as_str())
            .ok_or_else(|| Wrong::NoSuchProc(self.here(), proc.clone()))?;
        self.control = NodeRef {
            proc: g.name.clone(),
            node: g.entry,
        };
        self.uid = self.fresh_uid();
        Ok(())
    }

    fn resolve_code(&mut self, callee: &Expr) -> Result<Name, Wrong> {
        match self.eval(callee)? {
            Value::Code(n) => Ok(n),
            Value::Bits(_, addr) => self
                .prog
                .proc_at(addr)
                .cloned()
                .ok_or_else(|| Wrong::NotCode(self.here())),
            Value::Cont(..) => Err(Wrong::NotCode(self.here())),
        }
    }

    fn write_var(&mut self, n: &Name, v: Value) -> Result<(), Wrong> {
        let g = self
            .prog
            .proc(self.control.proc.as_str())
            .expect("current proc exists");
        if g.var_ty(n).is_some() {
            self.rho.insert(n.clone(), v);
            Ok(())
        } else if self.globals.contains_key(n) {
            self.globals.insert(n.clone(), v);
            Ok(())
        } else {
            Err(Wrong::UnboundName(self.here(), n.clone()))
        }
    }

    // ----- expression evaluation (the function E of §5.1) -----

    /// Evaluates a pure expression in the current environment.
    ///
    /// # Errors
    ///
    /// Returns [`Wrong`] for unbound names and failing fast primitives
    /// (whose behaviour "is unspecified" — going wrong is a permitted
    /// refinement).
    pub fn eval(&mut self, e: &Expr) -> Result<Value, Wrong> {
        match e {
            Expr::Lit(l) => Ok(lit_value(*l)),
            Expr::Name(n) => self.lookup(n),
            Expr::Mem(ty, a) => {
                let addr = self.eval_bits(a)?.1;
                Ok(self.load(*ty, addr))
            }
            Expr::Unary(op, a) => {
                let (w, bits) = self.eval_bits(a)?;
                let (r, rw) = op.eval(w, bits);
                Ok(Value::Bits(rw, r))
            }
            Expr::Binary(op, a, b) => {
                let (wa, va) = self.eval_bits(a)?;
                let (wb, vb) = self.eval_bits(b)?;
                let shiftish = matches!(op, BinOp::Shl | BinOp::ShrU | BinOp::ShrS);
                if wa != wb && !shiftish {
                    return Err(Wrong::WidthMismatch(self.here()));
                }
                let (r, rw) = op
                    .eval(wa, va, vb)
                    .map_err(|e| Wrong::OpFailed(self.here(), e))?;
                Ok(Value::Bits(rw, r))
            }
        }
    }

    fn eval_bits(&mut self, e: &Expr) -> Result<(Width, u64), Wrong> {
        let v = self.eval(e)?;
        match v {
            Value::Bits(w, b) => Ok((w, b)),
            other => {
                let bits = self.flatten(other)?;
                Ok((Width::W32, bits))
            }
        }
    }

    fn lookup(&mut self, n: &Name) -> Result<Value, Wrong> {
        if let Some(v) = self.rho.get(n) {
            return Ok(v.clone());
        }
        if let Some(v) = self.globals.get(n) {
            return Ok(v.clone());
        }
        if self.prog.procs.contains_key(n) {
            return Ok(Value::Code(n.clone()));
        }
        if let Some(addr) = self.prog.image.symbol(n.as_str()) {
            // A data-block name denotes the immutable address of the
            // block (§3.1). (Procedure names were handled above.)
            return Ok(Value::Bits(Width::W32, addr));
        }
        Err(Wrong::UnboundName(self.here(), n.clone()))
    }

    /// Converts a value to raw bits: `Code` becomes its synthetic code
    /// address; `Cont` is interned in the side table (§5.4's
    /// pointer-to-pair representation).
    fn flatten(&mut self, v: Value) -> Result<u64, Wrong> {
        match v {
            Value::Bits(_, b) => Ok(b),
            Value::Code(n) => self
                .prog
                .proc_addr(n.as_str())
                .ok_or_else(|| Wrong::NoSuchProc(self.here(), n)),
            Value::Cont(p, u) => Ok(self.encode_cont(p, u)),
        }
    }

    fn encode_cont(&mut self, p: NodeRef, u: u64) -> u64 {
        if let Some(i) = self
            .cont_encodings
            .iter()
            .position(|(q, v)| *q == p && *v == u)
        {
            return CONT_BASE + (i as u64) * 8;
        }
        self.cont_encodings.push((p, u));
        CONT_BASE + ((self.cont_encodings.len() - 1) as u64) * 8
    }

    /// Recovers a continuation from a `Cont` value or its flattened
    /// encoding.
    pub fn decode_cont(&self, v: &Value) -> Option<(NodeRef, u64)> {
        match v {
            Value::Cont(p, u) => Some((p.clone(), *u)),
            Value::Bits(_, b) if *b >= CONT_BASE && (*b - CONT_BASE).is_multiple_of(8) => {
                let i = ((*b - CONT_BASE) / 8) as usize;
                self.cont_encodings.get(i).cloned()
            }
            _ => None,
        }
    }

    // ----- memory -----

    /// Loads a typed value from memory (native little-endian byte order;
    /// unmapped bytes read as zero).
    pub fn load(&self, ty: Ty, addr: u64) -> Value {
        let w = width_of(ty);
        let mut v = 0u64;
        for i in 0..ty.bytes() {
            v |= u64::from(*self.mem.get(&(addr + i)).unwrap_or(&0)) << (8 * i);
        }
        Value::Bits(w, v)
    }

    /// Stores bits to memory with the width of `ty`.
    pub fn store(&mut self, ty: Ty, addr: u64, bits: u64) {
        for i in 0..ty.bytes() {
            self.mem.insert(addr + i, ((bits >> (8 * i)) & 0xff) as u8);
        }
    }

    /// The whole memory as sorted `(address, byte)` pairs, zero bytes
    /// elided — a canonical form for cross-engine equivalence checks.
    pub fn mem_snapshot(&self) -> Vec<(u64, u8)> {
        let mut v: Vec<(u64, u8)> = self
            .mem
            .iter()
            .filter(|&(_, &b)| b != 0)
            .map(|(&a, &b)| (a, b))
            .collect();
        v.sort_unstable();
        v
    }

    /// Reads a global register.
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Writes a global register.
    ///
    /// # Errors
    ///
    /// Fails if no such register is declared.
    pub fn set_global(&mut self, name: &str, v: Value) -> Result<(), Wrong> {
        match self.globals.get_mut(name) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(Wrong::UnboundName(self.here(), Name::from(name))),
        }
    }

    // ----- the run-time system's window on a suspended thread -----

    /// The values passed to `yield` (available while suspended).
    pub fn yield_args(&self) -> &[Value] {
        &self.area
    }

    /// The activation stack, bottom first. While suspended in `yield`,
    /// the *last* frame is the activation that called `yield` (the
    /// "currently executing" activation of `FirstActivation`).
    pub fn stack(&self) -> &[Frame] {
        &self.stack
    }

    /// The activation `i` frames down from the top (0 = topmost).
    pub fn activation(&self, i: usize) -> Option<&Frame> {
        let len = self.stack.len();
        if i < len {
            Some(&self.stack[len - 1 - i])
        } else {
            None
        }
    }

    /// Discards the topmost activation. Permitted only "if the suspended
    /// procedure has an `also aborts` annotation" (§5.2).
    ///
    /// # Errors
    ///
    /// Fails if the machine is not suspended, the stack is empty, or the
    /// topmost frame's call site lacks `also aborts`.
    pub fn rts_pop_frame(&mut self) -> Result<(), Wrong> {
        self.require_suspended()?;
        let Some(top) = self.stack.last() else {
            return Err(Wrong::RtsViolation("no activation to discard".into()));
        };
        if !top.bundle.aborts {
            return Err(Wrong::NotAbortable(top.site()));
        }
        let dead = self.stack.pop().expect("frame checked above");
        if S::ENABLED {
            self.emit(Event::ContDeath {
                proc: dead.proc,
                uid: dead.uid,
            });
        }
        Ok(())
    }

    /// Resumes the suspended thread at a continuation of the topmost
    /// frame's bundle, passing `args` as the continuation's parameters.
    ///
    /// `Return` and `Unwind` targets restore callee-saves registers (the
    /// environment is restored in full); `Cut` targets do not (the saved
    /// variables are removed, per the `also cuts to` Yield rule).
    ///
    /// # Errors
    ///
    /// Fails if the machine is not suspended, the index is out of range,
    /// or `args` does not match the parameter count of the target
    /// continuation.
    pub fn rts_resume(&mut self, target: RtsTarget, args: Vec<Value>) -> Result<(), Wrong> {
        self.require_suspended()?;
        let Some(top) = self.stack.last() else {
            return Err(Wrong::RtsViolation("no activation to resume".into()));
        };
        let (node, restore) = match target {
            RtsTarget::Return(i) => (top.bundle.returns.get(i).copied(), true),
            RtsTarget::Unwind(i) => (top.bundle.unwinds.get(i).copied(), true),
            RtsTarget::Cut(i) => (top.bundle.cuts.get(i).copied(), false),
        };
        let Some(node) = node else {
            return Err(Wrong::RtsViolation(format!(
                "{target:?} not present in the bundle"
            )));
        };
        // "There must be exactly as many parameters as P' expects."
        let expected = self.cont_param_count(&top.proc.clone(), node);
        if let Some(expected) = expected {
            if args.len() != expected {
                return Err(Wrong::RtsViolation(format!(
                    "continuation expects {expected} parameters, got {}",
                    args.len()
                )));
            }
        }
        let mut frame = self.stack.pop().expect("frame checked above");
        if !restore {
            for s in &frame.saves {
                frame.rho.remove(s);
            }
            frame.saves.clear();
        }
        self.control = NodeRef {
            proc: frame.proc,
            node,
        };
        self.rho = frame.rho;
        self.saves = frame.saves;
        self.uid = frame.uid;
        self.area = args;
        self.status = Status::Running;
        Ok(())
    }

    /// Cuts the stack to a continuation value, duplicating the effect of
    /// the `cut to` primitive from inside the run-time system
    /// (`SetCutToCont`, §4.2).
    ///
    /// # Errors
    ///
    /// Fails if the machine is not suspended, the value is not a live
    /// continuation, an intervening activation lacks `also aborts`, or
    /// the target call site lacks the `also cuts to` annotation.
    pub fn rts_cut_to(&mut self, cont: &Value, args: Vec<Value>) -> Result<(), Wrong> {
        self.require_suspended()?;
        let (target, tuid) = self
            .decode_cont(cont)
            .ok_or_else(|| Wrong::DeadContinuation(self.here()))?;
        let expected = self.cont_param_count(&target.proc, target.node);
        if let Some(expected) = expected {
            if args.len() != expected {
                return Err(Wrong::RtsViolation(format!(
                    "continuation expects {expected} parameters, got {}",
                    args.len()
                )));
            }
        }
        // Try the cut on a scratch copy of the control state so a failed
        // cut leaves the suspension intact.
        let saved_stack = self.stack.clone();
        match self.cut_stack(target, tuid) {
            Ok(_) => {
                self.area = args;
                self.status = Status::Running;
                Ok(())
            }
            Err(w) => {
                self.stack = saved_stack;
                Err(w)
            }
        }
    }

    /// Number of parameters the continuation at `node` expects, if it is
    /// a `CopyIn` node.
    pub fn cont_param_count(&self, proc: &Name, node: NodeId) -> Option<usize> {
        let g = self.prog.proc(proc.as_str())?;
        match g.node(node) {
            Node::CopyIn { vars, .. } => Some(vars.len()),
            _ => None,
        }
    }

    fn require_suspended(&self) -> Result<(), Wrong> {
        if matches!(self.status, Status::Suspended) {
            Ok(())
        } else {
            Err(Wrong::RtsViolation(
                "machine is not suspended in yield".into(),
            ))
        }
    }

    /// Reads a NUL-terminated string from memory (for diagnostics and
    /// front-end run-time systems).
    pub fn read_cstr(&self, addr: u64) -> String {
        let mut out = String::new();
        let mut a = addr;
        loop {
            let b = *self.mem.get(&a).unwrap_or(&0);
            if b == 0 || out.len() > 4096 {
                return out;
            }
            out.push(b as char);
            a += 1;
        }
    }

    /// Interprets a `Bits` value as a signed integer of its width.
    pub fn as_signed(v: &Value) -> Option<i64> {
        match v {
            Value::Bits(w, b) => Some(sign_extend(*b, *w)),
            _ => None,
        }
    }
}

pub(crate) fn width_of(ty: Ty) -> Width {
    match ty {
        Ty::Bits(w) => w,
        Ty::Float(FWidth::F32) => Width::W32,
        Ty::Float(FWidth::F64) => Width::W64,
    }
}

pub(crate) fn lit_value(l: Lit) -> Value {
    Value::Bits(width_of(l.ty), l.bits)
}

// ----- snapshot capture and restore -----

impl<'p, S: TraceSink> Machine<'p, S> {
    /// Captures the machine's full suspended state in portable name
    /// space (see [`crate::snapshot`]): environments and globals come
    /// out sorted by name, memory as its canonical nonzero form, so the
    /// same machine state always captures to the same value.
    ///
    /// # Errors
    ///
    /// Returns a message unless the machine is at one of the two
    /// resumable points — suspended at a `Yield` or stopped at a fuel
    /// boundary.
    pub fn capture(&self) -> Result<SemState, String> {
        let status = match &self.status {
            Status::Suspended => SnapStatus::Suspended,
            Status::OutOfFuel => SnapStatus::OutOfFuel,
            other => return Err(format!("not at a resumable point (status {other:?})")),
        };
        Ok(SemState {
            proc: self.control.proc.clone(),
            node: self.control.node,
            rho: sorted_bindings(self.rho.iter().map(|(n, v)| (n.clone(), v.clone()))),
            saves: self.saves.iter().cloned().collect(),
            uid: self.uid,
            mem: self.mem_snapshot(),
            area: self.area.clone(),
            stack: self
                .stack
                .iter()
                .map(|f| FrameState {
                    proc: f.proc.clone(),
                    call_site: f.call_site,
                    rho: sorted_bindings(f.rho.iter().map(|(n, v)| (n.clone(), v.clone()))),
                    saves: f.saves.iter().cloned().collect(),
                    uid: f.uid,
                })
                .collect(),
            globals: sorted_bindings(self.globals.iter().map(|(n, v)| (n.clone(), v.clone()))),
            next_uid: self.next_uid,
            cont_encodings: self.cont_encodings.clone(),
            status,
            steps: self.steps,
        })
    }

    /// Restores a captured state into this machine, which should be
    /// freshly constructed over the same program the state was captured
    /// from (`cmm-snap` verifies the source digest; this method
    /// re-validates the state structurally). Frame bundles are not part
    /// of the state — each is re-derived from its call site's `Call`
    /// node, so a state cannot smuggle in a bundle the program never
    /// had.
    ///
    /// Explicitly-written zero bytes are not distinguishable from
    /// untouched memory after a restore (the canonical memory form
    /// elides them); a `max_memory_bytes` governor counts written
    /// bytes, so reinstalled governors should be used with snapshots
    /// only for fuel slicing.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first component that does not fit
    /// the program: unknown procedure, node out of bounds, a call site
    /// that is not a `Call`, or a continuation encoding outside the
    /// program. The machine is unchanged on error.
    pub fn restore(&mut self, st: &SemState) -> Result<(), String> {
        check_ref(self.prog, &st.proc, st.node, "control")?;
        for (i, ce) in st.cont_encodings.iter().enumerate() {
            check_ref(
                self.prog,
                &ce.0.proc,
                ce.0.node,
                &format!("cont-encoding {i}"),
            )?;
        }
        let mut stack = Vec::with_capacity(st.stack.len());
        for (i, f) in st.stack.iter().enumerate() {
            let bundle = call_bundle(self.prog, &f.proc, f.call_site)
                .map_err(|e| format!("frame {i}: {e}"))?;
            stack.push(Frame {
                proc: f.proc.clone(),
                call_site: f.call_site,
                bundle: bundle.clone(),
                rho: f.rho.iter().cloned().collect(),
                saves: f.saves.iter().cloned().collect(),
                uid: f.uid,
            });
        }
        self.control = NodeRef {
            proc: st.proc.clone(),
            node: st.node,
        };
        self.rho = st.rho.iter().cloned().collect();
        self.saves = st.saves.iter().cloned().collect();
        self.uid = st.uid;
        self.mem = st.mem.iter().copied().collect();
        self.area = st.area.clone();
        self.stack = stack;
        self.globals = st.globals.iter().cloned().collect();
        self.next_uid = st.next_uid;
        self.cont_encodings = st.cont_encodings.clone();
        self.status = match st.status {
            SnapStatus::Suspended => Status::Suspended,
            SnapStatus::OutOfFuel => Status::OutOfFuel,
        };
        self.steps = st.steps;
        Ok(())
    }
}

/// Checks that `proc` exists in `prog` and `node` indexes its graph
/// (restore validation, shared with the pre-resolved engine).
pub(crate) fn check_ref(
    prog: &Program,
    proc: &Name,
    node: NodeId,
    what: &str,
) -> Result<(), String> {
    let g = prog
        .procs
        .get(proc)
        .ok_or_else(|| format!("{what}: no procedure `{proc}`"))?;
    if node.index() >= g.nodes.len() {
        return Err(format!(
            "{what}: node {node} out of bounds for `{proc}` ({} nodes)",
            g.nodes.len()
        ));
    }
    Ok(())
}

/// Re-derives the continuation bundle of a restored frame from its call
/// site's `Call` node.
pub(crate) fn call_bundle<'q>(
    prog: &'q Program,
    proc: &Name,
    call_site: NodeId,
) -> Result<&'q cmm_cfg::Bundle, String> {
    let g = prog
        .procs
        .get(proc)
        .ok_or_else(|| format!("no procedure `{proc}`"))?;
    match g.nodes.get(call_site.index()) {
        Some(Node::Call { bundle, .. }) => Ok(bundle),
        Some(n) => Err(format!(
            "call site {proc}:{call_site} is a {} node, not a Call",
            n.kind_name()
        )),
        None => Err(format!("call site {proc}:{call_site} out of bounds")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn prog(src: &str) -> Program {
        build_program(&parse_module(src).unwrap()).unwrap()
    }

    fn run_proc(p: &Program, name: &str, args: Vec<Value>) -> Status {
        let mut m = Machine::new(p);
        m.start(name, args).unwrap();
        m.run(10_000_000)
    }

    fn expect_values(s: Status) -> Vec<Value> {
        match s {
            Status::Terminated(vs) => vs,
            other => panic!("program did not terminate normally: {other:?}"),
        }
    }

    const FIGURE1: &str = r#"
        export sp1; export sp2; export sp3;
        sp1(bits32 n) {
            bits32 s, p;
            if n == 1 { return (1, 1); }
            else { s, p = sp1(n - 1); return (s + n, p * n); }
        }
        sp2(bits32 n) { jump sp2_help(n, 1, 1); }
        sp2_help(bits32 n, bits32 s, bits32 p) {
            if n == 1 { return (s, p); }
            else { jump sp2_help(n - 1, s + n, p * n); }
        }
        sp3(bits32 n) {
            bits32 s, p;
            s = 1; p = 1;
          loop:
            if n == 1 { return (s, p); }
            else { s = s + n; p = p * n; n = n - 1; goto loop; }
        }
    "#;

    #[test]
    fn figure1_all_three_agree() {
        let p = prog(FIGURE1);
        for proc in ["sp1", "sp2", "sp3"] {
            let vals = expect_values(run_proc(&p, proc, vec![Value::b32(10)]));
            assert_eq!(
                vals,
                vec![Value::b32(55), Value::b32(3628800)],
                "procedure {proc}"
            );
        }
    }

    #[test]
    fn tail_calls_do_not_grow_the_stack() {
        let p = prog(FIGURE1);
        let mut m = Machine::new(&p);
        m.start("sp2", vec![Value::b32(100_000)]).unwrap();
        let mut max_depth = 0;
        while matches!(m.status(), Status::Running) {
            m.step();
            max_depth = max_depth.max(m.stack().len());
        }
        assert!(matches!(m.status(), Status::Terminated(_)));
        assert_eq!(max_depth, 0, "jump must deallocate the caller's activation");
    }

    #[test]
    fn recursion_grows_the_stack() {
        let p = prog(FIGURE1);
        let mut m = Machine::new(&p);
        m.start("sp1", vec![Value::b32(50)]).unwrap();
        let mut max_depth = 0;
        while matches!(m.status(), Status::Running) {
            m.step();
            max_depth = max_depth.max(m.stack().len());
        }
        assert_eq!(max_depth, 49);
    }

    #[test]
    fn memory_loads_and_stores() {
        let p = prog(
            r#"
            data cell { bits32 7; }
            f() {
                bits32 x;
                x = bits32[cell];
                bits32[cell] = x + 1;
                return (bits32[cell]);
            }
            "#,
        );
        let vals = expect_values(run_proc(&p, "f", vec![]));
        assert_eq!(vals, vec![Value::b32(8)]);
    }

    #[test]
    fn global_registers_persist_across_calls() {
        let p = prog(
            r#"
            register bits32 counter = 10;
            bump() { counter = counter + 1; return (counter); }
            "#,
        );
        let mut m = Machine::new(&p);
        m.start("bump", vec![]).unwrap();
        assert_eq!(expect_values(m.run(1000)), vec![Value::b32(11)]);
        m.start("bump", vec![]).unwrap();
        assert_eq!(expect_values(m.run(1000)), vec![Value::b32(12)]);
    }

    #[test]
    fn cut_to_transfers_across_activations() {
        // f passes continuation k to g; g cuts to it.
        let p = prog(
            r#"
            f() {
                bits32 r;
                r = g(k) also cuts to k;
                return (0);
                continuation k(r):
                return (r);
            }
            g(bits32 kk) {
                cut to kk(42);
                return (0);
            }
            "#,
        );
        let vals = expect_values(run_proc(&p, "f", vec![]));
        assert_eq!(vals, vec![Value::b32(42)]);
    }

    #[test]
    fn cut_to_pops_intermediate_aborting_frames() {
        let p = prog(
            r#"
            f() {
                bits32 r;
                r = mid(k) also cuts to k;
                return (0);
                continuation k(r):
                return (r + 1);
            }
            mid(bits32 kk) {
                bits32 r;
                r = g(kk) also aborts;
                return (r);
            }
            g(bits32 kk) {
                cut to kk(10);
                return (0);
            }
            "#,
        );
        let vals = expect_values(run_proc(&p, "f", vec![]));
        assert_eq!(vals, vec![Value::b32(11)]);
    }

    #[test]
    fn cut_past_non_aborting_frame_goes_wrong() {
        let p = prog(
            r#"
            f() {
                bits32 r;
                r = mid(k) also cuts to k;
                return (0);
                continuation k(r):
                return (r);
            }
            mid(bits32 kk) {
                bits32 r;
                r = g(kk);    /* no also aborts */
                return (r);
            }
            g(bits32 kk) { cut to kk(10); return (0); }
            "#,
        );
        match run_proc(&p, "f", vec![]) {
            Status::Wrong(Wrong::NotAbortable(_)) => {}
            other => panic!("expected NotAbortable, got {other:?}"),
        }
    }

    #[test]
    fn cut_without_cuts_to_annotation_goes_wrong() {
        let p = prog(
            r#"
            f() {
                bits32 r;
                r = g(k);     /* call site lacks `also cuts to k` */
                return (0);
                continuation k(r):
                return (r);
            }
            g(bits32 kk) { cut to kk(1); return (0); }
            "#,
        );
        match run_proc(&p, "f", vec![]) {
            Status::Wrong(Wrong::CutNotAnnotated(_)) => {}
            other => panic!("expected CutNotAnnotated, got {other:?}"),
        }
    }

    #[test]
    fn dead_continuation_goes_wrong() {
        // f returns its continuation; caller tries to cut to it after
        // f's activation has died.
        let p = prog(
            r#"
            main() {
                bits32 kk;
                kk = f();
                jump g(kk);
            }
            f() {
                bits32 x;
                return (k);
                continuation k(x):
                return (0);
            }
            g(bits32 kk) { cut to kk(5); return (0); }
            "#,
        );
        match run_proc(&p, "main", vec![]) {
            Status::Wrong(Wrong::DeadContinuation(_)) => {}
            other => panic!("expected DeadContinuation, got {other:?}"),
        }
    }

    #[test]
    fn cut_to_same_procedure_with_annotation() {
        let p = prog(
            r#"
            f() {
                bits32 r, kv;
                kv = k;
                cut to kv(9) also cuts to k;
                return (0);
                continuation k(r):
                return (r);
            }
            "#,
        );
        let vals = expect_values(run_proc(&p, "f", vec![]));
        assert_eq!(vals, vec![Value::b32(9)]);
    }

    #[test]
    fn continuation_value_survives_memory_round_trip() {
        // Figure 10 stores continuations on a dynamic exception stack.
        let p = prog(
            r#"
            data slot { bits32 0; }
            f() {
                bits32 r;
                bits32[slot] = k;
                r = g() also cuts to k;
                return (0);
                continuation k(r):
                return (r + 100);
            }
            g() {
                bits32 kk;
                kk = bits32[slot];
                cut to kk(1);
                return (0);
            }
            "#,
        );
        let vals = expect_values(run_proc(&p, "f", vec![]));
        assert_eq!(vals, vec![Value::b32(101)]);
    }

    #[test]
    fn fast_divide_by_zero_goes_wrong() {
        let p = prog("f(bits32 a, bits32 b) { return (a / b); }");
        match run_proc(&p, "f", vec![Value::b32(1), Value::b32(0)]) {
            Status::Wrong(Wrong::OpFailed(..)) => {}
            other => panic!("expected OpFailed, got {other:?}"),
        }
        let vals = expect_values(run_proc(&p, "f", vec![Value::b32(7), Value::b32(2)]));
        assert_eq!(vals, vec![Value::b32(3)]);
    }

    #[test]
    fn checked_divide_suspends_in_yield() {
        let p =
            prog("f(bits32 a, bits32 b) { bits32 r; r = %%divu(a, b) also aborts; return (r); }");
        // Failure: suspended with DIVZERO code.
        let mut m = Machine::new(&p);
        m.start("f", vec![Value::b32(1), Value::b32(0)]).unwrap();
        assert_eq!(m.run(100_000), Status::Suspended);
        assert_eq!(m.yield_args(), &[Value::b32(1)]); // yield_codes::DIVZERO
                                                      // Success: returns quotient without yielding.
        let vals = expect_values(run_proc(&p, "f", vec![Value::b32(42), Value::b32(6)]));
        assert_eq!(vals, vec![Value::b32(7)]);
    }

    #[test]
    fn rts_resume_unwind_restores_environment() {
        // g yields; the runtime unwinds to k with parameter 77. The
        // local y (set before the call) must still be visible in k.
        let p = prog(
            r#"
            f() {
                bits32 y, r;
                y = 5;
                r = g() also unwinds to k;
                return (0);
                continuation k(r):
                return (r + y);
            }
            g() { yield(9) also aborts; return (0); }
            "#,
        );
        let mut m = Machine::new(&p);
        m.start("f", vec![]).unwrap();
        assert_eq!(m.run(100_000), Status::Suspended);
        assert_eq!(m.yield_args(), &[Value::b32(9)]);
        // Pop g's activation (aborts), then unwind to k of f.
        m.rts_pop_frame().unwrap();
        m.rts_resume(RtsTarget::Unwind(0), vec![Value::b32(77)])
            .unwrap();
        assert_eq!(expect_values(m.run(100_000)), vec![Value::b32(82)]);
    }

    #[test]
    fn rts_pop_requires_aborts() {
        let p = prog(
            r#"
            f() { bits32 r; r = g() also unwinds to k; return (0);
                  continuation k(r): return (r); }
            g() { yield(1); return (0); }   /* yield call not abortable */
            "#,
        );
        let mut m = Machine::new(&p);
        m.start("f", vec![]).unwrap();
        assert_eq!(m.run(100_000), Status::Suspended);
        assert!(matches!(m.rts_pop_frame(), Err(Wrong::NotAbortable(_))));
    }

    #[test]
    fn rts_resume_checks_parameter_count() {
        let p = prog(
            r#"
            f() { bits32 r; r = g() also unwinds to k; return (0);
                  continuation k(r): return (r); }
            g() { yield(1) also aborts; return (0); }
            "#,
        );
        let mut m = Machine::new(&p);
        m.start("f", vec![]).unwrap();
        m.run(100_000);
        m.rts_pop_frame().unwrap();
        assert!(m.rts_resume(RtsTarget::Unwind(0), vec![]).is_err());
        // Correct arity succeeds.
        m.rts_resume(RtsTarget::Unwind(0), vec![Value::b32(3)])
            .unwrap();
        assert_eq!(expect_values(m.run(100_000)), vec![Value::b32(3)]);
    }

    #[test]
    fn rts_resume_normal_return() {
        let p = prog(
            r#"
            f() { bits32 r; r = g(); return (r); }
            g() { yield(1); return (0); }
            "#,
        );
        let mut m = Machine::new(&p);
        m.start("f", vec![]).unwrap();
        m.run(100_000);
        // Resume g's yield call at its normal return (index = last).
        m.rts_resume(RtsTarget::Return(0), vec![]).unwrap();
        assert_eq!(expect_values(m.run(100_000)), vec![Value::b32(0)]);
    }

    #[test]
    fn abnormal_return_selects_alternate_continuation() {
        let p = prog(
            r#"
            f() {
                bits32 r;
                r = g(1) also returns to kbad;
                return (r);
                continuation kbad(r):
                return (r + 1000);
            }
            g(bits32 x) {
                if x == 1 { return <0/1> (5); }
                else { return <1/1> (6); }
            }
            "#,
        );
        let vals = expect_values(run_proc(&p, "f", vec![]));
        assert_eq!(vals, vec![Value::b32(1005)]);
        let p2 = prog(
            r#"
            f() {
                bits32 r;
                r = g(0) also returns to kbad;
                return (r);
                continuation kbad(r):
                return (r + 1000);
            }
            g(bits32 x) {
                if x == 1 { return <0/1> (5); }
                else { return <1/1> (6); }
            }
            "#,
        );
        let vals = expect_values(run_proc(&p2, "f", vec![]));
        assert_eq!(vals, vec![Value::b32(6)]);
    }

    #[test]
    fn return_arity_mismatch_goes_wrong() {
        let p = prog(
            r#"
            f() { bits32 r; r = g(); return (r); }
            g() { return <0/2> (5); }
            "#,
        );
        match run_proc(&p, "f", vec![]) {
            Status::Wrong(Wrong::ReturnArityMismatch {
                claimed: 2,
                actual: 0,
                ..
            }) => {}
            other => panic!("expected arity mismatch, got {other:?}"),
        }
    }

    #[test]
    fn parallel_assignment_swaps() {
        let p = prog("f(bits32 a, bits32 b) { a, b = b, a; return (a, b); }");
        let vals = expect_values(run_proc(&p, "f", vec![Value::b32(1), Value::b32(2)]));
        assert_eq!(vals, vec![Value::b32(2), Value::b32(1)]);
    }

    #[test]
    fn out_of_fuel_is_resumable() {
        let p = prog("f() { loop: goto loop; }");
        let mut m = Machine::new(&p);
        m.start("f", vec![]).unwrap();
        assert_eq!(m.run(100), Status::OutOfFuel);
        assert_eq!(m.run(100), Status::OutOfFuel);
    }

    #[test]
    fn strings_are_addressable() {
        let p = prog(r#"f() { return (msg); } data msg { string "hi"; }"#);
        let mut m = Machine::new(&p);
        m.start("f", vec![]).unwrap();
        let vals = expect_values(m.run(1000));
        let addr = vals[0].bits().unwrap();
        assert_eq!(m.read_cstr(addr), "hi");
    }

    #[test]
    fn signed_arithmetic_via_primitives() {
        let p = prog("f(bits32 a, bits32 b) { return (%divs(a, b), %lts(a, b)); }");
        // -10 / 3 = -3; -10 < 3 signed.
        let vals = expect_values(run_proc(
            &p,
            "f",
            vec![Value::b32(0xffff_fff6), Value::b32(3)],
        ));
        assert_eq!(vals, vec![Value::b32(0xffff_fffd), Value::b32(1)]);
    }

    #[test]
    fn width_mismatch_goes_wrong() {
        let p = prog("f(bits32 a) { bits8 b; b = %lo8(a); return (a + b); }");
        match run_proc(&p, "f", vec![Value::b32(1)]) {
            Status::Wrong(Wrong::WidthMismatch(_)) => {}
            other => panic!("expected WidthMismatch, got {other:?}"),
        }
    }
}
