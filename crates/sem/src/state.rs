//! Machine-state components: node references, environments, frames.

use crate::value::Value;
use cmm_cfg::{Bundle, NodeId};
use cmm_ir::Name;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A reference to one node of one procedure's graph: the machine's
/// control component.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct NodeRef {
    /// Which procedure.
    pub proc: Name,
    /// Which node within that procedure's graph.
    pub node: NodeId,
}

impl NodeRef {
    /// Creates a node reference.
    pub fn new(proc: impl Into<Name>, node: NodeId) -> NodeRef {
        NodeRef {
            proc: proc.into(),
            node,
        }
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.proc, self.node)
    }
}

/// A local environment ρ: a partial function from names to values.
pub type Env = HashMap<Name, Value>;

/// One activation frame of the stack σ.
///
/// A call from procedure `P` pushes a frame recording `P`'s suspended
/// state: "the continuation bundle is saved on the stack, because the
/// callee, not the caller, determines what is executed after the call"
/// (§5.2). The representation of an activation "is likely to include
/// copies of all callee-saves registers and a pointer to an activation
/// record on the real call stack" (§3.3) — here, the whole environment
/// `rho` plus the callee-saves set `saves`.
#[derive(Clone, PartialEq, Debug)]
pub struct Frame {
    /// The procedure whose activation this frame is.
    pub proc: Name,
    /// The `Call` node at which the activation is suspended (used by
    /// `GetDescriptor` and for display).
    pub call_site: NodeId,
    /// The continuation bundle `(kp_r, kp_u, kp_c, abort)` of that call
    /// site; node ids refer to `proc`'s graph.
    pub bundle: Bundle,
    /// The suspended local environment ρ'.
    pub rho: Env,
    /// The suspended callee-saves set s'.
    pub saves: BTreeSet<Name>,
    /// The unique id of the suspended activation.
    pub uid: u64,
}

impl Frame {
    /// The `NodeRef` of the suspended call site.
    pub fn site(&self) -> NodeRef {
        NodeRef {
            proc: self.proc.clone(),
            node: self.call_site,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noderef_display() {
        let r = NodeRef::new("f", NodeId(3));
        assert_eq!(r.to_string(), "f:n3");
    }
}
