//! The pre-resolved execution engine: §5.2 with the name resolution
//! hoisted out of the step loop.
//!
//! The reference [`Machine`](crate::Machine) interprets the CFG
//! directly: every transition re-fetches the current procedure from a
//! `BTreeMap`, every variable access hashes a [`Name`], and every
//! environment save/restore clones a `HashMap`. [`ResolvedProgram`]
//! performs that work once per program instead of once per step:
//!
//! * each procedure's statement stream is flattened into an
//!   index-aligned [`RNode`] arena (node ids are preserved, so every
//!   [`NodeRef`] the engine reports — in `Wrong` values, continuation
//!   values, activation sites — is identical to the reference
//!   machine's);
//! * the environment ρ becomes an indexed frame: every name that can
//!   ever be bound locally (declared variables, continuation names)
//!   gets a slot computed at resolve time, and `ρ(x)` is a vector
//!   index instead of a hash lookup;
//! * names in expressions are resolved to a slot, a global-register
//!   index, and a prebuilt fallback constant (procedure address or
//!   data-block address), tried in exactly the reference machine's
//!   `ρ → globals → procs → image` order, so shadowing and
//!   unbound-name behaviour are preserved bit for bit;
//! * call targets that can only ever denote a procedure are resolved
//!   to a procedure index at resolve time.
//!
//! [`ResolvedMachine`] is observationally equal to the reference
//! machine — same [`Status`] (including `Wrong` payloads), same
//! memory, same continuation encodings, same `steps` count — which the
//! difftest oracle suite and `tests/engine_equivalence.rs` enforce
//! over generated programs.

use crate::machine::{call_bundle, check_ref, lit_value, width_of, RtsTarget, Status, CONT_BASE};
use crate::snapshot::{sorted_bindings, FrameState, SemState, SnapStatus};
use crate::state::NodeRef;
use crate::value::Value;
use crate::wrong::Wrong;
use cmm_cfg::{Bundle, Graph, Node, NodeId, Program};
use cmm_chaos::{LimitTrip, ResourceGovernor};
use cmm_ir::{BinOp, Expr, Lvalue, Name, Ty, UnOp, Width};
use cmm_obs::{Event, NopSink, TraceSink};
use std::collections::HashMap;

/// A slot index into a procedure's indexed frame.
type Slot = u32;

/// Where an assignment to a bare name lands, decided at resolve time
/// with the reference machine's `write_var` rules.
#[derive(Clone, Debug)]
enum Target {
    /// A declared local variable.
    Slot(Slot),
    /// A global register.
    Global(u32),
    /// Neither — goes wrong with `UnboundName` if ever executed.
    Unbound(Name),
}

/// A pre-resolved name occurrence: the lookup chain of the reference
/// machine (`ρ → globals → procs → image symbols`) with each stage
/// resolved to an index or a prebuilt value.
#[derive(Clone, Debug)]
struct RName {
    /// The original name (for `UnboundName` and `Value::Code`).
    name: Name,
    /// Slot in the current frame, if the name can be bound locally.
    slot: Option<Slot>,
    /// Global-register index, if a global of this name exists.
    global: Option<u32>,
    /// Prebuilt procedure/data-address value, if any.
    fallback: Option<Value>,
}

/// A pre-resolved expression.
#[derive(Clone, Debug)]
enum RExpr {
    /// A literal, already a [`Value`].
    Lit(Value),
    /// A name occurrence.
    Name(RName),
    /// A typed memory load.
    Mem(Ty, Box<RExpr>),
    /// A unary operator.
    Un(UnOp, Box<RExpr>),
    /// A binary operator; the flag marks shift operators, whose widths
    /// need not agree.
    Bin(BinOp, bool, Box<RExpr>, Box<RExpr>),
}

/// A pre-resolved call target.
#[derive(Clone, Debug)]
enum RCallee {
    /// A name that can only denote this procedure (not shadowable by a
    /// local or global).
    Direct(usize),
    /// Anything else: evaluate, then resolve as the reference machine
    /// does.
    Dynamic(RExpr),
}

/// A pre-resolved CFG node, index-aligned with the source graph.
#[derive(Clone, Debug)]
enum RNode<'p> {
    /// Bind this procedure's continuations into a fresh frame.
    Entry {
        /// `(slot, continuation node)` pairs.
        conts: Vec<(Slot, NodeId)>,
        /// Successor.
        next: NodeId,
    },
    /// Pop an activation and return to `kp_r[index]`.
    Exit {
        /// Which return continuation.
        index: u32,
        /// Claimed number of alternate returns.
        alternates: u32,
    },
    /// Move the areal values into slots.
    CopyIn {
        /// Destination slots, in parameter order.
        slots: Vec<Slot>,
        /// Successor.
        next: NodeId,
    },
    /// Evaluate into the area.
    CopyOut {
        /// The expressions, in order.
        exprs: Vec<RExpr>,
        /// Successor.
        next: NodeId,
    },
    /// Replace the callee-saves set.
    CalleeSaves {
        /// The promoted slots.
        slots: Vec<Slot>,
        /// Successor.
        next: NodeId,
    },
    /// Assignment to a bare name.
    AssignVar {
        /// Destination.
        target: Target,
        /// Right-hand side.
        rhs: RExpr,
        /// Successor.
        next: NodeId,
    },
    /// Assignment through memory.
    AssignMem {
        /// Access type.
        ty: Ty,
        /// Address expression.
        addr: RExpr,
        /// Right-hand side.
        rhs: RExpr,
        /// Successor.
        next: NodeId,
    },
    /// Two-way branch.
    Branch {
        /// Condition.
        cond: RExpr,
        /// True successor.
        t: NodeId,
        /// False successor.
        f: NodeId,
    },
    /// Procedure call; the bundle is borrowed from the source graph.
    Call {
        /// Target.
        callee: RCallee,
        /// The call site's continuation bundle.
        bundle: &'p Bundle,
    },
    /// Tail call.
    Jump {
        /// Target.
        callee: RCallee,
    },
    /// `cut to`.
    CutTo {
        /// The continuation expression.
        cont: RExpr,
        /// `also cuts to` annotations on the `cut to` itself.
        cuts: &'p [NodeId],
    },
    /// Suspend into the front-end run-time system.
    Yield,
}

/// One procedure, pre-resolved.
#[derive(Debug)]
struct RProc<'p> {
    /// The procedure's name (for `NodeRef`s and continuation values).
    name: Name,
    /// The source graph (for `cont_param_count` and descriptors).
    graph: &'p Graph,
    /// Entry node.
    entry: NodeId,
    /// Frame size in slots.
    nslots: usize,
    /// The name each slot stands for, indexed by slot — the inverse of
    /// the resolver's `slot_of`, kept for snapshot capture/restore
    /// (which speaks name space so states port across engines).
    slot_names: Vec<Name>,
    /// The flattened statement stream, index-aligned with
    /// `graph.nodes`.
    nodes: Vec<RNode<'p>>,
}

/// A whole program, pre-resolved. Create once with
/// [`ResolvedProgram::new`], then run any number of
/// [`ResolvedMachine`]s over it.
#[derive(Debug)]
pub struct ResolvedProgram<'p> {
    prog: &'p Program,
    procs: Vec<RProc<'p>>,
    proc_idx: HashMap<Name, usize>,
    globals_init: Vec<(Name, Value)>,
    globals_idx: HashMap<Name, u32>,
}

impl<'p> ResolvedProgram<'p> {
    /// Pre-resolves a program: one pass over every node of every
    /// procedure.
    pub fn new(prog: &'p Program) -> ResolvedProgram<'p> {
        let mut globals_init = Vec::new();
        let mut globals_idx = HashMap::new();
        for g in &prog.globals {
            let w = width_of(g.ty);
            let v = g.init.map(|l| l.bits).unwrap_or(0);
            globals_idx.insert(g.name.clone(), globals_init.len() as u32);
            globals_init.push((g.name.clone(), Value::Bits(w, v)));
        }
        let proc_idx: HashMap<Name, usize> = prog
            .procs
            .keys()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let mut rp = ResolvedProgram {
            prog,
            procs: Vec::with_capacity(prog.procs.len()),
            proc_idx,
            globals_init,
            globals_idx,
        };
        for g in prog.procs.values() {
            let resolver = Resolver::new(&rp, g);
            rp.procs.push(resolver.resolve());
        }
        rp
    }

    /// The underlying program.
    pub fn program(&self) -> &'p Program {
        self.prog
    }

    fn idx_of(&self, name: &Name) -> Option<usize> {
        self.proc_idx.get(name).copied()
    }
}

/// Per-procedure resolution state.
struct Resolver<'r, 'p> {
    rp: &'r ResolvedProgram<'p>,
    g: &'p Graph,
    slot_of: HashMap<Name, Slot>,
}

impl<'r, 'p> Resolver<'r, 'p> {
    fn new(rp: &'r ResolvedProgram<'p>, g: &'p Graph) -> Resolver<'r, 'p> {
        // The slot universe: every name that can ever be bound in ρ.
        // Bindings enter only through `Entry` (continuation names),
        // `CopyIn` (parameters), and `Assign` to a declared variable,
        // so declared variables plus all `Entry`/`CopyIn` names cover
        // it.
        let mut slot_of = HashMap::new();
        let add = |n: &Name, slot_of: &mut HashMap<Name, Slot>| {
            let next = slot_of.len() as Slot;
            slot_of.entry(n.clone()).or_insert(next);
        };
        for (n, _) in &g.vars {
            add(n, &mut slot_of);
        }
        for node in &g.nodes {
            match node {
                Node::Entry { conts, .. } => {
                    for (n, _) in conts {
                        add(n, &mut slot_of);
                    }
                }
                Node::CopyIn { vars, .. } => {
                    for n in vars {
                        add(n, &mut slot_of);
                    }
                }
                Node::CalleeSaves { vars, .. } => {
                    for n in vars {
                        add(n, &mut slot_of);
                    }
                }
                _ => {}
            }
        }
        Resolver { rp, g, slot_of }
    }

    fn resolve(self) -> RProc<'p> {
        let nodes = self.g.nodes.iter().map(|n| self.node(n)).collect();
        let mut slot_names = vec![Name::from(""); self.slot_of.len()];
        for (n, &s) in &self.slot_of {
            slot_names[s as usize] = n.clone();
        }
        RProc {
            name: self.g.name.clone(),
            graph: self.g,
            entry: self.g.entry,
            nslots: self.slot_of.len(),
            slot_names,
            nodes,
        }
    }

    fn slot(&self, n: &Name) -> Slot {
        self.slot_of[n]
    }

    fn node(&self, node: &'p Node) -> RNode<'p> {
        match node {
            Node::Entry { conts, next } => RNode::Entry {
                conts: conts.iter().map(|(n, id)| (self.slot(n), *id)).collect(),
                next: *next,
            },
            Node::Exit { index, alternates } => RNode::Exit {
                index: *index,
                alternates: *alternates,
            },
            Node::CopyIn { vars, next } => RNode::CopyIn {
                slots: vars.iter().map(|n| self.slot(n)).collect(),
                next: *next,
            },
            Node::CopyOut { exprs, next } => RNode::CopyOut {
                exprs: exprs.iter().map(|e| self.expr(e)).collect(),
                next: *next,
            },
            Node::CalleeSaves { vars, next } => RNode::CalleeSaves {
                slots: vars.iter().map(|n| self.slot(n)).collect(),
                next: *next,
            },
            Node::Assign { lhs, rhs, next } => match lhs {
                Lvalue::Var(n) => RNode::AssignVar {
                    target: self.target(n),
                    rhs: self.expr(rhs),
                    next: *next,
                },
                Lvalue::Mem(ty, a) => RNode::AssignMem {
                    ty: *ty,
                    addr: self.expr(a),
                    rhs: self.expr(rhs),
                    next: *next,
                },
            },
            Node::Branch { cond, t, f } => RNode::Branch {
                cond: self.expr(cond),
                t: *t,
                f: *f,
            },
            Node::Call { callee, bundle, .. } => RNode::Call {
                callee: self.callee(callee),
                bundle,
            },
            Node::Jump { callee } => RNode::Jump {
                callee: self.callee(callee),
            },
            Node::CutTo { cont, cuts } => RNode::CutTo {
                cont: self.expr(cont),
                cuts,
            },
            Node::Yield => RNode::Yield,
        }
    }

    /// `write_var`'s decision, taken at resolve time: declared variable,
    /// else global, else unbound.
    fn target(&self, n: &Name) -> Target {
        if self.g.var_ty(n).is_some() {
            Target::Slot(self.slot(n))
        } else if let Some(&g) = self.rp.globals_idx.get(n) {
            Target::Global(g)
        } else {
            Target::Unbound(n.clone())
        }
    }

    fn name(&self, n: &Name) -> RName {
        let fallback = if self.rp.prog.procs.contains_key(n) {
            Some(Value::Code(n.clone()))
        } else {
            self.rp
                .prog
                .image
                .symbol(n.as_str())
                .map(|addr| Value::Bits(Width::W32, addr))
        };
        RName {
            name: n.clone(),
            slot: self.slot_of.get(n).copied(),
            global: self.rp.globals_idx.get(n).copied(),
            fallback,
        }
    }

    fn expr(&self, e: &Expr) -> RExpr {
        match e {
            Expr::Lit(l) => RExpr::Lit(lit_value(*l)),
            Expr::Name(n) => RExpr::Name(self.name(n)),
            Expr::Mem(ty, a) => RExpr::Mem(*ty, Box::new(self.expr(a))),
            Expr::Unary(op, a) => RExpr::Un(*op, Box::new(self.expr(a))),
            Expr::Binary(op, a, b) => {
                let shiftish = matches!(op, BinOp::Shl | BinOp::ShrU | BinOp::ShrS);
                RExpr::Bin(
                    *op,
                    shiftish,
                    Box::new(self.expr(a)),
                    Box::new(self.expr(b)),
                )
            }
        }
    }

    fn callee(&self, e: &Expr) -> RCallee {
        // A bare name resolves directly iff nothing can ever shadow it:
        // not in the slot universe, not a global, and a procedure.
        if let Expr::Name(n) = e {
            if !self.slot_of.contains_key(n) && !self.rp.globals_idx.contains_key(n) {
                if let Some(idx) = self.rp.idx_of(n) {
                    return RCallee::Direct(idx);
                }
            }
        }
        RCallee::Dynamic(self.expr(e))
    }
}

/// One activation frame: the suspended indexed environment.
#[derive(Clone, Debug)]
struct RFrame<'p> {
    proc: usize,
    call_site: NodeId,
    bundle: &'p Bundle,
    rho: Vec<Option<Value>>,
    saves: Vec<Slot>,
    uid: u64,
}

/// The pre-resolved abstract machine. Observationally equal to
/// [`Machine`](crate::Machine); see the module documentation.
///
/// Generic over a [`TraceSink`] exactly like the reference machine,
/// with identical emission points and payloads, so traced runs compare
/// event-for-event.
#[derive(Clone, Debug)]
pub struct ResolvedMachine<'p, S: TraceSink = NopSink> {
    rp: &'p ResolvedProgram<'p>,
    cur_proc: usize,
    cur_node: NodeId,
    rho: Vec<Option<Value>>,
    saves: Vec<Slot>,
    uid: u64,
    mem: HashMap<u64, u8>,
    area: Vec<Value>,
    stack: Vec<RFrame<'p>>,
    globals: Vec<Value>,
    next_uid: u64,
    cont_encodings: Vec<(NodeRef, u64)>,
    status: Status,
    /// Number of transitions taken so far (for cost measurements).
    pub steps: u64,
    governor: Option<ResourceGovernor>,
    sink: S,
}

impl<'p> ResolvedMachine<'p> {
    /// Creates a machine over a pre-resolved program, with memory from
    /// the data image and global registers from their declarations.
    pub fn new(rp: &'p ResolvedProgram<'p>) -> ResolvedMachine<'p> {
        ResolvedMachine::with_sink(rp, NopSink)
    }
}

impl<'p, S: TraceSink> ResolvedMachine<'p, S> {
    /// [`ResolvedMachine::new`] with an explicit trace sink.
    pub fn with_sink(rp: &'p ResolvedProgram<'p>, sink: S) -> ResolvedMachine<'p, S> {
        ResolvedMachine::with_sink_in(rp, sink, &mut crate::arena::SemArena::new())
    }

    /// [`ResolvedMachine::with_sink`] drawing the machine's heap
    /// containers from `arena` instead of the allocator (all but the
    /// activation stack, whose frames borrow `rp` and therefore cannot
    /// be banked across programs — see [`crate::arena`]). The machine
    /// starts from exactly the state a fresh one would; reclaim the
    /// allocations afterwards with [`ResolvedMachine::recycle_into`].
    pub fn with_sink_in(
        rp: &'p ResolvedProgram<'p>,
        sink: S,
        arena: &mut crate::arena::SemArena,
    ) -> ResolvedMachine<'p, S> {
        let mut mem = std::mem::take(&mut arena.mem);
        mem.clear();
        mem.extend(rp.prog.image.bytes.iter().map(|(&a, &b)| (a, b)));
        let mut globals = std::mem::take(&mut arena.r_globals);
        globals.clear();
        globals.extend(rp.globals_init.iter().map(|(_, v)| v.clone()));
        let mut rho = std::mem::take(&mut arena.r_rho);
        rho.clear();
        let mut saves = std::mem::take(&mut arena.r_saves);
        saves.clear();
        let mut area = std::mem::take(&mut arena.r_area);
        area.clear();
        let mut cont_encodings = std::mem::take(&mut arena.r_cont_encodings);
        cont_encodings.clear();
        ResolvedMachine {
            rp,
            cur_proc: 0,
            cur_node: NodeId(0),
            rho,
            saves,
            uid: 0,
            mem,
            area,
            stack: Vec::new(),
            globals,
            next_uid: 1,
            cont_encodings,
            status: Status::Idle,
            steps: 0,
            governor: None,
            sink,
        }
    }

    /// Consumes the machine and banks its heap containers (cleared) in
    /// `arena` for the next [`ResolvedMachine::with_sink_in`]. The
    /// activation stack is dropped, not banked — its frames borrow the
    /// program.
    pub fn recycle_into(self, arena: &mut crate::arena::SemArena) {
        let ResolvedMachine {
            mut mem,
            mut rho,
            mut saves,
            mut area,
            mut globals,
            mut cont_encodings,
            ..
        } = self;
        mem.clear();
        rho.clear();
        saves.clear();
        area.clear();
        globals.clear();
        cont_encodings.clear();
        arena.mem = mem;
        arena.r_rho = rho;
        arena.r_saves = saves;
        arena.r_area = area;
        arena.r_globals = globals;
        arena.r_cont_encodings = cont_encodings;
    }

    /// Installs a resource governor (see
    /// [`Machine::set_governor`](crate::Machine::set_governor)): checks
    /// sit at exactly the reference machine's transitions, preserving
    /// observational equality for governed pairs.
    pub fn set_governor(&mut self, g: ResourceGovernor) {
        self.governor = Some(g);
    }

    /// The installed governor, if any.
    pub fn governor(&self) -> Option<&ResourceGovernor> {
        self.governor.as_ref()
    }

    /// Emits the chaos event for a limit trip (when tracing) and builds
    /// the `Wrong` that reports it.
    #[cold]
    fn limit_wrong(&mut self, trip: LimitTrip, observed: u64) -> Wrong {
        if S::ENABLED {
            self.emit(Event::Chaos {
                what: format!("limit {trip}"),
            });
        }
        Wrong::LimitTripped {
            limit: trip.to_string(),
            observed,
        }
    }

    /// The trace sink (to read back recorded events or counters).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the machine, returning its sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Emits a trace event at the current step count. Callers must
    /// guard payload construction with `S::ENABLED` themselves.
    #[inline]
    pub(crate) fn emit(&mut self, e: Event) {
        if S::ENABLED {
            self.sink.event(self.steps, e);
        }
    }

    /// The current status.
    pub fn status(&self) -> &Status {
        &self.status
    }

    fn fresh_uid(&mut self) -> u64 {
        let u = self.next_uid;
        self.next_uid += 1;
        u
    }

    fn proc(&self) -> &'p RProc<'p> {
        &self.rp.procs[self.cur_proc]
    }

    fn here(&self) -> NodeRef {
        NodeRef {
            proc: self.rp.procs[self.cur_proc].name.clone(),
            node: self.cur_node,
        }
    }

    /// Begins execution of the named procedure (see
    /// [`Machine::start`](crate::Machine::start)).
    ///
    /// # Errors
    ///
    /// Fails if the procedure does not exist or the machine is
    /// suspended in the run-time system.
    pub fn start(&mut self, proc: &str, args: Vec<Value>) -> Result<(), Wrong> {
        if matches!(self.status, Status::Suspended) {
            return Err(Wrong::NotRunnable);
        }
        let idx = self
            .rp
            .idx_of(&Name::from(proc))
            .ok_or_else(|| Wrong::NoSuchProc(NodeRef::new(proc, NodeId(0)), Name::from(proc)))?;
        self.cur_proc = idx;
        self.cur_node = self.rp.procs[idx].entry;
        self.rho = Vec::new();
        self.saves.clear();
        self.uid = self.fresh_uid();
        self.area = args;
        self.stack.clear();
        self.status = Status::Running;
        Ok(())
    }

    /// Runs up to `fuel` transitions; returns the resulting status.
    /// A governed machine additionally clips `fuel` to the governor's
    /// per-resume slice.
    pub fn run(&mut self, fuel: u64) -> Status {
        let fuel = match &self.governor {
            Some(g) => g.slice(fuel),
            None => fuel,
        };
        if matches!(self.status, Status::OutOfFuel) {
            self.status = Status::Running;
        }
        for _ in 0..fuel {
            if !matches!(self.status, Status::Running) {
                return self.status.clone();
            }
            self.step();
        }
        if matches!(self.status, Status::Running) {
            self.status = Status::OutOfFuel;
        }
        self.status.clone()
    }

    /// Takes a single transition. No-op unless the status is `Running`.
    pub fn step(&mut self) {
        if !matches!(self.status, Status::Running) {
            return;
        }
        self.steps += 1;
        if let Err(w) = self.transition() {
            self.status = Status::Wrong(w);
        }
    }

    fn transition(&mut self) -> Result<(), Wrong> {
        let p = self.proc();
        let node = &p.nodes[self.cur_node.index()];
        match node {
            RNode::Entry { conts, next } => {
                let mut rho = vec![None; p.nslots];
                for &(slot, id) in conts {
                    rho[slot as usize] = Some(Value::Cont(
                        NodeRef {
                            proc: p.name.clone(),
                            node: id,
                        },
                        self.uid,
                    ));
                }
                self.rho = rho;
                self.saves.clear();
                if S::ENABLED && !conts.is_empty() {
                    self.emit(Event::ContCapture {
                        proc: p.name.clone(),
                        uid: self.uid,
                        conts: conts.len() as u32,
                    });
                }
                self.cur_node = *next;
                Ok(())
            }
            RNode::Exit { index, alternates } => {
                let Some(frame) = self.stack.pop() else {
                    if *index == 0 && *alternates == 0 {
                        if S::ENABLED {
                            self.emit(Event::Return {
                                proc: p.name.clone(),
                                index: *index,
                                alternates: *alternates,
                            });
                        }
                        self.status = Status::Terminated(self.area.clone());
                        return Ok(());
                    }
                    return Err(Wrong::AbnormalTopLevelExit(self.here()));
                };
                if frame.bundle.alternates() != *alternates || *index > *alternates {
                    let actual = frame.bundle.alternates();
                    self.stack.push(frame);
                    return Err(Wrong::ReturnArityMismatch {
                        at: self.here(),
                        claimed: *alternates,
                        actual,
                    });
                }
                if S::ENABLED {
                    self.emit(Event::Return {
                        proc: p.name.clone(),
                        index: *index,
                        alternates: *alternates,
                    });
                }
                let target = frame.bundle.returns[*index as usize];
                self.cur_proc = frame.proc;
                self.cur_node = target;
                self.rho = frame.rho;
                self.saves = frame.saves;
                self.uid = frame.uid;
                Ok(())
            }
            RNode::CopyIn { slots, next } => {
                if self.area.len() < slots.len() {
                    return Err(Wrong::TooFewValues(self.here()));
                }
                let values = std::mem::take(&mut self.area);
                for (&slot, val) in slots.iter().zip(values) {
                    self.rho[slot as usize] = Some(val);
                }
                self.cur_node = *next;
                Ok(())
            }
            RNode::CopyOut { exprs, next } => {
                let mut vals = Vec::with_capacity(exprs.len());
                for e in exprs {
                    vals.push(self.eval(e)?);
                }
                self.area = vals;
                self.cur_node = *next;
                Ok(())
            }
            RNode::CalleeSaves { slots, next } => {
                self.saves = slots.clone();
                self.cur_node = *next;
                Ok(())
            }
            RNode::AssignVar { target, rhs, next } => {
                let v = self.eval(rhs)?;
                match target {
                    Target::Slot(s) => self.rho[*s as usize] = Some(v),
                    Target::Global(g) => self.globals[*g as usize] = v,
                    Target::Unbound(n) => return Err(Wrong::UnboundName(self.here(), n.clone())),
                }
                self.cur_node = *next;
                Ok(())
            }
            RNode::AssignMem {
                ty,
                addr,
                rhs,
                next,
            } => {
                let v = self.eval(rhs)?;
                let a = self.eval_bits(addr)?.1;
                let bits = self.flatten(v)?;
                self.store(*ty, a, bits);
                if let Some(g) = self.governor {
                    let bytes = self.mem.len();
                    if let Some(trip) = g.check_memory(bytes) {
                        return Err(self.limit_wrong(trip, bytes as u64));
                    }
                }
                self.cur_node = *next;
                Ok(())
            }
            RNode::Branch { cond, t, f } => {
                let (_, v) = self.eval_bits(cond)?;
                self.cur_node = if v != 0 { *t } else { *f };
                Ok(())
            }
            RNode::Call { callee, bundle } => {
                let target = self.resolve_code(callee)?;
                if let Some(g) = self.governor {
                    let depth = self.stack.len() + 1;
                    if let Some(trip) = g.check_depth(depth) {
                        return Err(self.limit_wrong(trip, depth as u64));
                    }
                }
                if S::ENABLED {
                    let callee_name = match &target {
                        Ok(idx) => self.rp.procs[*idx].name.clone(),
                        Err(n) => n.clone(),
                    };
                    self.emit(Event::Call {
                        caller: p.name.clone(),
                        callee: callee_name,
                    });
                }
                let frame = RFrame {
                    proc: self.cur_proc,
                    call_site: self.cur_node,
                    bundle,
                    rho: std::mem::take(&mut self.rho),
                    saves: std::mem::take(&mut self.saves),
                    uid: self.uid,
                };
                self.stack.push(frame);
                self.enter(target)
            }
            RNode::Jump { callee } => {
                let target = self.resolve_code(callee)?;
                if S::ENABLED {
                    let callee_name = match &target {
                        Ok(idx) => self.rp.procs[*idx].name.clone(),
                        Err(n) => n.clone(),
                    };
                    self.emit(Event::TailCall {
                        caller: p.name.clone(),
                        callee: callee_name,
                    });
                }
                self.rho.clear();
                self.saves.clear();
                self.enter(target)
            }
            RNode::CutTo { cont, cuts } => {
                let v = self.eval(cont)?;
                let (target, tuid) = self
                    .decode_cont(&v)
                    .ok_or_else(|| Wrong::DeadContinuation(self.here()))?;
                if tuid == self.uid && target.proc == self.proc().name {
                    if !cuts.contains(&target.node) {
                        return Err(Wrong::CutNotAnnotated(self.here()));
                    }
                    let killed = std::mem::take(&mut self.saves);
                    for &s in &killed {
                        self.rho[s as usize] = None;
                    }
                    if S::ENABLED {
                        self.emit(Event::CutTo {
                            proc: p.name.clone(),
                            target: target.proc.clone(),
                            killed_saves: killed.len() as u32,
                        });
                    }
                    self.cur_node = target.node;
                    return Ok(());
                }
                let cutter = if S::ENABLED {
                    Some((p.name.clone(), target.proc.clone()))
                } else {
                    None
                };
                let killed = self.cut_stack(target, tuid)?;
                if S::ENABLED {
                    if let Some((proc, target)) = cutter {
                        self.emit(Event::CutTo {
                            proc,
                            target,
                            killed_saves: killed,
                        });
                    }
                }
                Ok(())
            }
            RNode::Yield => {
                if S::ENABLED {
                    let code = self.area.first().and_then(Value::bits).unwrap_or(0);
                    self.emit(Event::Yield { code });
                }
                self.status = Status::Suspended;
                Ok(())
            }
        }
    }

    /// The stack-truncating loop shared by `CutTo` and `rts_cut_to`.
    /// Returns the number of callee-saves the cut killed in the target
    /// frame.
    fn cut_stack(&mut self, target: NodeRef, tuid: u64) -> Result<u32, Wrong> {
        loop {
            let Some(top) = self.stack.last() else {
                return Err(Wrong::DeadContinuation(self.here()));
            };
            if top.uid == tuid {
                if self.rp.procs[top.proc].name != target.proc
                    || !top.bundle.cuts.contains(&target.node)
                {
                    return Err(Wrong::CutNotAnnotated(self.here()));
                }
                let mut frame = self.stack.pop().expect("frame checked above");
                let killed = frame.saves.len() as u32;
                for &s in &frame.saves {
                    frame.rho[s as usize] = None;
                }
                self.cur_proc = frame.proc;
                self.cur_node = target.node;
                self.rho = frame.rho;
                self.saves = Vec::new();
                self.uid = frame.uid;
                return Ok(killed);
            }
            if !top.bundle.aborts {
                return Err(Wrong::NotAbortable(self.site_of(top)));
            }
            let dead = self.stack.pop().expect("frame checked above");
            if S::ENABLED {
                self.emit(Event::ContDeath {
                    proc: self.rp.procs[dead.proc].name.clone(),
                    uid: dead.uid,
                });
            }
        }
    }

    fn site_of(&self, frame: &RFrame<'p>) -> NodeRef {
        NodeRef {
            proc: self.rp.procs[frame.proc].name.clone(),
            node: frame.call_site,
        }
    }

    fn enter(&mut self, target: Result<usize, Name>) -> Result<(), Wrong> {
        let idx = match target {
            Ok(idx) => idx,
            Err(name) => return Err(Wrong::NoSuchProc(self.here(), name)),
        };
        self.cur_proc = idx;
        self.cur_node = self.rp.procs[idx].entry;
        self.uid = self.fresh_uid();
        Ok(())
    }

    /// Resolves a call target. `Ok(Ok(idx))` is a live procedure;
    /// `Ok(Err(name))` is a `Code` value naming a missing procedure
    /// (which, as in the reference machine, goes wrong only in `enter`,
    /// *after* a `Call` has pushed its frame).
    #[allow(clippy::type_complexity)]
    fn resolve_code(&mut self, callee: &RCallee) -> Result<Result<usize, Name>, Wrong> {
        match callee {
            RCallee::Direct(idx) => Ok(Ok(*idx)),
            RCallee::Dynamic(e) => match self.eval(e)? {
                Value::Code(n) => Ok(self.rp.idx_of(&n).ok_or(n)),
                Value::Bits(_, addr) => {
                    let name = self
                        .rp
                        .prog
                        .proc_at(addr)
                        .ok_or_else(|| Wrong::NotCode(self.here()))?;
                    Ok(Ok(self
                        .rp
                        .idx_of(name)
                        .expect("proc_at returns live procs")))
                }
                Value::Cont(..) => Err(Wrong::NotCode(self.here())),
            },
        }
    }

    // ----- expression evaluation -----

    fn eval(&mut self, e: &RExpr) -> Result<Value, Wrong> {
        match e {
            RExpr::Lit(v) => Ok(v.clone()),
            RExpr::Name(n) => self.lookup(n),
            RExpr::Mem(ty, a) => {
                let addr = self.eval_bits(a)?.1;
                Ok(self.load(*ty, addr))
            }
            RExpr::Un(op, a) => {
                let (w, bits) = self.eval_bits(a)?;
                let (r, rw) = op.eval(w, bits);
                Ok(Value::Bits(rw, r))
            }
            RExpr::Bin(op, shiftish, a, b) => {
                let (wa, va) = self.eval_bits(a)?;
                let (wb, vb) = self.eval_bits(b)?;
                if wa != wb && !*shiftish {
                    return Err(Wrong::WidthMismatch(self.here()));
                }
                let (r, rw) = op
                    .eval(wa, va, vb)
                    .map_err(|e| Wrong::OpFailed(self.here(), e))?;
                Ok(Value::Bits(rw, r))
            }
        }
    }

    fn eval_bits(&mut self, e: &RExpr) -> Result<(Width, u64), Wrong> {
        let v = self.eval(e)?;
        match v {
            Value::Bits(w, b) => Ok((w, b)),
            other => {
                let bits = self.flatten(other)?;
                Ok((Width::W32, bits))
            }
        }
    }

    fn lookup(&mut self, n: &RName) -> Result<Value, Wrong> {
        if let Some(s) = n.slot {
            if let Some(Some(v)) = self.rho.get(s as usize) {
                return Ok(v.clone());
            }
        }
        if let Some(g) = n.global {
            return Ok(self.globals[g as usize].clone());
        }
        match &n.fallback {
            Some(v) => Ok(v.clone()),
            None => Err(Wrong::UnboundName(self.here(), n.name.clone())),
        }
    }

    fn flatten(&mut self, v: Value) -> Result<u64, Wrong> {
        match v {
            Value::Bits(_, b) => Ok(b),
            Value::Code(n) => self
                .rp
                .prog
                .proc_addr(n.as_str())
                .ok_or_else(|| Wrong::NoSuchProc(self.here(), n)),
            Value::Cont(p, u) => Ok(self.encode_cont(p, u)),
        }
    }

    fn encode_cont(&mut self, p: NodeRef, u: u64) -> u64 {
        if let Some(i) = self
            .cont_encodings
            .iter()
            .position(|(q, v)| *q == p && *v == u)
        {
            return CONT_BASE + (i as u64) * 8;
        }
        self.cont_encodings.push((p, u));
        CONT_BASE + ((self.cont_encodings.len() - 1) as u64) * 8
    }

    /// Recovers a continuation from a `Cont` value or its flattened
    /// encoding.
    pub fn decode_cont(&self, v: &Value) -> Option<(NodeRef, u64)> {
        match v {
            Value::Cont(p, u) => Some((p.clone(), *u)),
            Value::Bits(_, b) if *b >= CONT_BASE && (*b - CONT_BASE).is_multiple_of(8) => {
                let i = ((*b - CONT_BASE) / 8) as usize;
                self.cont_encodings.get(i).cloned()
            }
            _ => None,
        }
    }

    // ----- memory -----

    /// Loads a typed value from memory.
    pub fn load(&self, ty: Ty, addr: u64) -> Value {
        let w = width_of(ty);
        let mut v = 0u64;
        for i in 0..ty.bytes() {
            v |= u64::from(*self.mem.get(&(addr + i)).unwrap_or(&0)) << (8 * i);
        }
        Value::Bits(w, v)
    }

    /// Stores bits to memory with the width of `ty`.
    pub fn store(&mut self, ty: Ty, addr: u64, bits: u64) {
        for i in 0..ty.bytes() {
            self.mem.insert(addr + i, ((bits >> (8 * i)) & 0xff) as u8);
        }
    }

    /// The whole memory as sorted `(address, byte)` pairs, zero bytes
    /// elided.
    pub fn mem_snapshot(&self) -> Vec<(u64, u8)> {
        let mut v: Vec<(u64, u8)> = self
            .mem
            .iter()
            .filter(|&(_, &b)| b != 0)
            .map(|(&a, &b)| (a, b))
            .collect();
        v.sort_unstable();
        v
    }

    // ----- the run-time system's window on a suspended thread -----

    /// The values passed to `yield` (available while suspended).
    pub fn yield_args(&self) -> &[Value] {
        &self.area
    }

    /// Number of live activations.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The call site of the activation `i` frames down from the top.
    pub fn activation_site(&self, i: usize) -> Option<NodeRef> {
        let len = self.stack.len();
        if i < len {
            Some(self.site_of(&self.stack[len - 1 - i]))
        } else {
            None
        }
    }

    fn require_suspended(&self) -> Result<(), Wrong> {
        if matches!(self.status, Status::Suspended) {
            Ok(())
        } else {
            Err(Wrong::RtsViolation(
                "machine is not suspended in yield".into(),
            ))
        }
    }

    /// Discards the topmost activation (requires `also aborts`).
    ///
    /// # Errors
    ///
    /// As [`Machine::rts_pop_frame`](crate::Machine::rts_pop_frame).
    pub fn rts_pop_frame(&mut self) -> Result<(), Wrong> {
        self.require_suspended()?;
        let Some(top) = self.stack.last() else {
            return Err(Wrong::RtsViolation("no activation to discard".into()));
        };
        if !top.bundle.aborts {
            return Err(Wrong::NotAbortable(self.site_of(top)));
        }
        let dead = self.stack.pop().expect("frame checked above");
        if S::ENABLED {
            self.emit(Event::ContDeath {
                proc: self.rp.procs[dead.proc].name.clone(),
                uid: dead.uid,
            });
        }
        Ok(())
    }

    /// Resumes at a continuation of the topmost frame's bundle.
    ///
    /// # Errors
    ///
    /// As [`Machine::rts_resume`](crate::Machine::rts_resume).
    pub fn rts_resume(&mut self, target: RtsTarget, args: Vec<Value>) -> Result<(), Wrong> {
        self.require_suspended()?;
        let Some(top) = self.stack.last() else {
            return Err(Wrong::RtsViolation("no activation to resume".into()));
        };
        let (node, restore) = match target {
            RtsTarget::Return(i) => (top.bundle.returns.get(i).copied(), true),
            RtsTarget::Unwind(i) => (top.bundle.unwinds.get(i).copied(), true),
            RtsTarget::Cut(i) => (top.bundle.cuts.get(i).copied(), false),
        };
        let Some(node) = node else {
            return Err(Wrong::RtsViolation(format!(
                "{target:?} not present in the bundle"
            )));
        };
        let proc_name = self.rp.procs[top.proc].name.clone();
        let expected = self.cont_param_count(&proc_name, node);
        if let Some(expected) = expected {
            if args.len() != expected {
                return Err(Wrong::RtsViolation(format!(
                    "continuation expects {expected} parameters, got {}",
                    args.len()
                )));
            }
        }
        let mut frame = self.stack.pop().expect("frame checked above");
        if !restore {
            for &s in &frame.saves {
                frame.rho[s as usize] = None;
            }
            frame.saves.clear();
        }
        self.cur_proc = frame.proc;
        self.cur_node = node;
        self.rho = frame.rho;
        self.saves = frame.saves;
        self.uid = frame.uid;
        self.area = args;
        self.status = Status::Running;
        Ok(())
    }

    /// Cuts the stack to a continuation value from the run-time system.
    ///
    /// # Errors
    ///
    /// As [`Machine::rts_cut_to`](crate::Machine::rts_cut_to).
    pub fn rts_cut_to(&mut self, cont: &Value, args: Vec<Value>) -> Result<(), Wrong> {
        self.require_suspended()?;
        let (target, tuid) = self
            .decode_cont(cont)
            .ok_or_else(|| Wrong::DeadContinuation(self.here()))?;
        let expected = self.cont_param_count(&target.proc, target.node);
        if let Some(expected) = expected {
            if args.len() != expected {
                return Err(Wrong::RtsViolation(format!(
                    "continuation expects {expected} parameters, got {}",
                    args.len()
                )));
            }
        }
        let saved_stack = self.stack.clone();
        match self.cut_stack(target, tuid) {
            Ok(_) => {
                self.area = args;
                self.status = Status::Running;
                Ok(())
            }
            Err(w) => {
                self.stack = saved_stack;
                Err(w)
            }
        }
    }

    /// Number of parameters the continuation at `node` expects, if it
    /// is a `CopyIn` node.
    pub fn cont_param_count(&self, proc: &Name, node: NodeId) -> Option<usize> {
        let g = self.rp.procs[self.rp.idx_of(proc)?].graph;
        match g.node(node) {
            Node::CopyIn { vars, .. } => Some(vars.len()),
            _ => None,
        }
    }

    // ----- snapshot capture and restore -----

    /// Captures the machine's suspended state in the same portable name
    /// space as [`Machine::capture`](crate::Machine::capture): slots
    /// are translated back to the names they stand for, so at matching
    /// execution points both engines capture *equal* [`SemState`]s and
    /// a state captured here restores into the reference machine (and
    /// vice versa).
    ///
    /// # Errors
    ///
    /// As [`Machine::capture`](crate::Machine::capture).
    pub fn capture(&self) -> Result<SemState, String> {
        let status = match &self.status {
            Status::Suspended => SnapStatus::Suspended,
            Status::OutOfFuel => SnapStatus::OutOfFuel,
            other => return Err(format!("not at a resumable point (status {other:?})")),
        };
        let env = |p: &RProc<'p>, rho: &[Option<Value>]| {
            sorted_bindings(
                rho.iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.as_ref().map(|v| (p.slot_names[i].clone(), v.clone()))),
            )
        };
        let names = |p: &RProc<'p>, slots: &[Slot]| {
            let mut v: Vec<Name> = slots
                .iter()
                .map(|&s| p.slot_names[s as usize].clone())
                .collect();
            v.sort();
            v
        };
        let p = &self.rp.procs[self.cur_proc];
        Ok(SemState {
            proc: p.name.clone(),
            node: self.cur_node,
            rho: env(p, &self.rho),
            saves: names(p, &self.saves),
            uid: self.uid,
            mem: self.mem_snapshot(),
            area: self.area.clone(),
            stack: self
                .stack
                .iter()
                .map(|f| {
                    let fp = &self.rp.procs[f.proc];
                    FrameState {
                        proc: fp.name.clone(),
                        call_site: f.call_site,
                        rho: env(fp, &f.rho),
                        saves: names(fp, &f.saves),
                        uid: f.uid,
                    }
                })
                .collect(),
            globals: sorted_bindings(
                self.rp
                    .globals_init
                    .iter()
                    .map(|(n, _)| n.clone())
                    .zip(self.globals.iter().cloned()),
            ),
            next_uid: self.next_uid,
            cont_encodings: self.cont_encodings.clone(),
            status,
            steps: self.steps,
        })
    }

    /// Restores a captured state, translating names back into this
    /// engine's slot space. The state may come from either engine of
    /// the family; validation mirrors
    /// [`Machine::restore`](crate::Machine::restore), with the extra
    /// check that every restored binding names a variable of its
    /// procedure's slot universe.
    ///
    /// # Errors
    ///
    /// As [`Machine::restore`](crate::Machine::restore). The machine is
    /// unchanged on error.
    pub fn restore(&mut self, st: &SemState) -> Result<(), String> {
        let prog = self.rp.prog;
        check_ref(prog, &st.proc, st.node, "control")?;
        for (i, ce) in st.cont_encodings.iter().enumerate() {
            check_ref(prog, &ce.0.proc, ce.0.node, &format!("cont-encoding {i}"))?;
        }
        let resolve_env = |p: &RProc<'p>,
                           pairs: &[(Name, Value)],
                           what: &str|
         -> Result<Vec<Option<Value>>, String> {
            let mut rho = vec![None; p.nslots];
            for (n, v) in pairs {
                let slot =
                    p.slot_names.iter().position(|m| m == n).ok_or_else(|| {
                        format!("{what}: `{n}` is not a variable of `{}`", p.name)
                    })?;
                rho[slot] = Some(v.clone());
            }
            Ok(rho)
        };
        let resolve_names = |p: &RProc<'p>, ns: &[Name], what: &str| -> Result<Vec<Slot>, String> {
            ns.iter()
                .map(|n| {
                    p.slot_names
                        .iter()
                        .position(|m| m == n)
                        .map(|s| s as Slot)
                        .ok_or_else(|| format!("{what}: `{n}` is not a variable of `{}`", p.name))
                })
                .collect()
        };
        let cur = self
            .rp
            .idx_of(&st.proc)
            .expect("checked by check_ref above");
        let p = &self.rp.procs[cur];
        let rho = resolve_env(p, &st.rho, "environment")?;
        let saves = resolve_names(p, &st.saves, "callee-saves")?;
        let mut stack = Vec::with_capacity(st.stack.len());
        for (i, f) in st.stack.iter().enumerate() {
            let bundle =
                call_bundle(prog, &f.proc, f.call_site).map_err(|e| format!("frame {i}: {e}"))?;
            let fi = self
                .rp
                .idx_of(&f.proc)
                .expect("call_bundle found the procedure");
            let fp = &self.rp.procs[fi];
            stack.push(RFrame {
                proc: fi,
                call_site: f.call_site,
                bundle,
                rho: resolve_env(fp, &f.rho, &format!("frame {i} environment"))?,
                saves: resolve_names(fp, &f.saves, &format!("frame {i} callee-saves"))?,
                uid: f.uid,
            });
        }
        let mut globals: Vec<Value> = self
            .rp
            .globals_init
            .iter()
            .map(|(_, v)| v.clone())
            .collect();
        for (n, v) in &st.globals {
            let g = self
                .rp
                .globals_idx
                .get(n)
                .ok_or_else(|| format!("global `{n}` is not declared by the program"))?;
            globals[*g as usize] = v.clone();
        }
        self.cur_proc = cur;
        self.cur_node = st.node;
        self.rho = rho;
        self.saves = saves;
        self.uid = st.uid;
        self.mem = st.mem.iter().copied().collect();
        self.area = st.area.clone();
        self.stack = stack;
        self.globals = globals;
        self.next_uid = st.next_uid;
        self.cont_encodings = st.cont_encodings.clone();
        self.status = match st.status {
            SnapStatus::Suspended => Status::Suspended,
            SnapStatus::OutOfFuel => Status::OutOfFuel,
        };
        self.steps = st.steps;
        Ok(())
    }
}

impl<'p, S: TraceSink> crate::engine::SemEngine<'p> for ResolvedMachine<'p, S> {
    fn program(&self) -> &'p Program {
        self.rp.prog
    }

    fn status(&self) -> &Status {
        ResolvedMachine::status(self)
    }

    fn start(&mut self, proc: &str, args: Vec<Value>) -> Result<(), Wrong> {
        ResolvedMachine::start(self, proc, args)
    }

    fn run(&mut self, fuel: u64) -> Status {
        ResolvedMachine::run(self, fuel)
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn yield_args(&self) -> &[Value] {
        ResolvedMachine::yield_args(self)
    }

    fn depth(&self) -> usize {
        ResolvedMachine::depth(self)
    }

    fn activation_site(&self, i: usize) -> Option<NodeRef> {
        ResolvedMachine::activation_site(self, i)
    }

    fn rts_pop_frame(&mut self) -> Result<(), Wrong> {
        ResolvedMachine::rts_pop_frame(self)
    }

    fn rts_resume(&mut self, target: RtsTarget, args: Vec<Value>) -> Result<(), Wrong> {
        ResolvedMachine::rts_resume(self, target, args)
    }

    fn rts_cut_to(&mut self, cont: &Value, args: Vec<Value>) -> Result<(), Wrong> {
        ResolvedMachine::rts_cut_to(self, cont, args)
    }

    fn decode_cont(&self, v: &Value) -> Option<(NodeRef, u64)> {
        ResolvedMachine::decode_cont(self, v)
    }

    fn cont_param_count(&self, proc: &Name, node: NodeId) -> Option<usize> {
        ResolvedMachine::cont_param_count(self, proc, node)
    }

    fn load(&self, ty: Ty, addr: u64) -> Value {
        ResolvedMachine::load(self, ty, addr)
    }

    fn store(&mut self, ty: Ty, addr: u64, bits: u64) {
        ResolvedMachine::store(self, ty, addr, bits)
    }

    fn mem_snapshot(&self) -> Vec<(u64, u8)> {
        ResolvedMachine::mem_snapshot(self)
    }

    fn capture(&self) -> Result<SemState, String> {
        ResolvedMachine::capture(self)
    }

    fn restore(&mut self, st: &SemState) -> Result<(), String> {
        ResolvedMachine::restore(self, st)
    }

    fn trace_enabled(&self) -> bool {
        S::ENABLED
    }

    fn trace(&mut self, e: Event) {
        self.emit(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn prog(src: &str) -> Program {
        build_program(&parse_module(src).unwrap()).unwrap()
    }

    /// Runs a source program to completion on both engines and asserts
    /// identical status, step count, and memory.
    fn both(src: &str, proc: &str, args: Vec<Value>) -> Status {
        let p = prog(src);
        let rp = ResolvedProgram::new(&p);
        let mut old = Machine::new(&p);
        let mut new = ResolvedMachine::new(&rp);
        let so = old.start(proc, args.clone()).err();
        let sn = new.start(proc, args).err();
        assert_eq!(so, sn);
        if so.is_some() {
            return Status::Idle;
        }
        let a = old.run(1_000_000);
        let b = new.run(1_000_000);
        assert_eq!(a, b, "status diverged");
        assert_eq!(old.steps, new.steps, "step counts diverged");
        assert_eq!(old.mem_snapshot(), new.mem_snapshot(), "memory diverged");
        b
    }

    #[test]
    fn figure1_matches_reference() {
        let src = r#"
            sp1(bits32 n) {
                bits32 s, p;
                if n == 1 { return (1, 1); }
                else { s, p = sp1(n - 1); return (s + n, p * n); }
            }
        "#;
        let s = both(src, "sp1", vec![Value::b32(10)]);
        assert_eq!(
            s,
            Status::Terminated(vec![Value::b32(55), Value::b32(3628800)])
        );
    }

    #[test]
    fn cut_to_matches_reference() {
        let src = r#"
            f() {
                bits32 r;
                r = mid(k) also cuts to k;
                return (0);
                continuation k(r):
                return (r + 1);
            }
            mid(bits32 kk) {
                bits32 r;
                r = g(kk) also aborts;
                return (r);
            }
            g(bits32 kk) { cut to kk(10); return (0); }
        "#;
        assert_eq!(
            both(src, "f", vec![]),
            Status::Terminated(vec![Value::b32(11)])
        );
    }

    #[test]
    fn wrong_payloads_match_reference() {
        // Every `Wrong` constructor carries a NodeRef; the resolved
        // engine must produce the identical payload.
        for (src, args) in [
            // Use before definition: UnboundName.
            ("f() { bits32 x; return (x); }", vec![]),
            // Call site lacks `also cuts to`: CutNotAnnotated.
            ("f() { bits32 r; r = g(k); return (0); continuation k(r): return (r); } g(bits32 kk) { cut to kk(1); return (0); }", vec![]),
            // Claimed alternates disagree with the bundle: ReturnArityMismatch.
            ("f() { bits32 r; r = g(); return (r); } g() { return <0/2> (5); }", vec![]),
            // bits8 + bits32: WidthMismatch.
            ("f(bits32 a) { bits8 b; b = %lo8(a); return (a + b); }", vec![Value::b32(1)]),
        ] {
            let s = both(src, "f", args);
            assert!(matches!(s, Status::Wrong(_)), "{src}: {s:?}");
        }
    }

    #[test]
    fn continuation_encodings_match_reference() {
        // Continuations stored to memory intern identically, so the
        // final memory (and any arithmetic on the encodings) agrees.
        let src = r#"
            data slot { bits32 0; }
            f() {
                bits32 r;
                bits32[slot] = k;
                r = g() also cuts to k;
                return (0);
                continuation k(r):
                return (r + 100);
            }
            g() {
                bits32 kk;
                kk = bits32[slot];
                cut to kk(1);
                return (0);
            }
        "#;
        assert_eq!(
            both(src, "f", vec![]),
            Status::Terminated(vec![Value::b32(101)])
        );
    }

    #[test]
    fn globals_and_memory_match_reference() {
        let src = r#"
            register bits32 counter = 5;
            data cell { bits32 7; }
            f() {
                bits32 x;
                counter = counter + 1;
                x = bits32[cell];
                bits32[cell] = x + counter;
                return (bits32[cell]);
            }
        "#;
        assert_eq!(
            both(src, "f", vec![]),
            Status::Terminated(vec![Value::b32(13)])
        );
    }

    #[test]
    fn missing_proc_matches_reference() {
        assert_eq!(both("f() { return (0); }", "nope", vec![]), Status::Idle);
    }

    #[test]
    fn rts_walk_and_unwind_match_reference() {
        let src = r#"
            f() {
                bits32 y, r;
                y = 5;
                r = g() also unwinds to k;
                return (0);
                continuation k(r):
                return (r + y);
            }
            g() { yield(9) also aborts; return (0); }
        "#;
        let p = prog(src);
        let rp = ResolvedProgram::new(&p);
        let mut old = Machine::new(&p);
        let mut new = ResolvedMachine::new(&rp);
        old.start("f", vec![]).unwrap();
        new.start("f", vec![]).unwrap();
        assert_eq!(old.run(100_000), Status::Suspended);
        assert_eq!(new.run(100_000), Status::Suspended);
        assert_eq!(old.yield_args(), new.yield_args());
        // Identical walk order.
        let walk_old: Vec<_> = (0..old.stack().len())
            .map(|i| old.activation(i).unwrap().site())
            .collect();
        let walk_new: Vec<_> = (0..new.depth())
            .map(|i| new.activation_site(i).unwrap())
            .collect();
        assert_eq!(walk_old, walk_new);
        // Identical resumption behaviour.
        old.rts_pop_frame().unwrap();
        new.rts_pop_frame().unwrap();
        old.rts_resume(RtsTarget::Unwind(0), vec![Value::b32(77)])
            .unwrap();
        new.rts_resume(RtsTarget::Unwind(0), vec![Value::b32(77)])
            .unwrap();
        assert_eq!(old.run(100_000), new.run(100_000));
        assert_eq!(*new.status(), Status::Terminated(vec![Value::b32(82)]));
    }

    const DEEP: &str = r#"
        f(bits32 n) {
            bits32 r;
            if n == 0 { return (0); }
            else { r = f(n - 1); return (r + 1); }
        }
    "#;

    /// Runs `f(1000)` on both engines under one governor and asserts
    /// they trip the same limit at the same transition.
    fn both_governed(src: &str, g: ResourceGovernor) -> Status {
        let p = prog(src);
        let rp = ResolvedProgram::new(&p);
        let mut old = Machine::new(&p);
        let mut new = ResolvedMachine::new(&rp);
        old.set_governor(g);
        new.set_governor(g);
        old.start("f", vec![Value::b32(1000)]).unwrap();
        new.start("f", vec![Value::b32(1000)]).unwrap();
        let a = old.run(1_000_000);
        let b = new.run(1_000_000);
        assert_eq!(a, b, "governed status diverged");
        assert_eq!(old.steps, new.steps, "governed step counts diverged");
        b
    }

    #[test]
    fn governor_depth_limit_trips_identically_on_both_engines() {
        let g = ResourceGovernor {
            max_depth: Some(40),
            ..ResourceGovernor::unlimited()
        };
        match both_governed(DEEP, g) {
            Status::Wrong(Wrong::LimitTripped { limit, observed }) => {
                assert_eq!(limit, "stack-depth");
                assert!(observed > 40);
            }
            other => panic!("expected a depth trip, got {other:?}"),
        }
    }

    #[test]
    fn governor_memory_limit_trips_identically_on_both_engines() {
        let src = r#"
            data base { bits32 0; }
            f(bits32 n) {
                bits32 i;
                i = 0;
              loop:
                if i == n { return (i); }
                else { bits32[base + i * 4] = i; i = i + 1; goto loop; }
            }
        "#;
        let g = ResourceGovernor {
            max_memory_bytes: Some(64),
            ..ResourceGovernor::unlimited()
        };
        match both_governed(src, g) {
            Status::Wrong(Wrong::LimitTripped { limit, observed }) => {
                assert_eq!(limit, "memory");
                assert!(observed > 64);
            }
            other => panic!("expected a memory trip, got {other:?}"),
        }
    }

    #[test]
    fn governor_fuel_slice_clips_each_run_call() {
        let g = ResourceGovernor {
            fuel_slice: Some(10),
            ..ResourceGovernor::unlimited()
        };
        assert_eq!(both_governed(DEEP, g), Status::OutOfFuel);
    }
}
