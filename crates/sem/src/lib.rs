//! # cmm-sem — the operational semantics of Abstract C--
//!
//! This crate implements, rule for rule, the formal operational semantics
//! of §5.2 of the paper. The mutable state of the C-- abstract machine
//! has seven components:
//!
//! 1. the **control** `p`, the current node (here a [`NodeRef`]);
//! 2. the **local environment** `ρ`, mapping names to values;
//! 3. a set `s` of the variables of `ρ` stored in callee-saves registers;
//! 4. a unique integer **uid**, "used to enforce the restriction against
//!    using dead continuations";
//! 5. a **memory** `M`;
//! 6. an **argument-passing area** `A`, a list of values;
//! 7. a **stack** `σ` of activation frames, each holding a continuation
//!    bundle, a local environment, a callee-saves set, a uid, and the
//!    rest of the stack.
//!
//! Values take the three forms of §5.1: `Bits_n k`, `Code p`, and
//! `Cont (p, u)`.
//!
//! The machine "makes transitions until it reaches a state in which no
//! transitions are possible. If, in that state, the control is `Exit 0 0`
//! and the stack is empty, we say the program has terminated normally;
//! otherwise it has **gone wrong**" — the [`Wrong`] type enumerates the
//! ways.
//!
//! The `Yield` rules are deliberately under-specified in the paper; they
//! delimit what any front-end run-time system may do. Here, reaching a
//! `Yield` node suspends the [`Machine`] ([`Status::Suspended`]), and the
//! permitted transitions are exposed as the `rts_*` methods — exactly
//! the operations the run-time interface of `cmm-rt` (the paper's
//! Table 1) is built from:
//!
//! * pop a frame whose call site `also aborts` ([`Machine::rts_pop_frame`]);
//! * resume at a return or unwind continuation of the topmost frame,
//!   *restoring* callee-saves registers ([`Machine::rts_resume`]);
//! * resume at a cut continuation *without* restoring callee-saves;
//! * cut the stack directly to a continuation value
//!   ([`Machine::rts_cut_to`]);
//! * read and write memory and global registers while suspended.
//!
//! # Example
//!
//! ```
//! use cmm_sem::{Machine, Status, Value};
//!
//! let m = cmm_parse::parse_module(
//!     "sp1(bits32 n) {
//!         bits32 s, p;
//!         if n == 1 { return (1, 1); }
//!         else { s, p = sp1(n - 1); return (s + n, p * n); }
//!      }",
//! ).unwrap();
//! let prog = cmm_cfg::build_program(&m).unwrap();
//! let mut mach = Machine::new(&prog);
//! mach.start("sp1", vec![Value::b32(5)]).unwrap();
//! match mach.run(1_000_000) {
//!     Status::Terminated(vals) => {
//!         assert_eq!(vals, vec![Value::b32(15), Value::b32(120)]);
//!     }
//!     other => panic!("unexpected status {other:?}"),
//! }
//! ```

pub mod arena;
pub mod engine;
pub mod machine;
pub mod resolved;
pub mod snapshot;
pub mod state;
pub mod value;
pub mod wrong;

pub use arena::SemArena;
pub use engine::SemEngine;
pub use machine::{Machine, RtsTarget, Status};
pub use resolved::{ResolvedMachine, ResolvedProgram};
pub use snapshot::{FrameState, SemState, SnapStatus};
pub use state::{Frame, NodeRef};
pub use value::Value;
pub use wrong::Wrong;
