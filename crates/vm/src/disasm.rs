//! Disassembly of generated code (for `cmm dump-vm` and debugging).

use crate::codegen::VmProgram;
use crate::decode::DOp;
use crate::fuse::{FInst, FOp};
use crate::isa::{regs, Inst, Reg};
use std::fmt::Write as _;

fn reg_name(r: Reg) -> String {
    match r {
        regs::ZERO => "zero".into(),
        regs::SP => "sp".into(),
        regs::RA => "ra".into(),
        r if (regs::SCRATCH0..regs::SCRATCH0 + regs::NUM_SCRATCH).contains(&r) => {
            format!("t{}", r - regs::SCRATCH0)
        }
        r if (regs::ARG0..regs::ARG0 + regs::NUM_ARGS).contains(&r) => {
            format!("a{}", r - regs::ARG0)
        }
        r if (regs::CALLER0..regs::CALLER0 + regs::NUM_CALLER).contains(&r) => {
            format!("v{}", r - regs::CALLER0)
        }
        r if (regs::CALLEE0..regs::CALLEE0 + regs::NUM_CALLEE).contains(&r) => {
            format!("s{}", r - regs::CALLEE0)
        }
        r if r >= regs::GLOBAL0 => format!("g{}", r - regs::GLOBAL0),
        r => format!("r{r}"),
    }
}

/// Renders one instruction.
pub fn inst_to_string(i: &Inst) -> String {
    match i {
        Inst::Halt => "halt".into(),
        Inst::Li { rd, imm } => format!("li    {}, {imm:#x}", reg_name(*rd)),
        Inst::Addi { rd, rs, imm } => {
            format!("addi  {}, {}, {imm}", reg_name(*rd), reg_name(*rs))
        }
        Inst::Mov { rd, rs } => format!("mov   {}, {}", reg_name(*rd), reg_name(*rs)),
        Inst::Bin { op, w, rd, ra, rb } => format!(
            "{:<5} {}, {}, {}    ; bits{}",
            format!("{op:?}").to_lowercase(),
            reg_name(*rd),
            reg_name(*ra),
            reg_name(*rb),
            w.bits()
        ),
        Inst::Un { op, w, rd, ra } => format!(
            "{:<5} {}, {}    ; bits{}",
            format!("{op:?}").to_lowercase(),
            reg_name(*rd),
            reg_name(*ra),
            w.bits()
        ),
        Inst::Load { w, rd, rb, off } => {
            format!(
                "ld{}  {}, {off}({})",
                w.bits(),
                reg_name(*rd),
                reg_name(*rb)
            )
        }
        Inst::Store { w, rs, rb, off } => {
            format!(
                "st{}  {}, {off}({})",
                w.bits(),
                reg_name(*rs),
                reg_name(*rb)
            )
        }
        Inst::Bnz { rs, target } => format!("bnz   {}, {target}", reg_name(*rs)),
        Inst::Bz { rs, target } => format!("bz    {}, {target}", reg_name(*rs)),
        Inst::Jmp { target } => format!("jmp   {target}"),
        Inst::Jr { rs, off } => format!("jr    {}+{off}", reg_name(*rs)),
        Inst::Call { target } => format!("call  {target}"),
        Inst::CallR { rs } => format!("callr {}", reg_name(*rs)),
        Inst::SysYield => "sys.yield".into(),
    }
}

/// The mnemonic of the ALU/compare opcode a polymorphic fusion
/// selected.
fn sel_name(sel: DOp) -> &'static str {
    match sel {
        DOp::Li => "li",
        DOp::Addi => "addi",
        DOp::Mov => "mov",
        DOp::Add32 => "add",
        DOp::Sub32 => "sub",
        DOp::Mul32 => "mul",
        DOp::And32 => "and",
        DOp::Or32 => "or",
        DOp::Xor32 => "xor",
        DOp::Eq32 => "eq",
        DOp::Ne32 => "ne",
        DOp::LtU32 => "ltu",
        DOp::LeU32 => "leu",
        DOp::GtU32 => "gtu",
        DOp::GeU32 => "geu",
        DOp::LtS32 => "lts",
        DOp::LeS32 => "les",
        DOp::GtS32 => "gts",
        DOp::GeS32 => "ges",
        _ => "?",
    }
}

/// Renders one fused instruction. Plain slots (window length 1) render
/// exactly as [`inst_to_string`] on the original instruction would;
/// fused heads get a dotted mnemonic chain naming the collapsed
/// sequence.
pub fn fused_inst_to_string(f: &FInst, original: &Inst) -> String {
    let r = |x: u8| reg_name(x);
    match f.op {
        FOp::CmpBz => format!(
            "{}.bz {}, {}, {}, {}",
            sel_name(f.sel),
            r(f.a),
            r(f.b),
            r(f.c),
            f.imm2
        ),
        FOp::CmpBnz => format!(
            "{}.bnz {}, {}, {}, {}",
            sel_name(f.sel),
            r(f.a),
            r(f.b),
            r(f.c),
            f.imm2
        ),
        FOp::LiCmpBz => format!(
            "li.{}.bz {}, {}, {:#x}, {}",
            sel_name(f.sel),
            r(f.a),
            r(f.b),
            f.imm,
            f.imm2
        ),
        FOp::LiCmpBnz => format!(
            "li.{}.bnz {}, {}, {:#x}, {}",
            sel_name(f.sel),
            r(f.a),
            r(f.b),
            f.imm,
            f.imm2
        ),
        FOp::AluJmp => format!(
            "{}.jmp {}, {}, {}, {}",
            sel_name(f.sel),
            r(f.a),
            r(f.b),
            r(f.c),
            f.imm2
        ),
        FOp::AddiStore32 => format!(
            "addi.st32 {}, {}, {}, {}({})",
            r(f.a),
            r(f.b),
            f.imm as i32,
            f.imm2,
            r(f.d)
        ),
        FOp::MovCall => format!("mov.call {}, {}, {}", r(f.a), r(f.b), f.imm2),
        FOp::RetJr => format!(
            "ld32.addi.jr {}, {}({}), {}, +{}",
            r(f.a),
            f.imm,
            r(f.b),
            f.imm2 as i32,
            f.d
        ),
        FOp::CutJr => format!("cutjr {}, ({})", r(f.a), r(f.b)),
        FOp::MovMov => format!("mov.mov {}, {}; {}, {}", r(f.a), r(f.b), r(f.c), r(f.d)),
        FOp::MovLi => format!("mov.li {}, {}; {}, {:#x}", r(f.a), r(f.b), r(f.c), f.imm2),
        FOp::MovLoad32 => format!(
            "mov.ld32 {}, {}; {}, {}({})",
            r(f.a),
            r(f.b),
            r(f.c),
            f.imm2,
            r(f.d)
        ),
        FOp::MovStore32 => format!(
            "mov.st32 {}, {}; {}, {}({})",
            r(f.a),
            r(f.b),
            r(f.c),
            f.imm2,
            r(f.d)
        ),
        FOp::LiMov => format!("li.mov {}, {:#x}; {}, {}", r(f.a), f.imm, r(f.c), r(f.d)),
        FOp::LiStore32 => format!(
            "li.st32 {}, {:#x}; {}, {}({})",
            r(f.a),
            f.imm,
            r(f.c),
            f.imm2,
            r(f.d)
        ),
        FOp::LiBin32 => format!(
            "li.{} {}, {:#x}; {}, {}, {}",
            sel_name(f.sel),
            r(f.a),
            f.imm,
            r(f.d),
            r(f.b),
            r(f.c)
        ),
        FOp::Load32Mov => format!(
            "ld32.mov {}, {}({}); {}, {}",
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            r(f.d)
        ),
        FOp::Load32Li => format!(
            "ld32.li {}, {}({}); {}, {:#x}",
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            f.imm2
        ),
        FOp::Load32Load32 => format!(
            "ld32.ld32 {}, {}({}); {}, {}({})",
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            f.imm2,
            r(f.d)
        ),
        FOp::Load32Addi => format!(
            "ld32.addi {}, {}({}); {}, {}, {}",
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            r(f.d),
            f.imm2 as i32
        ),
        FOp::Load32Store32 => format!(
            "ld32.st32 {}, {}({}); {}, {}({})",
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            f.imm2,
            r(f.d)
        ),
        FOp::Store32Mov => format!(
            "st32.mov {}, {}({}); {}, {}",
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            r(f.d)
        ),
        FOp::Store32Li => format!(
            "st32.li {}, {}({}); {}, {:#x}",
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            f.imm2
        ),
        FOp::Store32Store32 => format!(
            "st32.st32 {}, {}({}); {}, {}({})",
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            f.imm2,
            r(f.d)
        ),
        FOp::Bin32Store32 => format!(
            "{}.st32 {}, {}, {}; {}({})",
            sel_name(f.sel),
            r(f.a),
            r(f.b),
            r(f.c),
            f.imm2,
            r(f.d)
        ),
        FOp::Bin32Load32 => format!(
            "{}.ld32 {}, {}, {}; {}, {}({})",
            sel_name(f.sel),
            r(f.a),
            r(f.b),
            r(f.c),
            r(f.d),
            f.imm2,
            r(f.a)
        ),
        FOp::Bin32Mov => format!(
            "{}.mov {}, {}, {}; {}",
            sel_name(f.sel),
            r(f.a),
            r(f.b),
            r(f.c),
            r(f.d)
        ),
        FOp::MovAddi => format!(
            "mov.addi {}, {}; {}, {}, {}",
            r(f.a),
            r(f.b),
            r(f.c),
            r(f.d),
            f.imm2 as i32
        ),
        FOp::Store32Load32 => format!(
            "st32.ld32 {}, {}({}); {}, {}({})",
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            f.imm2,
            r(f.d)
        ),
        FOp::AddiJr => format!(
            "addi.jr {}, {}, {}; {}+{}",
            r(f.a),
            r(f.b),
            f.imm as i32,
            r(f.c),
            f.d
        ),
        FOp::Mov3 => format!(
            "mov.mov.mov {}, {}; {}, {}; {}, {}",
            r(f.a),
            r(f.b),
            r(f.c),
            r(f.d),
            r(f.imm as u8),
            r((f.imm >> 8) as u8)
        ),
        FOp::Mov4 => format!(
            "mov.mov.mov.mov {}, {}; {}, {}; {}, {}; {}, {}",
            r(f.a),
            r(f.b),
            r(f.c),
            r(f.d),
            r(f.imm as u8),
            r((f.imm >> 8) as u8),
            r(f.imm2 as u8),
            r((f.imm2 >> 8) as u8)
        ),
        FOp::Load32LiBin32 => format!(
            "ld32.li.{} {}, {}({}); {}, {:#x}; {}",
            sel_name(f.sel),
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            f.imm2,
            r(f.d)
        ),
        FOp::MovMovCall => format!(
            "mov.mov.call {}, {}; {}, {}; {}",
            r(f.a),
            r(f.b),
            r(f.c),
            r(f.d),
            f.imm2
        ),
        FOp::Load32MovCall => format!(
            "ld32.mov.call {}, {}({}); {}, {}; {}",
            r(f.a),
            f.imm,
            r(f.b),
            r(f.c),
            r(f.d),
            f.imm2
        ),
        FOp::Load32LiBin32Store32Mov => format!(
            "ld32.li.{}.st32.mov {}, {}({}); {}, {:#x}; {}; {}({}); {}, {}",
            sel_name(f.sel),
            r(f.a),
            f.imm & 0xffff,
            r(f.b),
            r(f.c),
            f.imm2 & 0xffff,
            r(f.d),
            f.imm >> 16,
            r(f.b),
            r((f.imm2 >> 16) as u8),
            r((f.imm2 >> 24) as u8)
        ),
        FOp::MovRun => format!("mov.run x{}, [{}..{}]", f.n, f.imm, f.imm + u32::from(f.n)),
        FOp::Store32MovLoad32LiBin32 => format!(
            "st32.mov.ld32.li.{} {}, {}({}); {}, {}; {}, {}({}); {}, {:#x}; {}",
            sel_name(f.sel),
            r(f.a),
            f.imm & 0xffff,
            r(f.b),
            r(f.a),
            r(f.c),
            r((f.imm2 >> 8) as u8),
            f.imm >> 16,
            r(f.d),
            r((f.imm2 >> 16) as u8),
            f.imm2 & 0xff,
            r((f.imm2 >> 24) as u8)
        ),
        FOp::LiBin32Load32Mov => format!(
            "li.{}.ld32.mov {}, {:#x}; {}, {}, {}; {}, {}({}); {}",
            sel_name(f.sel),
            r(f.a),
            f.imm,
            r(f.d),
            r(f.b),
            r(f.c),
            r((f.imm2 >> 16) as u8),
            f.imm2 & 0xffff,
            r(f.d),
            r((f.imm2 >> 24) as u8)
        ),
        FOp::LiBin32Mov => format!(
            "li.{}.mov {}, {:#x}; {}, {}, {}; {}",
            sel_name(f.sel),
            r(f.a),
            f.imm,
            r(f.d),
            r(f.b),
            r(f.c),
            r(f.imm2 as u8)
        ),
        FOp::LiBin32MovJmp => format!(
            "li.{}.mov.jmp {}, {:#x}; {}, {}, {}; {}; {}",
            sel_name(f.sel),
            r(f.a),
            f.imm,
            r(f.d),
            r(f.b),
            r(f.c),
            r((f.imm2 >> 24) as u8),
            f.imm2 & 0xff_ffff
        ),
        FOp::Load32Load32CmpBz => format!(
            "ld32.ld32.{}.bz {}, {}({}); {}, {}({}); {}; {}",
            sel_name(f.sel),
            r(f.a),
            f.imm & 0xffff,
            r(f.b),
            r(f.c),
            f.imm >> 16,
            r(f.d),
            r((f.imm2 >> 24) as u8),
            f.imm2 & 0xff_ffff
        ),
        FOp::Load32LiBin32Store32Jmp => format!(
            "ld32.li.{}.st32.jmp {}, {}({}); {}, {:#x}; {}; {}({}); {}",
            sel_name(f.sel),
            r(f.a),
            f.imm & 0xffff,
            r(f.b),
            r(f.c),
            f.imm2 >> 24,
            r(f.d),
            f.imm >> 16,
            r(f.b),
            f.imm2 & 0xff_ffff
        ),
        FOp::Load32MovLoad32MovCall => format!(
            "ld32.mov.ld32.mov.call {}, {}({}); {}; {}, {}({}); {}; {}",
            r(f.a),
            f.imm & 0xffff,
            r(f.b),
            r((f.imm2 >> 16) as u8),
            r(f.c),
            f.imm >> 16,
            r(f.d),
            r((f.imm2 >> 24) as u8),
            f.imm2 & 0xffff
        ),
        FOp::Bin32Li => format!(
            "{}.li {}, {}, {}; {}, {:#x}",
            sel_name(f.sel),
            r(f.a),
            r(f.b),
            r(f.c),
            r(f.d),
            f.imm2
        ),
        FOp::Load32AddiJmp => format!(
            "ld32.addi.jmp {}, {}({}); {}, {}, {}; {}",
            r(f.a),
            f.imm & 0xffff,
            r(f.b),
            r(f.c),
            r(f.d),
            f.imm2 as i32,
            f.imm >> 16
        ),
        FOp::MovBin32Mov => format!(
            "mov.{}.mov {}, {}; {}, {}, {}; {}",
            sel_name(f.sel),
            r(f.a),
            r(f.b),
            r(f.d),
            r(f.c),
            r(f.imm as u8),
            r(f.imm2 as u8)
        ),
        FOp::WriteRun => format!(
            "write.run x{}, [{}..{}]",
            f.d,
            f.imm,
            f.imm + u32::from(f.d)
        ),
        FOp::ReadRun => format!("read.run x{}, [{}..{}]", f.d, f.imm, f.imm + u32::from(f.d)),
        _ => inst_to_string(original),
    }
}

/// Disassembles a whole program, with procedure headers, branch-table
/// markers, and frame-layout comments.
pub fn disassemble(p: &VmProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; halt vector at 0..8; {} instructions total\n",
        p.code.len()
    );
    for meta in &p.proc_meta {
        let _ = writeln!(
            out,
            "{}:    ; frame {} bytes, ra at +{}, {} callee-saves, {} continuation pairs",
            meta.name,
            meta.frame_bytes,
            meta.ra_offset,
            meta.saved_callee.len(),
            meta.cont_slots.len()
        );
        for pc in meta.entry..meta.end {
            let site = p.call_sites.get(&pc);
            let _ = writeln!(out, "  {pc:>5}: {}", inst_to_string(&p.code[pc as usize]));
            if let Some(site) = site {
                let _ = writeln!(
                    out,
                    "         ; call site: {} alternates, {} unwind conts, aborts={}",
                    site.alternates,
                    site.unwind_pcs.len(),
                    site.aborts
                );
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    #[test]
    fn disassembles_every_instruction_kind() {
        let src = r#"
            f(bits32 x) {
                bits32 r, t;
                bits8 b;
                b = %lo8(x);
                bits32[x] = x + 1;
                t = bits32[x];
                r = g(t) also returns to k also unwinds to k2;
                if r == 0 { jump g(r); }
                cut to kv(r) also cuts to k2;
                return (r);
                continuation k(r):
                return (r);
                continuation k2(r):
                yield(1) also aborts;
                return (r);
            }
            g(bits32 a) { bits32 kv; return <1/1> (a); }
        "#;
        // kv is undeclared in f — declare it to build.
        let src = src.replace("bits32 r, t;", "bits32 r, t, kv;");
        let prog = build_program(&parse_module(&src).unwrap()).unwrap();
        let vp = crate::codegen::compile(&prog).unwrap();
        let asm = disassemble(&vp);
        for needle in [
            "li",
            "mov",
            "call",
            "jr",
            "bz",
            "jmp",
            "sys.yield",
            "st",
            "ld",
            "f:",
            "g:",
        ] {
            assert!(asm.contains(needle), "missing `{needle}` in:\n{asm}");
        }
        assert!(asm.contains("call site"));
    }
}
