//! Disassembly of generated code (for `cmm dump-vm` and debugging).

use crate::codegen::VmProgram;
use crate::isa::{regs, Inst, Reg};
use std::fmt::Write as _;

fn reg_name(r: Reg) -> String {
    match r {
        regs::ZERO => "zero".into(),
        regs::SP => "sp".into(),
        regs::RA => "ra".into(),
        r if (regs::SCRATCH0..regs::SCRATCH0 + regs::NUM_SCRATCH).contains(&r) => {
            format!("t{}", r - regs::SCRATCH0)
        }
        r if (regs::ARG0..regs::ARG0 + regs::NUM_ARGS).contains(&r) => {
            format!("a{}", r - regs::ARG0)
        }
        r if (regs::CALLER0..regs::CALLER0 + regs::NUM_CALLER).contains(&r) => {
            format!("v{}", r - regs::CALLER0)
        }
        r if (regs::CALLEE0..regs::CALLEE0 + regs::NUM_CALLEE).contains(&r) => {
            format!("s{}", r - regs::CALLEE0)
        }
        r if r >= regs::GLOBAL0 => format!("g{}", r - regs::GLOBAL0),
        r => format!("r{r}"),
    }
}

/// Renders one instruction.
pub fn inst_to_string(i: &Inst) -> String {
    match i {
        Inst::Halt => "halt".into(),
        Inst::Li { rd, imm } => format!("li    {}, {imm:#x}", reg_name(*rd)),
        Inst::Addi { rd, rs, imm } => {
            format!("addi  {}, {}, {imm}", reg_name(*rd), reg_name(*rs))
        }
        Inst::Mov { rd, rs } => format!("mov   {}, {}", reg_name(*rd), reg_name(*rs)),
        Inst::Bin { op, w, rd, ra, rb } => format!(
            "{:<5} {}, {}, {}    ; bits{}",
            format!("{op:?}").to_lowercase(),
            reg_name(*rd),
            reg_name(*ra),
            reg_name(*rb),
            w.bits()
        ),
        Inst::Un { op, w, rd, ra } => format!(
            "{:<5} {}, {}    ; bits{}",
            format!("{op:?}").to_lowercase(),
            reg_name(*rd),
            reg_name(*ra),
            w.bits()
        ),
        Inst::Load { w, rd, rb, off } => {
            format!(
                "ld{}  {}, {off}({})",
                w.bits(),
                reg_name(*rd),
                reg_name(*rb)
            )
        }
        Inst::Store { w, rs, rb, off } => {
            format!(
                "st{}  {}, {off}({})",
                w.bits(),
                reg_name(*rs),
                reg_name(*rb)
            )
        }
        Inst::Bnz { rs, target } => format!("bnz   {}, {target}", reg_name(*rs)),
        Inst::Bz { rs, target } => format!("bz    {}, {target}", reg_name(*rs)),
        Inst::Jmp { target } => format!("jmp   {target}"),
        Inst::Jr { rs, off } => format!("jr    {}+{off}", reg_name(*rs)),
        Inst::Call { target } => format!("call  {target}"),
        Inst::CallR { rs } => format!("callr {}", reg_name(*rs)),
        Inst::SysYield => "sys.yield".into(),
    }
}

/// Disassembles a whole program, with procedure headers, branch-table
/// markers, and frame-layout comments.
pub fn disassemble(p: &VmProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; halt vector at 0..8; {} instructions total\n",
        p.code.len()
    );
    for meta in &p.proc_meta {
        let _ = writeln!(
            out,
            "{}:    ; frame {} bytes, ra at +{}, {} callee-saves, {} continuation pairs",
            meta.name,
            meta.frame_bytes,
            meta.ra_offset,
            meta.saved_callee.len(),
            meta.cont_slots.len()
        );
        for pc in meta.entry..meta.end {
            let site = p.call_sites.get(&pc);
            let _ = writeln!(out, "  {pc:>5}: {}", inst_to_string(&p.code[pc as usize]));
            if let Some(site) = site {
                let _ = writeln!(
                    out,
                    "         ; call site: {} alternates, {} unwind conts, aborts={}",
                    site.alternates,
                    site.unwind_pcs.len(),
                    site.aborts
                );
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    #[test]
    fn disassembles_every_instruction_kind() {
        let src = r#"
            f(bits32 x) {
                bits32 r, t;
                bits8 b;
                b = %lo8(x);
                bits32[x] = x + 1;
                t = bits32[x];
                r = g(t) also returns to k also unwinds to k2;
                if r == 0 { jump g(r); }
                cut to kv(r) also cuts to k2;
                return (r);
                continuation k(r):
                return (r);
                continuation k2(r):
                yield(1) also aborts;
                return (r);
            }
            g(bits32 a) { bits32 kv; return <1/1> (a); }
        "#;
        // kv is undeclared in f — declare it to build.
        let src = src.replace("bits32 r, t;", "bits32 r, t, kv;");
        let prog = build_program(&parse_module(&src).unwrap()).unwrap();
        let vp = crate::codegen::compile(&prog).unwrap();
        let asm = disassemble(&vp);
        for needle in [
            "li",
            "mov",
            "call",
            "jr",
            "bz",
            "jmp",
            "sys.yield",
            "st",
            "ld",
            "f:",
            "g:",
        ] {
            assert!(asm.contains(needle), "missing `{needle}` in:\n{asm}");
        }
        assert!(asm.contains("call site"));
    }
}
