//! Code generation from Abstract C-- to the simulated target.
//!
//! One pass per procedure: classify variables into registers or frame
//! slots (driven by the optimizer's `CalleeSaves` nodes and by which
//! continuations calls can cut to, per §4.2), lay out the frame, then
//! linearize the graph. Call sites annotated `also returns to` get the
//! branch-table method of Figures 3/4; `cut to` compiles to the
//! constant-time 2-word sequence of §5.4; per-procedure and per-call-site
//! tables are deposited for the run-time system's stack walker.

use crate::frame::{CallSiteMeta, Loc, ProcMeta};
use crate::isa::{regs, Inst, Reg};
use cmm_cfg::{Bundle, DataImage, Graph, Node, NodeId, Program, YIELD};
use cmm_ir::{Expr, FWidth, Lvalue, Name, Ty, Width};
use cmm_opt::Liveness;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Errors the code generator can report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodegenError {
    /// More arguments or results than argument registers.
    TooManyValues {
        /// The procedure.
        proc: Name,
        /// How many were needed.
        needed: usize,
    },
    /// Expression too deep for the scratch registers.
    ExprTooDeep(Name),
    /// More global registers than the machine provides.
    TooManyGlobals,
    /// A 64-bit literal that does not fit an immediate.
    LiteralTooWide(Name),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::TooManyValues { proc, needed } => write!(
                f,
                "procedure `{proc}` passes {needed} values; the calling convention provides {}",
                regs::NUM_ARGS
            ),
            CodegenError::ExprTooDeep(p) => {
                write!(
                    f,
                    "procedure `{p}`: expression exceeds the scratch registers"
                )
            }
            CodegenError::TooManyGlobals => write!(f, "too many global registers"),
            CodegenError::LiteralTooWide(p) => {
                write!(
                    f,
                    "procedure `{p}`: 64-bit literal does not fit an immediate"
                )
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// An exception-relevant control transfer the code generator deposited
/// at a specific instruction, keyed by that instruction's pc in
/// [`VmProgram::trace_sites`]. The executing engines consult the table
/// only when a trace sink is live, so tagging costs nothing otherwise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceSite {
    /// The `jr ra+index` of a `return <index/alternates>`.
    Ret {
        /// The chosen branch-table arm.
        index: u32,
        /// The call site's alternate count claimed by the return.
        alternates: u32,
    },
    /// The terminal transfer of a `jump` (a tail call).
    TailCall,
    /// The `jr` of the constant-time `cut to` sequence (§5.4).
    Cut,
}

/// A compiled program: code, tables, and layout.
#[derive(Clone, Debug)]
pub struct VmProgram {
    /// The instruction stream. Index 0 is the halt vector.
    pub code: Vec<Inst>,
    /// Per-procedure layout and unwind tables.
    pub proc_meta: Vec<ProcMeta>,
    /// Entry pc of each procedure.
    pub entries: BTreeMap<Name, u32>,
    /// Call-site tables, keyed by return address (= branch-table base).
    pub call_sites: HashMap<u32, CallSiteMeta>,
    /// Image code address → entry pc (for code pointers stored in data).
    pub code_map: HashMap<u32, u32>,
    /// Global C-- registers and the machine registers holding them.
    pub globals: Vec<(Name, Reg, u64)>,
    /// The static-data image (loaded into memory at startup).
    pub image: DataImage,
    /// Initial stack pointer.
    pub stack_top: u32,
    /// Exception-relevant transfer instructions, keyed by pc.
    pub trace_sites: HashMap<u32, TraceSite>,
    /// Source map: first pc of each emitted graph node, sorted by pc
    /// (emission order is monotone). [`VmProgram::node_at_pc`] recovers
    /// the node — and hence the source statement — behind any pc.
    pub node_map: Vec<(u32, NodeId)>,
    /// Parameter count of each materialized continuation, keyed by the
    /// continuation's entry pc (the pc stored in its `(pc, sp)` pair).
    pub cont_params: HashMap<u32, usize>,
}

impl VmProgram {
    /// The procedure whose code contains `pc`, if any.
    pub fn proc_at_pc(&self, pc: u32) -> Option<&ProcMeta> {
        // `proc_meta` is sorted by entry pc (procedures are emitted
        // back to back after the halt vector), so the owner — if any —
        // is the last procedure whose entry is at or below `pc`.
        let i = self.proc_meta.partition_point(|m| m.entry <= pc);
        self.proc_meta[..i].last().filter(|m| m.contains(pc))
    }

    /// Number of instructions generated for a procedure.
    pub fn proc_len(&self, name: &str) -> Option<u32> {
        self.proc_meta
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.end - m.entry)
    }

    /// The graph node whose code contains `pc`, with its procedure: the
    /// source statement behind a machine fault or trace event. `None`
    /// for pcs outside generated node code (halt vector, prologues, the
    /// yield stub).
    pub fn node_at_pc(&self, pc: u32) -> Option<(&ProcMeta, NodeId)> {
        let meta = self.proc_at_pc(pc)?;
        let i = self.node_map.partition_point(|&(p, _)| p <= pc);
        let &(p, node) = self.node_map[..i].last()?;
        (p >= meta.entry).then_some((meta, node))
    }

    /// A ` (proc:node)` source-location suffix for fault messages, in
    /// the same `f:n12` form the abstract machine's `Wrong` errors use;
    /// empty when `pc` has no source node.
    pub fn locate(&self, pc: u32) -> String {
        match self.node_at_pc(pc) {
            Some((m, n)) => format!(" ({}:{})", m.name, n),
            None => String::new(),
        }
    }
}

/// Compiles a whole Abstract C-- program.
///
/// # Errors
///
/// Returns a [`CodegenError`] if the program exceeds the machine's
/// conventions (argument registers, scratch depth, global registers).
pub fn compile(prog: &Program) -> Result<VmProgram, CodegenError> {
    // The first 8 instructions are the halt vector: a normal top-level
    // return lands on pc 0; an abnormal top-level `return <i/n>` lands
    // on pc i (an error the machine reports).
    let mut out = VmProgram {
        code: vec![Inst::Halt; 8],
        proc_meta: Vec::new(),
        entries: BTreeMap::new(),
        call_sites: HashMap::new(),
        code_map: HashMap::new(),
        globals: Vec::new(),
        image: prog.image.clone(),
        stack_top: 0x0800_0000,
        trace_sites: HashMap::new(),
        node_map: Vec::new(),
        cont_params: HashMap::new(),
    };
    // Global registers.
    for (i, g) in prog.globals.iter().enumerate() {
        let reg = regs::GLOBAL0 as usize + i;
        if reg >= regs::NUM_REGS {
            return Err(CodegenError::TooManyGlobals);
        }
        out.globals.push((
            g.name.clone(),
            reg as Reg,
            g.init.map(|l| l.bits).unwrap_or(0),
        ));
    }
    let global_regs: HashMap<Name, Reg> = out
        .globals
        .iter()
        .map(|(n, r, _)| (n.clone(), *r))
        .collect();

    let mut call_fixups: Vec<(u32, Name)> = Vec::new();
    for (name, g) in &prog.procs {
        let entry = out.code.len() as u32;
        out.entries.insert(name.clone(), entry);
        if name == YIELD {
            gen_yield(&mut out, entry);
            continue;
        }
        let pg = ProcGen::new(prog, g, &global_regs, out.proc_meta.len());
        pg.run(&mut out, &mut call_fixups)?;
    }
    // Patch cross-procedure calls and jumps.
    for (at, target) in call_fixups {
        let pc = out.entries[&target];
        match &mut out.code[at as usize] {
            Inst::Call { target } | Inst::Jmp { target } => *target = pc,
            other => unreachable!("call fixup at non-call {other:?}"),
        }
    }
    // Image code addresses → entries.
    for (addr, name) in &prog.image.code_syms {
        if let Some(&e) = out.entries.get(name) {
            out.code_map.insert(*addr as u32, e);
        }
    }
    Ok(out)
}

/// The `yield` stub: save ra, trap to the run-time system, and (if the
/// run-time system resumes normally) return.
fn gen_yield(out: &mut VmProgram, entry: u32) {
    let frame = 8u32;
    out.code.push(Inst::Addi {
        rd: regs::SP,
        rs: regs::SP,
        imm: -(frame as i32),
    });
    out.code.push(Inst::Store {
        w: Width::W32,
        rs: regs::RA,
        rb: regs::SP,
        off: 0,
    });
    out.code.push(Inst::SysYield);
    out.code.push(Inst::Load {
        w: Width::W32,
        rd: regs::RA,
        rb: regs::SP,
        off: 0,
    });
    out.code.push(Inst::Addi {
        rd: regs::SP,
        rs: regs::SP,
        imm: frame as i32,
    });
    out.code.push(Inst::Jr {
        rs: regs::RA,
        off: 0,
    });
    out.proc_meta.push(ProcMeta {
        name: Name::from(YIELD),
        entry,
        end: out.code.len() as u32,
        frame_bytes: frame,
        ra_offset: 0,
        saved_callee: vec![],
        cont_slots: vec![],
        var_locs: HashMap::new(),
        arity: 1,
    });
}

struct ProcGen<'a> {
    prog: &'a Program,
    g: &'a Graph,
    global_regs: &'a HashMap<Name, Reg>,
    meta_index: usize,
    var_locs: HashMap<Name, Loc>,
    var_widths: HashMap<Name, Width>,
    cont_slots: Vec<(Name, u32)>,
    cont_slot_of: HashMap<NodeId, u32>,
    saved_callee: Vec<(Reg, u32)>,
    frame_bytes: u32,
    ra_offset: u32,
    emitted: HashMap<NodeId, u32>,
    node_fixups: Vec<(u32, NodeId)>,
    cont_pc_fixups: Vec<(u32, NodeId)>,
    site_fixups: Vec<(u32, Vec<NodeId>)>, // call-site key -> unwind cont nodes
    pending: Vec<NodeId>,
}

impl<'a> ProcGen<'a> {
    fn new(
        prog: &'a Program,
        g: &'a Graph,
        global_regs: &'a HashMap<Name, Reg>,
        meta_index: usize,
    ) -> ProcGen<'a> {
        ProcGen {
            prog,
            g,
            global_regs,
            meta_index,
            var_locs: HashMap::new(),
            var_widths: HashMap::new(),
            cont_slots: Vec::new(),
            cont_slot_of: HashMap::new(),
            saved_callee: Vec::new(),
            frame_bytes: 0,
            ra_offset: 0,
            emitted: HashMap::new(),
            node_fixups: Vec::new(),
            cont_pc_fixups: Vec::new(),
            site_fixups: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Continuation names used as values in some expression (those need
    /// a materialized `(pc, sp)` pair in the frame).
    fn value_continuations(&self) -> BTreeSet<Name> {
        let cont_names: BTreeSet<Name> = self
            .g
            .continuations()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        let mut used = BTreeSet::new();
        let mut visit = |e: &Expr| {
            e.visit_names(&mut |n| {
                if cont_names.contains(n) {
                    used.insert(n.clone());
                }
            });
        };
        // Only reachable nodes count: the optimizer can strand a call
        // site that took a continuation's value without pruning the node
        // from the arena, and a slot for such a use would fix up against
        // a body that is never emitted.
        let reachable = self.g.reachable();
        for id in self.g.ids().filter(|id| reachable[id.index()]) {
            match self.g.node(id) {
                Node::Assign { lhs, rhs, .. } => {
                    visit(rhs);
                    if let Lvalue::Mem(_, a) = lhs {
                        visit(a);
                    }
                }
                Node::Branch { cond, .. } => visit(cond),
                Node::CopyOut { exprs, .. } => exprs.iter().for_each(&mut visit),
                Node::Call { callee, .. } => visit(callee),
                Node::Jump { callee } => visit(callee),
                Node::CutTo { cont, .. } => visit(cont),
                _ => {}
            }
        }
        used
    }

    /// Variable classification, per §4.2: promoted variables get
    /// callee-saves registers; variables live across calls but not
    /// promoted (including everything live into a cut continuation) get
    /// frame slots; everything else gets caller-saves registers.
    fn allocate(&mut self) {
        let live = Liveness::compute(self.g);
        let mut promoted: BTreeSet<Name> = BTreeSet::new();
        let mut across: BTreeSet<Name> = BTreeSet::new();
        for id in self.g.reverse_postorder() {
            match self.g.node(id) {
                Node::CalleeSaves { vars, .. } => promoted.extend(vars.iter().cloned()),
                Node::Call { bundle, .. } => {
                    for t in bundle.targets() {
                        across.extend(live.live_in(t).iter().cloned());
                    }
                }
                _ => {}
            }
        }
        let mut callee_next = 0u8;
        let mut caller_next = 0u8;
        let mut frame_vars: Vec<Name> = Vec::new();
        for (v, ty) in &self.g.vars {
            self.var_widths.insert(v.clone(), width_of(*ty));
            let loc = if promoted.contains(v) && callee_next < regs::NUM_CALLEE {
                let r = regs::CALLEE0 + callee_next;
                callee_next += 1;
                Loc::CalleeReg(r)
            } else if !across.contains(v) && caller_next < regs::NUM_CALLER {
                let r = regs::CALLER0 + caller_next;
                caller_next += 1;
                Loc::CallerReg(r)
            } else {
                frame_vars.push(v.clone());
                Loc::Frame(0) // offset assigned below
            };
            self.var_locs.insert(v.clone(), loc);
        }
        // Frame layout: continuation pairs, saved callee regs, frame
        // vars, saved ra. A continuation needs a materialized (pc, sp)
        // pair only if its name is used as a *value* somewhere in the
        // procedure — continuations reached purely through annotations
        // (branch tables, unwind tables) cost nothing at run time, which
        // is the "zero overhead to enter the scope of a handler" half of
        // the §4.2 trade-off.
        let value_conts = self.value_continuations();
        let mut off = 0u32;
        for (name, node) in self.g.continuations() {
            if !value_conts.contains(name) {
                continue;
            }
            self.cont_slots.push((name.clone(), off));
            self.cont_slot_of.insert(*node, off);
            off += 8;
        }
        for i in 0..callee_next {
            self.saved_callee.push((regs::CALLEE0 + i, off));
            off += 4;
        }
        for v in frame_vars {
            self.var_locs.insert(v, Loc::Frame(off));
            off += 8;
        }
        self.ra_offset = off;
        off += 4;
        self.frame_bytes = (off + 7) & !7;
    }

    fn run(
        mut self,
        out: &mut VmProgram,
        call_fixups: &mut Vec<(u32, Name)>,
    ) -> Result<(), CodegenError> {
        self.allocate();
        let entry_pc = out.code.len() as u32;
        self.prologue(out);
        // A continuation whose (pc, sp) pair is materialized can be
        // entered through `SetCutToCont` even when no surviving call
        // site names it in an annotation, so its body must be emitted.
        self.pending.extend(self.cont_slot_of.keys().copied());
        // Emit the body starting at the entry node's successor.
        let Node::Entry { next, .. } = self.g.node(self.g.entry) else {
            unreachable!("procedure graphs start with Entry");
        };
        self.emit_chain(out, *next, call_fixups)?;
        while let Some(n) = self.pending.pop() {
            if !self.emitted.contains_key(&n) {
                self.emit_chain(out, n, call_fixups)?;
            }
        }
        // Patch intra-procedure fixups.
        for (at, node) in std::mem::take(&mut self.node_fixups) {
            let pc = self.emitted[&node];
            match &mut out.code[at as usize] {
                Inst::Bnz { target, .. }
                | Inst::Bz { target, .. }
                | Inst::Jmp { target }
                | Inst::Call { target } => *target = pc,
                other => unreachable!("node fixup at {other:?}"),
            }
        }
        for (at, node) in std::mem::take(&mut self.cont_pc_fixups) {
            let pc = self.emitted[&node];
            match &mut out.code[at as usize] {
                Inst::Li { imm, .. } => *imm = pc,
                other => unreachable!("cont fixup at {other:?}"),
            }
            // The pc stored in the continuation's (pc, sp) pair keys its
            // parameter count, so SetCutToCont can stage exactly the
            // slots the continuation expects.
            let params = match self.g.node(node) {
                Node::CopyIn { vars, .. } => vars.len(),
                _ => 0,
            };
            out.cont_params.insert(pc, params);
        }
        for (site, nodes) in std::mem::take(&mut self.site_fixups) {
            let pcs: Vec<u32> = nodes.iter().map(|n| self.emitted[n]).collect();
            out.call_sites
                .get_mut(&site)
                .expect("site registered")
                .unwind_pcs = pcs;
        }
        out.proc_meta.push(ProcMeta {
            name: self.g.name.clone(),
            entry: entry_pc,
            end: out.code.len() as u32,
            frame_bytes: self.frame_bytes,
            ra_offset: self.ra_offset,
            saved_callee: self.saved_callee.clone(),
            cont_slots: self.cont_slots.clone(),
            var_locs: self.var_locs.clone(),
            arity: self.g.arity,
        });
        Ok(())
    }

    fn prologue(&mut self, out: &mut VmProgram) {
        out.code.push(Inst::Addi {
            rd: regs::SP,
            rs: regs::SP,
            imm: -(self.frame_bytes as i32),
        });
        out.code.push(Inst::Store {
            w: Width::W32,
            rs: regs::RA,
            rb: regs::SP,
            off: self.ra_offset as i32,
        });
        for &(reg, off) in &self.saved_callee {
            out.code.push(Inst::Store {
                w: Width::W32,
                rs: reg,
                rb: regs::SP,
                off: off as i32,
            });
        }
        // Initialize continuation (pc, sp) pairs — "2 pointers" (§2) —
        // for the continuations whose values are actually taken.
        let mut slots: Vec<(NodeId, u32)> =
            self.cont_slot_of.iter().map(|(&n, &o)| (n, o)).collect();
        slots.sort_by_key(|&(_, o)| o);
        for (node, off) in slots {
            let li_at = out.code.len() as u32;
            out.code.push(Inst::Li {
                rd: regs::SCRATCH0,
                imm: 0,
            });
            self.cont_pc_fixups.push((li_at, node));
            out.code.push(Inst::Store {
                w: Width::W32,
                rs: regs::SCRATCH0,
                rb: regs::SP,
                off: off as i32,
            });
            out.code.push(Inst::Store {
                w: Width::W32,
                rs: regs::SP,
                rb: regs::SP,
                off: off as i32 + 4,
            });
        }
    }

    fn epilogue(&self, out: &mut VmProgram) {
        for &(reg, off) in &self.saved_callee {
            out.code.push(Inst::Load {
                w: Width::W32,
                rd: reg,
                rb: regs::SP,
                off: off as i32,
            });
        }
        out.code.push(Inst::Load {
            w: Width::W32,
            rd: regs::RA,
            rb: regs::SP,
            off: self.ra_offset as i32,
        });
        out.code.push(Inst::Addi {
            rd: regs::SP,
            rs: regs::SP,
            imm: self.frame_bytes as i32,
        });
    }

    fn emit_chain(
        &mut self,
        out: &mut VmProgram,
        start: NodeId,
        call_fixups: &mut Vec<(u32, Name)>,
    ) -> Result<(), CodegenError> {
        let mut cur = start;
        loop {
            if let Some(&pc) = self.emitted.get(&cur) {
                out.code.push(Inst::Jmp { target: pc });
                return Ok(());
            }
            self.emitted.insert(cur, out.code.len() as u32);
            out.node_map.push((out.code.len() as u32, cur));
            match self.g.node(cur).clone() {
                Node::Entry { .. } => unreachable!("entry emitted via prologue"),
                Node::CopyIn { vars, next } => {
                    if vars.len() > regs::NUM_ARGS as usize {
                        return Err(CodegenError::TooManyValues {
                            proc: self.g.name.clone(),
                            needed: vars.len(),
                        });
                    }
                    for (i, v) in vars.iter().enumerate() {
                        self.store_var(out, v, regs::ARG0 + i as u8);
                    }
                    cur = next;
                }
                Node::CopyOut { exprs, next } => {
                    if exprs.len() > regs::NUM_ARGS as usize {
                        return Err(CodegenError::TooManyValues {
                            proc: self.g.name.clone(),
                            needed: exprs.len(),
                        });
                    }
                    for (i, e) in exprs.iter().enumerate() {
                        let r = self.eval(out, e, 0)?;
                        out.code.push(Inst::Mov {
                            rd: regs::ARG0 + i as u8,
                            rs: r,
                        });
                    }
                    cur = next;
                }
                Node::CalleeSaves { next, .. } => {
                    // Allocation already honoured the set; no code.
                    cur = next;
                }
                Node::Assign { lhs, rhs, next } => {
                    match lhs {
                        Lvalue::Var(v) => {
                            let r = self.eval(out, &rhs, 0)?;
                            self.store_var(out, &v, r);
                        }
                        Lvalue::Mem(ty, a) => {
                            let rv = self.eval(out, &rhs, 0)?;
                            // Keep the value safe in scratch 0's slot;
                            // evaluate the address above it.
                            let rv = if rv == regs::SCRATCH0 {
                                rv
                            } else {
                                out.code.push(Inst::Mov {
                                    rd: regs::SCRATCH0,
                                    rs: rv,
                                });
                                regs::SCRATCH0
                            };
                            let ra_ = self.eval(out, &a, 1)?;
                            out.code.push(Inst::Store {
                                w: width_of(ty),
                                rs: rv,
                                rb: ra_,
                                off: 0,
                            });
                        }
                    }
                    cur = next;
                }
                Node::Branch { cond, t, f } => {
                    let r = self.eval(out, &cond, 0)?;
                    let at = out.code.len() as u32;
                    out.code.push(Inst::Bz { rs: r, target: 0 });
                    self.node_fixups.push((at, f));
                    self.pending.push(f);
                    cur = t;
                }
                Node::Call {
                    callee,
                    bundle,
                    descriptors,
                } => {
                    self.emit_call(out, &callee, &bundle, &descriptors, call_fixups)?;
                    // Fall through to the normal return point, which
                    // lands exactly at ra + alternates.
                    cur = bundle.normal_return();
                }
                Node::Jump { callee } => {
                    // Evaluate the target before deallocating the frame.
                    let target = match &callee {
                        Expr::Name(n) if self.prog.procs.contains_key(n) => None,
                        e => Some(self.eval(out, e, 5)?),
                    };
                    self.epilogue(out);
                    let at = out.code.len() as u32;
                    out.trace_sites.insert(at, TraceSite::TailCall);
                    match target {
                        None => {
                            let Expr::Name(n) = &callee else {
                                unreachable!()
                            };
                            out.code.push(Inst::Jmp { target: 0 });
                            call_fixups.push((at, n.clone()));
                        }
                        Some(r) => out.code.push(Inst::Jr { rs: r, off: 0 }),
                    }
                    return Ok(());
                }
                Node::Exit { index, alternates } => {
                    self.epilogue(out);
                    out.trace_sites
                        .insert(out.code.len() as u32, TraceSite::Ret { index, alternates });
                    out.code.push(Inst::Jr {
                        rs: regs::RA,
                        off: index as i32,
                    });
                    return Ok(());
                }
                Node::CutTo { cont, .. } => {
                    // Constant time: load (pc, sp) and go.
                    let r = self.eval(out, &cont, 0)?;
                    out.code.push(Inst::Load {
                        w: Width::W32,
                        rd: regs::SCRATCH0 + 1,
                        rb: r,
                        off: 0,
                    });
                    out.code.push(Inst::Load {
                        w: Width::W32,
                        rd: regs::SP,
                        rb: r,
                        off: 4,
                    });
                    out.trace_sites
                        .insert(out.code.len() as u32, TraceSite::Cut);
                    out.code.push(Inst::Jr {
                        rs: regs::SCRATCH0 + 1,
                        off: 0,
                    });
                    return Ok(());
                }
                Node::Yield => unreachable!("yield stub generated separately"),
            }
        }
    }

    fn emit_call(
        &mut self,
        out: &mut VmProgram,
        callee: &Expr,
        bundle: &Bundle,
        descriptors: &[Name],
        call_fixups: &mut Vec<(u32, Name)>,
    ) -> Result<(), CodegenError> {
        match callee {
            Expr::Name(n) if self.prog.procs.contains_key(n) => {
                let at = out.code.len() as u32;
                out.code.push(Inst::Call { target: 0 });
                call_fixups.push((at, n.clone()));
            }
            e => {
                let r = self.eval(out, e, 0)?;
                out.code.push(Inst::CallR { rs: r });
            }
        }
        let site = out.code.len() as u32; // the return address
                                          // Branch table for `also returns to` (Figures 3/4).
        let alternates = bundle.alternates();
        for &alt in &bundle.returns[..alternates as usize] {
            let at = out.code.len() as u32;
            out.code.push(Inst::Jmp { target: 0 });
            self.node_fixups.push((at, alt));
            self.pending.push(alt);
        }
        // Make sure exceptional continuations get code.
        for &t in bundle.unwinds.iter().chain(bundle.cuts.iter()) {
            self.pending.push(t);
        }
        // Deposit the call-site table.
        let meta = CallSiteMeta {
            proc: self.meta_index,
            alternates,
            unwind_pcs: Vec::new(), // patched later
            unwind_params: bundle
                .unwinds
                .iter()
                .map(|&t| match self.g.node(t) {
                    Node::CopyIn { vars, .. } => vars.len(),
                    _ => 0,
                })
                .collect(),
            aborts: bundle.aborts,
            descriptors: descriptors
                .iter()
                .filter_map(|d| self.prog.image.symbol(d.as_str()).map(|a| a as u32))
                .collect(),
            normal_params: match self.g.node(bundle.normal_return()) {
                Node::CopyIn { vars, .. } => vars.len(),
                _ => 0,
            },
        };
        out.call_sites.insert(site, meta);
        self.site_fixups.push((site, bundle.unwinds.clone()));
        Ok(())
    }

    fn store_var(&mut self, out: &mut VmProgram, v: &Name, from: Reg) {
        match self.var_locs.get(v) {
            Some(Loc::CallerReg(r)) | Some(Loc::CalleeReg(r)) => {
                out.code.push(Inst::Mov { rd: *r, rs: from });
            }
            Some(Loc::Frame(off)) => {
                let w = self.var_widths.get(v).copied().unwrap_or(Width::W32);
                out.code.push(Inst::Store {
                    w,
                    rs: from,
                    rb: regs::SP,
                    off: *off as i32,
                });
            }
            None => {
                // A global register.
                let r = self.global_regs[v];
                out.code.push(Inst::Mov { rd: r, rs: from });
            }
        }
    }

    /// Evaluates an expression, returning the register holding the
    /// result (a home register for simple variable reads, otherwise a
    /// scratch register at depth `sidx`).
    fn eval(&mut self, out: &mut VmProgram, e: &Expr, sidx: u8) -> Result<Reg, CodegenError> {
        if sidx >= regs::NUM_SCRATCH {
            return Err(CodegenError::ExprTooDeep(self.g.name.clone()));
        }
        let dst = regs::SCRATCH0 + sidx;
        match e {
            Expr::Lit(l) => {
                if l.bits > u64::from(u32::MAX) {
                    return Err(CodegenError::LiteralTooWide(self.g.name.clone()));
                }
                out.code.push(Inst::Li {
                    rd: dst,
                    imm: l.bits as u32,
                });
                Ok(dst)
            }
            Expr::Name(n) => {
                match self.var_locs.get(n) {
                    Some(Loc::CallerReg(r)) | Some(Loc::CalleeReg(r)) => return Ok(*r),
                    Some(Loc::Frame(off)) => {
                        let w = self.var_widths.get(n).copied().unwrap_or(Width::W32);
                        out.code.push(Inst::Load {
                            w,
                            rd: dst,
                            rb: regs::SP,
                            off: *off as i32,
                        });
                        return Ok(dst);
                    }
                    None => {}
                }
                if let Some(r) = self.global_regs.get(n) {
                    return Ok(*r);
                }
                // A continuation bound at entry: its value is the
                // address of the (pc, sp) pair in this frame.
                if let Some(&node) = self
                    .g
                    .continuations()
                    .iter()
                    .find(|(cn, _)| cn == n)
                    .map(|(_, id)| id)
                {
                    let off = self.cont_slot_of[&node];
                    out.code.push(Inst::Addi {
                        rd: dst,
                        rs: regs::SP,
                        imm: off as i32,
                    });
                    return Ok(dst);
                }
                // A procedure or data symbol: a link-time constant.
                let addr = self
                    .prog
                    .image
                    .symbol(n.as_str())
                    .expect("build_program validated all names");
                out.code.push(Inst::Li {
                    rd: dst,
                    imm: addr as u32,
                });
                Ok(dst)
            }
            Expr::Mem(ty, a) => {
                let r = self.eval(out, a, sidx)?;
                out.code.push(Inst::Load {
                    w: width_of(*ty),
                    rd: dst,
                    rb: r,
                    off: 0,
                });
                Ok(dst)
            }
            Expr::Unary(op, a) => {
                let w = self.infer_width(a);
                let r = self.eval(out, a, sidx)?;
                out.code.push(Inst::Un {
                    op: *op,
                    w,
                    rd: dst,
                    ra: r,
                });
                Ok(dst)
            }
            Expr::Binary(op, a, b) => {
                let w = self.infer_width(a);
                // If the left operand landed in our scratch register it
                // stays safe: the right subtree evaluates at sidx + 1.
                let ra_ = self.eval(out, a, sidx)?;
                let rb = self.eval(out, b, sidx + 1)?;
                out.code.push(Inst::Bin {
                    op: *op,
                    w,
                    rd: dst,
                    ra: ra_,
                    rb,
                });
                Ok(dst)
            }
        }
    }

    /// Static width inference (the source is width-consistent; the
    /// abstract machine checks dynamically).
    fn infer_width(&self, e: &Expr) -> Width {
        match e {
            Expr::Lit(l) => width_of(l.ty),
            Expr::Name(n) => self.var_widths.get(n).copied().unwrap_or(Width::W32),
            Expr::Mem(ty, _) => width_of(*ty),
            Expr::Unary(op, a) => op.eval(self.infer_width(a), 0).1,
            Expr::Binary(op, a, _) => {
                if op.is_comparison() {
                    Width::W32
                } else {
                    self.infer_width(a)
                }
            }
        }
    }
}

fn width_of(ty: Ty) -> Width {
    match ty {
        Ty::Bits(w) => w,
        Ty::Float(FWidth::F32) => Width::W32,
        Ty::Float(FWidth::F64) => Width::W64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn compile_src(src: &str) -> VmProgram {
        compile(&build_program(&parse_module(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn generates_code_for_figure1() {
        let vp = compile_src(
            r#"
            sp1(bits32 n) {
                bits32 s, p;
                if n == 1 { return (1, 1); }
                else { s, p = sp1(n - 1); return (s + n, p * n); }
            }
            "#,
        );
        assert!(vp.entries.contains_key("sp1"));
        assert!(vp.proc_len("sp1").unwrap() > 10);
        assert_eq!(vp.code[0], Inst::Halt);
        assert!(
            vp.entries["sp1"] >= 8,
            "halt vector occupies the first 8 slots"
        );
    }

    #[test]
    fn branch_table_immediately_follows_call() {
        let vp = compile_src(
            r#"
            f() {
                bits32 r;
                r = g() also returns to k0, k1;
                return (r);
                continuation k0(r):
                return (r + 1);
                continuation k1(r):
                return (r + 2);
            }
            g() { return <2/2> (5); }
            "#,
        );
        // Find the call to g in f and check two Jmp slots follow it.
        let f = vp.proc_meta.iter().find(|m| m.name == "f").unwrap();
        let call_at = (f.entry..f.end)
            .find(|&pc| matches!(vp.code[pc as usize], Inst::Call { .. }))
            .expect("call in f");
        assert!(matches!(vp.code[call_at as usize + 1], Inst::Jmp { .. }));
        assert!(matches!(vp.code[call_at as usize + 2], Inst::Jmp { .. }));
        let site = vp.call_sites.get(&(call_at + 1)).expect("call site table");
        assert_eq!(site.alternates, 2);
    }

    #[test]
    fn cut_to_is_constant_length() {
        let vp = compile_src(
            r#"
            f() {
                bits32 r;
                r = g(k) also cuts to k;
                return (r);
                continuation k(r):
                return (r);
            }
            g(bits32 kk) { cut to kk(1); return (0); }
            "#,
        );
        let g = vp.proc_meta.iter().find(|m| m.name == "g").unwrap();
        // The cut sequence: eval cont (arg reg move aside) + 2 loads + jr.
        let cut_jrs = (g.entry..g.end)
            .filter(|&pc| matches!(vp.code[pc as usize], Inst::Jr { .. }))
            .count();
        assert!(cut_jrs >= 1);
        // The continuation slots cost exactly 2 stores in f's prologue
        // (the "2 pointers" of §2), beyond ra/callee saves.
        let f = vp.proc_meta.iter().find(|m| m.name == "f").unwrap();
        assert_eq!(f.cont_slots.len(), 1);
    }

    #[test]
    fn unwind_tables_deposited() {
        let vp = compile_src(
            r#"
            f() {
                bits32 r;
                r = g() also unwinds to k also descriptor d;
                return (r);
                continuation k(r):
                return (r);
            }
            g() { yield(1) also aborts; return (0); }
            data d { bits32 42; }
            "#,
        );
        let site = vp
            .call_sites
            .values()
            .find(|s| !s.unwind_pcs.is_empty())
            .expect("annotated call site");
        assert_eq!(site.unwind_pcs.len(), 1);
        assert_eq!(site.unwind_params, vec![1]);
        assert_eq!(site.descriptors.len(), 1);
    }

    #[test]
    fn globals_get_registers() {
        let vp = compile_src("register bits32 exn_top = 7; f() { exn_top = exn_top + 1; return; }");
        assert_eq!(vp.globals.len(), 1);
        assert_eq!(vp.globals[0].2, 7);
    }
}
