//! Portable suspended-state capture for the VM family.
//!
//! A [`VmState`] is everything that distinguishes one suspended
//! [`VmMachine`](crate::VmMachine) from another built over the same
//! [`VmProgram`](crate::VmProgram): the register file, the program
//! counter, the cost counters, the expected-results count of the
//! in-flight activation, and memory (sorted, zero bytes elided — the
//! canonical form [`Memory::snapshot`](crate::mem::Memory::snapshot)
//! produces). The *execution tier* is deliberately **not** part of the
//! state: the stepped, pre-decoded, and fused engines all run over this
//! same machine state, so a snapshot taken under one tier resumes under
//! any other — the cross-tier resume invariant the snapshot-equivalence
//! oracle checks.
//!
//! As in the sem family, only resumable points are captured: a machine
//! suspended at a `SysYield` trap or stopped at a fuel-slice boundary.
//! The compiled program, the trace sink, and the resource governor are
//! not captured (see `cmm_sem::snapshot` for the rationale; it is the
//! same here).

use crate::isa::regs;
use crate::machine::{Cost, VmMachine, VmStatus};
use cmm_obs::TraceSink;

/// The status a captured VM state was suspended in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmSnapStatus {
    /// Trapped into the front-end run-time system at a `SysYield`.
    Suspended,
    /// `run` exhausted its fuel; the next `run` call continues.
    OutOfFuel,
}

/// The full suspended state of a VM-family machine, portable across
/// the stepped, pre-decoded, and fused tiers. See the module
/// documentation.
#[derive(Clone, PartialEq, Debug)]
pub struct VmState {
    /// The register file.
    pub regs: [u64; regs::NUM_REGS],
    /// The program counter (an index into the compiled code).
    pub pc: u32,
    /// Accumulated costs (the machine's trace clock).
    pub cost: Cost,
    /// Result values the suspended activation's caller expects.
    pub expected_results: u64,
    /// Memory as sorted `(address, byte)` pairs, zero bytes elided.
    pub mem: Vec<(u32, u8)>,
    /// The status the machine was captured in.
    pub status: VmSnapStatus,
}

impl<'p, S: TraceSink> VmMachine<'p, S> {
    /// Captures the machine's suspended state as a portable
    /// [`VmState`]. All three tiers capture the identical state at
    /// matching execution points (they share this machine).
    ///
    /// # Errors
    ///
    /// Fails (with a description) unless the machine is suspended at a
    /// `SysYield` or out of fuel.
    pub fn capture(&self) -> Result<VmState, String> {
        let status = match &self.status {
            VmStatus::Suspended => VmSnapStatus::Suspended,
            VmStatus::OutOfFuel => VmSnapStatus::OutOfFuel,
            other => return Err(format!("not at a resumable point (status {other:?})")),
        };
        Ok(VmState {
            regs: self.regs,
            pc: self.pc,
            cost: self.cost,
            expected_results: self.expected_results as u64,
            mem: self.mem.snapshot(),
            status,
        })
    }

    /// Restores a captured state into this machine, replacing its
    /// registers, pc, costs, and whole memory. The state may come from
    /// any tier of the family; this machine keeps its own tier, sink,
    /// and governor (with the usual caveat that a governor's
    /// mapped-bytes cap sees the restored — nonzero-elided — memory
    /// shape, so snapshots compose with governors only for fuel
    /// slicing).
    ///
    /// # Errors
    ///
    /// Fails if the pc is outside the compiled code; the machine is
    /// unchanged on error.
    pub fn restore(&mut self, st: &VmState) -> Result<(), String> {
        if st.pc as usize >= self.program.code.len() {
            return Err(format!(
                "pc {} out of range (program has {} instructions)",
                st.pc,
                self.program.code.len()
            ));
        }
        let expected = usize::try_from(st.expected_results)
            .map_err(|_| format!("expected_results {} out of range", st.expected_results))?;
        self.regs = st.regs;
        self.pc = st.pc;
        self.cost = st.cost;
        self.expected_results = expected;
        self.mem.recycle();
        for &(a, b) in &st.mem {
            self.mem.write_u8(a, b);
        }
        self.status = match st.status {
            VmSnapStatus::Suspended => VmStatus::Suspended,
            VmSnapStatus::OutOfFuel => VmStatus::OutOfFuel,
        };
        Ok(())
    }
}
