//! The simulated machine: executor and cost model.

use crate::codegen::{TraceSite, VmProgram};
use crate::decode::DecodedCode;
use crate::fuse::FusedCode;
use crate::isa::{regs, Inst};
use crate::mem::Memory;
use cmm_chaos::{LimitTrip, ResourceGovernor};
use cmm_ir::Name;
use cmm_obs::{Event, NopSink, TraceSink};
use std::sync::Arc;

/// Synthetic image code addresses start here (see `cmm_cfg::DataImage`).
const CODE_BASE: u32 = 0x4000_0000;

/// Execution status.
#[derive(Clone, PartialEq, Debug)]
pub enum VmStatus {
    /// Not started.
    Idle,
    /// Executing generated code.
    Running,
    /// Trapped into the front-end run-time system (`SysYield`).
    Suspended,
    /// Returned to the halt vector; holds the result values.
    Halted(Vec<u64>),
    /// The machine faulted (failing primitive, abnormal top-level
    /// return, bad indirect target).
    Error(String),
    /// Fuel exhausted; `run` again to continue.
    OutOfFuel,
}

/// The exact cost model: every retired instruction is counted, and
/// memory traffic and control transfers are broken out.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Cost {
    /// Instructions retired.
    pub instructions: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Control transfers (branches, jumps, calls, returns).
    pub branches: u64,
    /// Calls executed.
    pub calls: u64,
    /// Instruction-equivalents charged by the (Rust-implemented)
    /// front-end run-time system for stack walking and dispatch.
    pub runtime_instructions: u64,
}

impl Cost {
    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &Cost) -> Cost {
        Cost {
            instructions: self.instructions - earlier.instructions,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            branches: self.branches - earlier.branches,
            calls: self.calls - earlier.calls,
            runtime_instructions: self.runtime_instructions - earlier.runtime_instructions,
        }
    }

    /// Total work: generated instructions plus run-time-system
    /// instruction equivalents.
    pub fn total(&self) -> u64 {
        self.instructions + self.runtime_instructions
    }
}

/// The simulated machine.
///
/// Generic over a [`TraceSink`]; the default [`NopSink`] has
/// `ENABLED = false`, so every emission site below folds away and the
/// untraced machine is bit-identical to the pre-observability one.
#[derive(Clone, Debug)]
pub struct VmMachine<'p, S: TraceSink = NopSink> {
    /// The compiled program.
    pub program: &'p VmProgram,
    /// The register file.
    pub regs: [u64; regs::NUM_REGS],
    /// Memory.
    pub mem: Memory,
    /// The program counter.
    pub pc: u32,
    /// Accumulated costs.
    pub cost: Cost,
    pub(crate) status: VmStatus,
    pub(crate) expected_results: usize,
    /// When present, `run` executes over this pre-decoded stream
    /// instead of the original `Inst` array (see [`crate::decode`]).
    /// Shared so cloning a machine shares the lowering.
    decoded: Option<Arc<DecodedCode>>,
    /// When present, `run` executes over this fused superinstruction
    /// stream (see [`crate::fuse`]); takes precedence over `decoded`.
    /// Shared so cloning a machine shares the lowering.
    fused: Option<Arc<FusedCode>>,
    /// Optional `cmm-chaos` resource governor. In this family the stack
    /// limit is a floor on `sp` (activation records live in simulated
    /// memory) and the memory cap counts mapped page bytes.
    pub(crate) governor: Option<ResourceGovernor>,
    pub(crate) sink: S,
}

impl<'p> VmMachine<'p> {
    /// Creates a machine with memory loaded from the program's data
    /// image and global registers initialized.
    pub fn new(program: &'p VmProgram) -> VmMachine<'p> {
        VmMachine::with_sink(program, NopSink)
    }

    /// Creates a machine that executes via the pre-decoded engine: the
    /// instruction stream is lowered once (see [`crate::decode`]) and
    /// `run` dispatches over the dense form. Observable behaviour is
    /// identical to [`VmMachine::new`]; only the step loop differs.
    pub fn new_decoded(program: &'p VmProgram) -> VmMachine<'p> {
        VmMachine::with_sink_decoded(program, NopSink)
    }

    /// [`VmMachine::new_decoded`] over an *already decoded* stream,
    /// e.g. one memoized by `cmm-pool`'s compilation cache: the caller
    /// pays the lowering once and every machine after that shares it.
    /// `decoded` must come from [`DecodedCode::decode`] on this same
    /// `program`.
    pub fn new_shared_decoded(program: &'p VmProgram, decoded: Arc<DecodedCode>) -> VmMachine<'p> {
        VmMachine::with_sink_shared_decoded(program, decoded, NopSink)
    }

    /// Creates a machine that executes via the fused engine: the
    /// instruction stream is decoded and then fused once (see
    /// [`crate::fuse`]) and `run` dispatches whole superinstruction
    /// windows. Observable behaviour is identical to
    /// [`VmMachine::new`]; only the step loop differs.
    pub fn new_fused(program: &'p VmProgram) -> VmMachine<'p> {
        VmMachine::with_sink_fused(program, NopSink)
    }

    /// [`VmMachine::new_fused`] over an *already fused* stream, e.g.
    /// one memoized by `cmm-pool`'s compilation cache. `fused` must
    /// come from [`FusedCode::fuse`] on this same `program`.
    pub fn new_shared_fused(program: &'p VmProgram, fused: Arc<FusedCode>) -> VmMachine<'p> {
        VmMachine::with_sink_shared_fused(program, fused, NopSink)
    }
}

/// A reusable execution arena: the heap structures a machine allocates
/// per run (today: [`Memory`] and its page pool), banked by one batch
/// worker and threaded through consecutive jobs so the hot run phase
/// stops paying the allocator per job.
///
/// The arena carries **no observable state**: a machine built `_in` an
/// arena starts from exactly the state a fresh one would (the recycled
/// memory reads all-zero and reports zero mapped bytes before the image
/// loads), so arena reuse is invisible to every oracle — the
/// engine-equivalence suite locks this in.
#[derive(Debug, Default)]
pub struct VmArena {
    mem: Memory,
}

impl VmArena {
    /// An empty arena.
    pub fn new() -> VmArena {
        VmArena::default()
    }
}

/// The procedure name owning `pc` (shared by both step loops so their
/// event payloads cannot drift).
pub(crate) fn name_at(program: &VmProgram, pc: u32) -> Name {
    program
        .proc_at_pc(pc)
        .map(|m| m.name.clone())
        .unwrap_or_else(|| Name::from("?"))
}

impl<'p, S: TraceSink> VmMachine<'p, S> {
    /// Creates a machine emitting trace events into `sink` (see
    /// [`VmMachine::new`] for the machine-state initialization).
    pub fn with_sink(program: &'p VmProgram, sink: S) -> VmMachine<'p, S> {
        VmMachine::with_sink_in(program, sink, &mut VmArena::new())
    }

    /// [`VmMachine::with_sink`] drawing the machine's heap structures
    /// from `arena` instead of the allocator. The machine starts from
    /// exactly the state a fresh one would; reclaim the allocations
    /// afterwards with [`VmMachine::recycle_into`].
    pub fn with_sink_in(program: &'p VmProgram, sink: S, arena: &mut VmArena) -> VmMachine<'p, S> {
        let mut mem = std::mem::take(&mut arena.mem);
        // Already recycled on reclaim, but an arena handed a live
        // memory (or a fresh Default) must still start clean.
        mem.recycle();
        for (&a, &b) in &program.image.bytes {
            mem.write_u8(a as u32, b);
        }
        let mut regs_file = [0u64; regs::NUM_REGS];
        for (_, reg, init) in &program.globals {
            regs_file[*reg as usize] = *init;
        }
        regs_file[regs::SP as usize] = u64::from(program.stack_top);
        VmMachine {
            program,
            regs: regs_file,
            mem,
            pc: 0,
            cost: Cost::default(),
            status: VmStatus::Idle,
            expected_results: 0,
            decoded: None,
            fused: None,
            governor: None,
            sink,
        }
    }

    /// Installs a `cmm-chaos` resource governor. `stack_floor` bounds
    /// how far `sp` may descend and `max_memory_bytes` caps mapped page
    /// bytes; `fuel_slice` clips each `run` call's fuel.
    pub fn set_governor(&mut self, g: ResourceGovernor) {
        self.governor = Some(g);
    }

    /// The installed governor, if any.
    pub fn governor(&self) -> Option<&ResourceGovernor> {
        self.governor.as_ref()
    }

    /// Records a governor limit trip: emits a `chaos` trace event and
    /// moves the machine into the corresponding error status.
    #[cold]
    pub(crate) fn trip_limit(&mut self, trip: LimitTrip, observed: u64) {
        if S::ENABLED {
            self.emit(Event::Chaos {
                what: format!("limit {trip}"),
            });
        }
        self.status = VmStatus::Error(format!("chaos: {trip} limit tripped at {observed}"));
    }

    /// Creates a pre-decoded machine emitting trace events into `sink`
    /// (see [`VmMachine::new_decoded`]).
    pub fn with_sink_decoded(program: &'p VmProgram, sink: S) -> VmMachine<'p, S> {
        let mut m = VmMachine::with_sink(program, sink);
        m.decoded = Some(Arc::new(DecodedCode::decode(program)));
        m
    }

    /// Creates a tracing pre-decoded machine over a shared, already
    /// decoded stream (see [`VmMachine::new_shared_decoded`]).
    pub fn with_sink_shared_decoded(
        program: &'p VmProgram,
        decoded: Arc<DecodedCode>,
        sink: S,
    ) -> VmMachine<'p, S> {
        let mut m = VmMachine::with_sink(program, sink);
        m.decoded = Some(decoded);
        m
    }

    /// [`VmMachine::with_sink_shared_decoded`] drawing the machine's
    /// heap structures from `arena` (see [`VmMachine::with_sink_in`]).
    pub fn with_sink_shared_decoded_in(
        program: &'p VmProgram,
        decoded: Arc<DecodedCode>,
        sink: S,
        arena: &mut VmArena,
    ) -> VmMachine<'p, S> {
        let mut m = VmMachine::with_sink_in(program, sink, arena);
        m.decoded = Some(decoded);
        m
    }

    /// Creates a fused machine emitting trace events into `sink` (see
    /// [`VmMachine::new_fused`]).
    pub fn with_sink_fused(program: &'p VmProgram, sink: S) -> VmMachine<'p, S> {
        let plain = Arc::new(DecodedCode::decode(program));
        let fused = Arc::new(FusedCode::fuse(program, plain));
        VmMachine::with_sink_shared_fused(program, fused, sink)
    }

    /// Creates a tracing fused machine over a shared, already fused
    /// stream (see [`VmMachine::new_shared_fused`]).
    pub fn with_sink_shared_fused(
        program: &'p VmProgram,
        fused: Arc<FusedCode>,
        sink: S,
    ) -> VmMachine<'p, S> {
        VmMachine::with_sink_shared_fused_in(program, fused, sink, &mut VmArena::new())
    }

    /// [`VmMachine::with_sink_shared_fused`] drawing the machine's
    /// heap structures from `arena` (see [`VmMachine::with_sink_in`]).
    pub fn with_sink_shared_fused_in(
        program: &'p VmProgram,
        fused: Arc<FusedCode>,
        sink: S,
        arena: &mut VmArena,
    ) -> VmMachine<'p, S> {
        let mut m = VmMachine::with_sink_in(program, sink, arena);
        m.fused = Some(fused);
        m
    }

    /// Consumes the machine and banks its heap allocations in `arena`
    /// for the next [`VmMachine::with_sink_in`]. The arena ends up
    /// observationally empty (the memory is recycled on the spot), so
    /// nothing from this run can leak into the next.
    pub fn recycle_into(mut self, arena: &mut VmArena) {
        self.mem.recycle();
        arena.mem = self.mem;
    }

    /// The trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the machine, returning the sink (and its recording).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Emits a trace event stamped with the cost-model clock. Compiles
    /// to nothing for the default `NopSink`.
    #[inline]
    pub(crate) fn emit(&mut self, e: Event) {
        if S::ENABLED {
            self.sink.event(self.cost.total(), e);
        }
    }

    /// Emits the event deposited at a `jr` instruction, if any (shared
    /// by both step loops so the payloads cannot drift). `now` is the
    /// emitting loop's cost clock and `next` the resolved target pc.
    #[inline]
    pub(crate) fn emit_jr_site(&mut self, now: u64, pc: u32, next: u32) {
        let Some(&site) = self.program.trace_sites.get(&pc) else {
            return;
        };
        let e = match site {
            TraceSite::Ret { index, alternates } => Event::Return {
                proc: name_at(self.program, pc),
                index,
                alternates,
            },
            TraceSite::TailCall => Event::TailCall {
                caller: name_at(self.program, pc),
                callee: name_at(self.program, next),
            },
            TraceSite::Cut => Event::CutTo {
                proc: name_at(self.program, pc),
                target: name_at(self.program, next),
                killed_saves: 0,
            },
        };
        self.sink.event(now, e);
    }

    /// Emits the tail-call event deposited at a direct `jmp`, if any
    /// (the only site kind the code generator tags on a `jmp`).
    #[inline]
    pub(crate) fn emit_jmp_site(&mut self, now: u64, pc: u32, target: u32) {
        if self.program.trace_sites.get(&pc) == Some(&TraceSite::TailCall) {
            let e = Event::TailCall {
                caller: name_at(self.program, pc),
                callee: name_at(self.program, target),
            };
            self.sink.event(now, e);
        }
    }

    /// True if this machine runs over the pre-decoded stream.
    pub fn is_decoded(&self) -> bool {
        self.decoded.is_some()
    }

    /// True if this machine runs over the fused stream.
    pub fn is_fused(&self) -> bool {
        self.fused.is_some()
    }

    /// Current status.
    pub fn status(&self) -> &VmStatus {
        &self.status
    }

    /// Begins execution of a procedure. `args` go to the argument
    /// registers; on return to the halt vector, `expected_results`
    /// values are collected from them.
    ///
    /// A procedure that does not exist (programs are normally linked
    /// before execution) leaves the machine in [`VmStatus::Error`].
    pub fn start(&mut self, proc: &str, args: &[u64], expected_results: usize) {
        let Some(&entry) = self.program.entries.get(proc) else {
            self.status = VmStatus::Error(format!("no such procedure `{proc}`"));
            return;
        };
        for (i, &a) in args.iter().enumerate() {
            self.regs[regs::ARG0 as usize + i] = a;
        }
        self.regs[regs::RA as usize] = 0;
        self.pc = entry;
        self.expected_results = expected_results;
        self.status = VmStatus::Running;
    }

    /// Reads a register.
    pub fn reg(&self, r: u8) -> u64 {
        self.regs[r as usize]
    }

    /// The values passed to `yield` (while suspended): the argument
    /// registers.
    pub fn yield_args(&self, n: usize) -> Vec<u64> {
        (0..n).map(|i| self.reg(regs::ARG0 + i as u8)).collect()
    }

    /// Translates a code value (an instruction index, or an image code
    /// address from a `sym` table or procedure-name constant).
    pub fn code_target(&self, v: u64) -> Result<u32, String> {
        let v32 = v as u32;
        if v32 >= CODE_BASE {
            self.program
                .code_map
                .get(&v32)
                .copied()
                .ok_or_else(|| format!("bad code address {v32:#x}"))
        } else {
            Ok(v32)
        }
    }

    /// Marks the machine runnable again after the run-time system has
    /// applied a resumption (crate-internal protocol with `VmThread`).
    pub fn force_running(&mut self) {
        self.status = VmStatus::Running;
    }

    /// Runs up to `fuel` instructions.
    pub fn run(&mut self, fuel: u64) -> VmStatus {
        let fuel = match &self.governor {
            Some(g) => g.slice(fuel),
            None => fuel,
        };
        if let Some(fused) = &self.fused {
            let fused = Arc::clone(fused);
            return self.run_fused(&fused, fuel);
        }
        if let Some(decoded) = &self.decoded {
            let decoded = Arc::clone(decoded);
            return self.run_decoded(&decoded, fuel);
        }
        if matches!(self.status, VmStatus::OutOfFuel) {
            self.status = VmStatus::Running;
        }
        for _ in 0..fuel {
            if !matches!(self.status, VmStatus::Running) {
                return self.status.clone();
            }
            self.step();
        }
        if matches!(self.status, VmStatus::Running) {
            self.status = VmStatus::OutOfFuel;
        }
        self.status.clone()
    }

    /// Executes one instruction.
    pub fn step(&mut self) {
        if !matches!(self.status, VmStatus::Running) {
            return;
        }
        let Some(inst) = self.program.code.get(self.pc as usize) else {
            self.status = VmStatus::Error(format!("pc {} out of range", self.pc));
            return;
        };
        self.cost.instructions += 1;
        if inst.is_branch() {
            self.cost.branches += 1;
        }
        let mut next = self.pc + 1;
        match *inst {
            Inst::Halt => {
                if self.pc == 0 {
                    let results = (0..self.expected_results)
                        .map(|i| self.regs[regs::ARG0 as usize + i])
                        .collect();
                    self.status = VmStatus::Halted(results);
                } else {
                    self.status =
                        VmStatus::Error(format!("abnormal top-level return (pc {})", self.pc));
                }
                return;
            }
            Inst::Li { rd, imm } => self.regs[rd as usize] = u64::from(imm),
            Inst::Addi { rd, rs, imm } => {
                let v = (self.regs[rs as usize] as u32).wrapping_add(imm as u32);
                self.regs[rd as usize] = u64::from(v);
            }
            Inst::Mov { rd, rs } => self.regs[rd as usize] = self.regs[rs as usize],
            Inst::Bin { op, w, rd, ra, rb } => {
                match op.eval(w, self.regs[ra as usize], self.regs[rb as usize]) {
                    Ok((v, _)) => self.regs[rd as usize] = v,
                    Err(e) => {
                        self.status = VmStatus::Error(format!(
                            "fault at pc {}{}: {e}",
                            self.pc,
                            self.program.locate(self.pc)
                        ));
                        return;
                    }
                }
            }
            Inst::Un { op, w, rd, ra } => {
                let (v, _) = op.eval(w, self.regs[ra as usize]);
                self.regs[rd as usize] = v;
            }
            Inst::Load { w, rd, rb, off } => {
                self.cost.loads += 1;
                let addr = (self.regs[rb as usize] as u32).wrapping_add(off as u32);
                self.regs[rd as usize] = self.mem.read(w, addr);
            }
            Inst::Store { w, rs, rb, off } => {
                self.cost.stores += 1;
                let addr = (self.regs[rb as usize] as u32).wrapping_add(off as u32);
                self.mem.write(w, addr, self.regs[rs as usize]);
                if let Some(g) = self.governor {
                    let bytes = self.mem.mapped_bytes();
                    if let Some(trip) = g.check_memory(bytes) {
                        self.trip_limit(trip, bytes as u64);
                        return;
                    }
                }
            }
            Inst::Bnz { rs, target } => {
                if self.regs[rs as usize] != 0 {
                    next = target;
                }
            }
            Inst::Bz { rs, target } => {
                if self.regs[rs as usize] == 0 {
                    next = target;
                }
            }
            Inst::Jmp { target } => {
                if S::ENABLED {
                    self.emit_jmp_site(self.cost.total(), self.pc, target);
                }
                next = target;
            }
            Inst::Jr { rs, off } => match self.code_target(self.regs[rs as usize]) {
                Ok(base) => {
                    next = base.wrapping_add(off as u32);
                    if S::ENABLED {
                        self.emit_jr_site(self.cost.total(), self.pc, next);
                    }
                }
                Err(e) => {
                    self.status = VmStatus::Error(format!("{e}{}", self.program.locate(self.pc)));
                    return;
                }
            },
            Inst::Call { target } => {
                self.cost.calls += 1;
                if let Some(g) = self.governor {
                    let sp = self.regs[regs::SP as usize];
                    if let Some(trip) = g.check_sp(sp) {
                        self.trip_limit(trip, sp);
                        return;
                    }
                }
                if S::ENABLED {
                    self.emit(Event::Call {
                        caller: name_at(self.program, self.pc),
                        callee: name_at(self.program, target),
                    });
                }
                self.regs[regs::RA as usize] = u64::from(self.pc + 1);
                next = target;
            }
            Inst::CallR { rs } => {
                self.cost.calls += 1;
                if let Some(g) = self.governor {
                    let sp = self.regs[regs::SP as usize];
                    if let Some(trip) = g.check_sp(sp) {
                        self.trip_limit(trip, sp);
                        return;
                    }
                }
                match self.code_target(self.regs[rs as usize]) {
                    Ok(t) => {
                        if S::ENABLED {
                            self.emit(Event::Call {
                                caller: name_at(self.program, self.pc),
                                callee: name_at(self.program, t),
                            });
                        }
                        self.regs[regs::RA as usize] = u64::from(self.pc + 1);
                        next = t;
                    }
                    Err(e) => {
                        self.status =
                            VmStatus::Error(format!("{e}{}", self.program.locate(self.pc)));
                        return;
                    }
                }
            }
            Inst::SysYield => {
                if S::ENABLED {
                    let code = self.regs[regs::ARG0 as usize];
                    self.emit(Event::Yield { code });
                }
                // Leave pc at the instruction *after* the trap so a plain
                // resume continues with the stub's epilogue.
                self.pc += 1;
                self.status = VmStatus::Suspended;
                return;
            }
        }
        self.pc = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn compile_src(src: &str) -> VmProgram {
        compile(&build_program(&parse_module(src).unwrap()).unwrap()).unwrap()
    }

    fn run(src: &str, proc: &str, args: &[u64], results: usize) -> VmStatus {
        let vp = compile_src(src);
        let mut m = VmMachine::new(&vp);
        m.start(proc, args, results);
        m.run(100_000_000)
    }

    const FIGURE1: &str = r#"
        sp1(bits32 n) {
            bits32 s, p;
            if n == 1 { return (1, 1); }
            else { s, p = sp1(n - 1); return (s + n, p * n); }
        }
        sp2(bits32 n) { jump sp2_help(n, 1, 1); }
        sp2_help(bits32 n, bits32 s, bits32 p) {
            if n == 1 { return (s, p); }
            else { jump sp2_help(n - 1, s + n, p * n); }
        }
        sp3(bits32 n) {
            bits32 s, p;
            s = 1; p = 1;
          loop:
            if n == 1 { return (s, p); }
            else { s = s + n; p = p * n; n = n - 1; goto loop; }
        }
    "#;

    #[test]
    fn figure1_on_the_vm() {
        for proc in ["sp1", "sp2", "sp3"] {
            assert_eq!(
                run(FIGURE1, proc, &[10], 2),
                VmStatus::Halted(vec![55, 3628800]),
                "procedure {proc}"
            );
        }
    }

    #[test]
    fn tail_calls_run_in_constant_stack() {
        let vp = compile_src(FIGURE1);
        let mut m = VmMachine::new(&vp);
        let sp0 = m.reg(regs::SP);
        m.start("sp2", &[100_000], 2);
        let mut min_sp = sp0;
        while matches!(m.status(), VmStatus::Running) {
            m.step();
            min_sp = min_sp.min(m.reg(regs::SP));
        }
        assert!(matches!(m.status(), VmStatus::Halted(_)));
        assert!(sp0 - min_sp < 256, "tail calls must not grow the stack");
    }

    #[test]
    fn memory_and_globals() {
        let status = run(
            r#"
            register bits32 counter = 5;
            data cell { bits32 7; }
            f() {
                bits32 x;
                counter = counter + 1;
                x = bits32[cell];
                bits32[cell] = x + counter;
                return (bits32[cell]);
            }
            "#,
            "f",
            &[],
            1,
        );
        assert_eq!(status, VmStatus::Halted(vec![13]));
    }

    #[test]
    fn cut_to_on_the_vm() {
        let status = run(
            r#"
            f() {
                bits32 r;
                r = mid(k) also cuts to k;
                return (0);
                continuation k(r):
                return (r + 1);
            }
            mid(bits32 kk) {
                bits32 r;
                r = g(kk) also aborts;
                return (r);
            }
            g(bits32 kk) { cut to kk(41); return (0); }
            "#,
            "f",
            &[],
            1,
        );
        assert_eq!(status, VmStatus::Halted(vec![42]));
    }

    #[test]
    fn abnormal_return_via_branch_table() {
        let src = r#"
            f(bits32 x) {
                bits32 r;
                r = g(x) also returns to kbad;
                return (r);
                continuation kbad(r):
                return (r + 1000);
            }
            g(bits32 x) {
                if x == 1 { return <0/1> (5); }
                else { return <1/1> (6); }
            }
        "#;
        assert_eq!(run(src, "f", &[1], 1), VmStatus::Halted(vec![1005]));
        assert_eq!(run(src, "f", &[0], 1), VmStatus::Halted(vec![6]));
    }

    #[test]
    fn branch_table_normal_return_costs_nothing_extra() {
        // The same program with and without an alternate return: the
        // normal path differs only by the jr offset, not by any
        // executed test instruction.
        let plain = r#"
            f(bits32 x) { bits32 r; r = g(x); return (r); }
            g(bits32 x) { return (x); }
        "#;
        let table = r#"
            f(bits32 x) {
                bits32 r;
                r = g(x) also returns to kbad;
                return (r);
                continuation kbad(r):
                return (0);
            }
            g(bits32 x) { return <1/1> (x); }
        "#;
        let cost = |src: &str| {
            let vp = compile_src(src);
            let mut m = VmMachine::new(&vp);
            m.start("f", &[3], 1);
            assert_eq!(m.run(10_000), VmStatus::Halted(vec![3]));
            m.cost
        };
        assert_eq!(cost(plain).instructions, cost(table).instructions);
    }

    #[test]
    fn divide_fault_is_reported() {
        let status = run("f(bits32 a, bits32 b) { return (a / b); }", "f", &[1, 0], 1);
        assert!(
            matches!(status, VmStatus::Error(ref e) if e.contains("zero")),
            "{status:?}"
        );
    }

    #[test]
    fn yield_suspends_with_args() {
        let vp = compile_src("f() { yield(9, 4) also aborts; return (0); }");
        let mut m = VmMachine::new(&vp);
        m.start("f", &[], 1);
        assert_eq!(m.run(10_000), VmStatus::Suspended);
        assert_eq!(m.yield_args(2), vec![9, 4]);
    }

    #[test]
    fn strings_and_code_pointers_in_memory() {
        let status = run(
            r#"
            data table { sym helper; }
            f(bits32 x) {
                bits32 t, r;
                t = bits32[table];
                r = t(x) ;
                return (r);
            }
            helper(bits32 a) { return (a * 3); }
            "#,
            "f",
            &[5],
            1,
        );
        assert_eq!(status, VmStatus::Halted(vec![15]));
    }

    #[test]
    fn checked_primitive_on_the_vm() {
        let src = "f(bits32 a, bits32 b) { bits32 r; r = %%divu(a, b) also aborts; return (r); }";
        assert_eq!(run(src, "f", &[42, 6], 1), VmStatus::Halted(vec![7]));
        // Division by zero suspends in yield with the DIVZERO code.
        let vp = compile_src(src);
        let mut m = VmMachine::new(&vp);
        m.start("f", &[1, 0], 1);
        assert_eq!(m.run(10_000), VmStatus::Suspended);
        assert_eq!(m.yield_args(1), vec![1]);
    }
}
