//! # cmm-vm — a simulated native target for C--
//!
//! The paper's cost arguments (§2, §4.2, Figures 2–4, Appendix A) are
//! about *generated machine code*: instruction counts at call sites,
//! register save/restore traffic, constant-time stack cutting versus
//! linear-time stack walking. This crate provides the substrate those
//! arguments run on: a deterministic 32-bit RISC-style machine with an
//! exact cost model, plus a code generator from Abstract C--.
//!
//! The substitution (documented in `DESIGN.md`): the paper measured on
//! SPARC/Alpha/Pentium hardware; we measure on this simulator. The
//! *shapes* the paper cares about are preserved exactly:
//!
//! * **stack cutting** compiles to a constant-length sequence that
//!   "saves 2 pointers" — a continuation value is the address of a
//!   2-word `(pc, sp)` pair in the activation record (§5.4);
//! * **the branch-table method** (Figures 3/4) compiles
//!   `also returns to` call sites with a table of unconditional branches
//!   after the call instruction; a normal return is `jr ra+n` (zero
//!   dynamic overhead), an abnormal return `<i/n>` is `jr ra+i` into the
//!   table — a branch to a branch;
//! * **run-time stack unwinding** walks frames one at a time through the
//!   unwind tables the code generator deposits ([`frame::ProcMeta`]),
//!   restoring callee-saves registers as it goes;
//! * **callee-saves interaction** (§4.2): variables promoted by
//!   `cmm-opt`'s `CalleeSaves` nodes live in callee-saves registers;
//!   variables live into `also cuts to` continuations are barred from
//!   promotion and become frame-resident, paying a load/store per access
//!   — the exact penalty the paper describes;
//! * **setjmp/longjmp cost** (§2): [`arch::ArchProfile`] records the
//!   `jmp_buf` size of each architecture the paper quotes (Pentium 6,
//!   SPARC 19, Alpha 84 words, versus 2 for the native cutter).
//!
//! The [`machine::VmMachine`] counts instructions, loads, stores,
//! branches, and calls. The integration tests cross-check the VM against
//! the `cmm-sem` abstract machine on the same programs: both must
//! produce identical results.

pub mod arch;
pub mod codegen;
pub mod decode;
pub mod disasm;
pub mod frame;
pub mod fuse;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod runtime;
pub mod snapshot;

pub use arch::ArchProfile;
pub use codegen::{compile, CodegenError, VmProgram};
pub use decode::{DInst, DOp, DecodedCode};
pub use fuse::{FInst, FOp, FusedCode};
pub use isa::{Inst, Reg};
pub use machine::{Cost, VmArena, VmMachine, VmStatus};
pub use runtime::VmThread;
pub use snapshot::{VmSnapStatus, VmState};
